"""Shared benchmark fixtures and reporting helpers.

Every benchmark regenerates one table/figure of the paper and prints the
same rows/series the paper reports (plus paper-vs-measured columns) --
the printing bypasses pytest's capture so it lands in redirected output
as well.  Asserts encode the *shape* of each result, not absolute
numbers.
"""

from __future__ import annotations

import pytest

from repro.core.assembly import assemble_module
from repro.core.knowledge import get_knowledge


def print_rows(capsys, title, header, rows):
    """Print one result table, bypassing pytest's capture."""
    with capsys.disabled():
        print()
        print(f"=== {title} ===")
        print(header)
        for row in rows:
            print(row)


def build_reproduced(key: str):
    """Assemble the final (fully debugged) reproduced prototype of one
    system, exactly as the pipeline would leave it."""
    knowledge = get_knowledge(key)
    artifacts = []
    from repro.core.knowledge import get_paper_spec
    from repro.core.llm import CodeArtifact

    for component in get_paper_spec(key).components:
        source = knowledge.components[component.name].final_source
        artifacts.append(CodeArtifact(component.name, "python", source, 9))
    return assemble_module(artifacts, f"reproduced_{key}")


@pytest.fixture(scope="session")
def reproduced_ncflow():
    return build_reproduced("ncflow")


@pytest.fixture(scope="session")
def reproduced_arrow():
    return build_reproduced("arrow")


@pytest.fixture(scope="session")
def reproduced_apkeep():
    return build_reproduced("apkeep")


@pytest.fixture(scope="session")
def reproduced_ap():
    return build_reproduced("ap")
