"""ABL-1 -- section 3.3 lesson 1: modular prompts succeed where
monolithic prompts fail.

The paper: all participants started with monolithic "implement XX that
works in the following steps" prompts, which the LLM does not respond
well to; switching to per-component modular prompts made every
reproduction succeed.
"""

from conftest import print_rows

from repro.core.knowledge import (
    get_component_tests,
    get_knowledge,
    get_logic_notes,
    get_paper_spec,
    paper_keys,
)
from repro.core.pipeline import PipelineConfig, ReproductionPipeline
from repro.core.prompts import PromptStyle
from repro.core.simulated import SimulatedLLM
from repro.core.validation import get_validator

SYSTEMS = ["ncflow", "arrow", "apkeep", "ap"]


def _attempt(key, style):
    llm = SimulatedLLM({key: get_knowledge(key)})
    pipeline = ReproductionPipeline(
        llm,
        get_paper_spec(key),
        component_tests=get_component_tests(key),
        logic_notes=get_logic_notes(key),
        validator=get_validator(key),
        participant="abl",
        config=PipelineConfig(style=style),
    )
    return pipeline.run()


def _run_all():
    outcomes = []
    for key in SYSTEMS:
        monolithic = _attempt(key, PromptStyle.MONOLITHIC)
        modular = _attempt(key, PromptStyle.MODULAR_PSEUDOCODE)
        outcomes.append((key, monolithic, modular))
    return outcomes


def test_bench_abl1_modular_vs_monolithic(benchmark, capsys):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    monolithic_successes = sum(1 for _, mono, _ in outcomes if mono.succeeded)
    modular_successes = sum(1 for _, _, mod in outcomes if mod.succeeded)
    assert monolithic_successes == 0, "monolithic prompting must fail"
    assert modular_successes == len(SYSTEMS), "modular prompting must succeed"

    header = (
        f"{'system':<8} {'monolithic':>11} {'modular':>9} "
        f"{'mono prompts':>13} {'mod prompts':>12}"
    )
    rows = []
    for key, mono, mod in outcomes:
        rows.append(
            f"{key:<8} {'fail' if not mono.succeeded else 'ok':>11} "
            f"{'ok' if mod.succeeded else 'fail':>9} "
            f"{mono.num_prompts:>13} {mod.num_prompts:>12}"
        )
    rows.append("")
    rows.append(
        f"success rate: monolithic {monolithic_successes}/{len(SYSTEMS)}, "
        f"modular {modular_successes}/{len(SYSTEMS)} "
        "(paper: participants only succeeded after switching to modular)"
    )
    print_rows(capsys, "ABL-1: monolithic vs modular prompting", header, rows)

    benchmark.extra_info["monolithic_successes"] = monolithic_successes
    benchmark.extra_info["modular_successes"] = modular_successes
