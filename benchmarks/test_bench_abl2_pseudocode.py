"""ABL-2 -- section 3.3 lesson 2: implement components with pseudocode
first.

The paper: prompting pseudocode-bearing components in plain text makes
the LLM pick different data types and structures, forcing extra
interoperability rework later; pseudocode-first stabilises them.  Here
the text-style runs incur the extra data-type defects (more debug
rounds, more revisions) on every system whose spec carries pseudocode.
"""

from conftest import print_rows

from repro.core.knowledge import (
    get_component_tests,
    get_knowledge,
    get_logic_notes,
    get_paper_spec,
)
from repro.core.pipeline import PipelineConfig, ReproductionPipeline
from repro.core.prompts import PromptStyle
from repro.core.simulated import SimulatedLLM
from repro.core.validation import get_validator

SYSTEMS = ["ncflow", "arrow", "apkeep", "ap"]


def _attempt(key, style):
    llm = SimulatedLLM({key: get_knowledge(key)})
    pipeline = ReproductionPipeline(
        llm,
        get_paper_spec(key),
        component_tests=get_component_tests(key),
        logic_notes=get_logic_notes(key),
        validator=get_validator(key),
        participant="abl",
        config=PipelineConfig(style=style),
    )
    return pipeline.run()


def _run_all():
    rows = []
    for key in SYSTEMS:
        pseudo = _attempt(key, PromptStyle.MODULAR_PSEUDOCODE)
        text = _attempt(key, PromptStyle.MODULAR_TEXT)
        rows.append((key, pseudo, text))
    return rows


def test_bench_abl2_pseudocode_first(benchmark, capsys):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    total_pseudo_rounds = 0
    total_text_rounds = 0
    for key, pseudo, text in outcomes:
        assert pseudo.succeeded and text.succeeded
        total_pseudo_rounds += sum(c.debug_rounds for c in pseudo.components)
        total_text_rounds += sum(c.debug_rounds for c in text.components)
    # Shape: text-style costs strictly more debugging overall.
    assert total_text_rounds > total_pseudo_rounds

    header = (
        f"{'system':<8} {'pc rounds':>10} {'text rounds':>12} "
        f"{'pc prompts':>11} {'text prompts':>13}"
    )
    rows = []
    for key, pseudo, text in outcomes:
        pseudo_rounds = sum(c.debug_rounds for c in pseudo.components)
        text_rounds = sum(c.debug_rounds for c in text.components)
        rows.append(
            f"{key:<8} {pseudo_rounds:>10} {text_rounds:>12} "
            f"{pseudo.num_prompts:>11} {text.num_prompts:>13}"
        )
    rows.append("")
    rows.append(
        f"total debug rounds: pseudocode-first {total_pseudo_rounds}, "
        f"text-first {total_text_rounds} "
        "(paper: pseudocode-first avoids data-type rework)"
    )
    print_rows(capsys, "ABL-2: pseudocode-first vs text-first", header, rows)

    benchmark.extra_info["pseudocode_rounds"] = total_pseudo_rounds
    benchmark.extra_info["text_rounds"] = total_text_rounds
