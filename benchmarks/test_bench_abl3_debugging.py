"""ABL-3 -- section 3.3 lesson 4: the three debugging guidelines.

The paper: error-message feedback fixes data-type bugs, failing test
cases fix simple logic bugs, step-by-step logic prompts fix complex
ones.  This ablation takes every component with seeded defects across
all knowledge bases, hammers it with one guideline at a time, and checks
that each guideline repairs *exactly* the defects of its kind -- no
more, no fewer.
"""

from conftest import print_rows

from repro.core.knowledge import get_knowledge, get_paper_spec, paper_keys
from repro.core.llm import ChatSession
from repro.core.prompts import PromptBuilder, PromptKind, PromptStyle
from repro.core.simulated import SimulatedLLM

GUIDELINES = [
    PromptKind.DEBUG_ERROR,
    PromptKind.DEBUG_TESTCASE,
    PromptKind.DEBUG_LOGIC,
]


def _feedback_prompt(builder, kind, component):
    if kind is PromptKind.DEBUG_ERROR:
        return builder.debug_error(component, "Error: something crashed")
    if kind is PromptKind.DEBUG_TESTCASE:
        return builder.debug_testcase(component, "this case gives wrong output")
    return builder.debug_logic(component, "follow the algorithm exactly")


def _run_matrix():
    """Per guideline: (defects of that kind fixed, defects of that kind,
    defects of other kinds wrongly fixed)."""
    per_kind = {kind: [0, 0, 0] for kind in GUIDELINES}
    components_tested = 0
    for key in paper_keys():
        knowledge = get_knowledge(key)
        paper = get_paper_spec(key)
        builder = PromptBuilder(paper)
        for component_name, component in sorted(knowledge.components.items()):
            chain = component.defect_chain(PromptStyle.MODULAR_PSEUDOCODE)
            if not chain:
                continue
            components_tested += 1
            for guideline in GUIDELINES:
                same_kind = [
                    i for i, d in enumerate(chain) if d.kind is guideline
                ]
                llm = SimulatedLLM({key: get_knowledge(key)})
                session = ChatSession(f"abl:{key}")
                spec = paper.component(component_name)
                llm.chat(
                    session,
                    builder.component(spec, PromptStyle.MODULAR_PSEUDOCODE),
                )
                # Hammer with this one guideline as often as there are
                # defects in the chain.
                for _ in range(len(chain)):
                    llm.chat(
                        session,
                        _feedback_prompt(builder, guideline, component_name),
                    )
                final = session.latest_artifact(component_name).source
                expected = component.source_with(
                    PromptStyle.MODULAR_PSEUDOCODE, same_kind
                )
                per_kind[guideline][1] += len(same_kind)
                if final == expected:
                    per_kind[guideline][0] += len(same_kind)
                else:
                    # Figure out what actually changed for the report.
                    per_kind[guideline][2] += 1
    return per_kind, components_tested


def test_bench_abl3_debugging_guidelines(benchmark, capsys):
    per_kind, components_tested = benchmark.pedantic(
        _run_matrix, rounds=1, iterations=1
    )

    assert components_tested > 0
    total_expected = sum(counts[1] for counts in per_kind.values())
    total_fixed = sum(counts[0] for counts in per_kind.values())
    total_wrong = sum(counts[2] for counts in per_kind.values())
    assert total_expected > 0
    assert total_fixed == total_expected, (
        "every guideline must fix exactly the defects of its kind"
    )
    assert total_wrong == 0, (
        "no guideline may touch defects of another kind"
    )

    header = f"{'guideline':<18} {'fixed':>6} {'of':>4} {'wrong':>6}"
    rows = [
        f"{kind.value:<18} {fixed:>6} {total:>4} {wrong:>6}"
        for kind, (fixed, total, wrong) in per_kind.items()
    ]
    rows.append("")
    rows.append(
        f"{components_tested} defective components tested; each guideline "
        "repaired exactly its own defect kind (paper's lesson 4)"
    )
    print_rows(capsys, "ABL-3: debugging guideline effectiveness", header, rows)

    benchmark.extra_info["defects_fixed"] = total_fixed
    benchmark.extra_info["wrong_fixes"] = total_wrong
