"""Supporting benchmark: APKeep's per-update latency.

APKeep's headline result is absorbing each rule update in microseconds.
Measures the per-update latency distribution while replaying every
dataset as an update stream, plus the incremental cost of a burst of
inserts/removals after the build.

The workload body is :func:`repro.bench.workloads.
apkeep_update_latency_rows` -- the same update-stream replay and
deterministic burst the ``apkeep.build`` / ``apkeep.update_burst``
registry benchmarks time.
"""

from conftest import print_rows

from repro.bench.workloads import apkeep_update_latency_rows

DATASETS = ["Internet2", "Stanford", "Purdue", "Airtel"]


def test_bench_apkeep_update_latency(benchmark, capsys):
    rows_data = benchmark.pedantic(
        apkeep_update_latency_rows, args=(DATASETS,), rounds=1, iterations=1
    )

    assert len(rows_data) == len(DATASETS)
    for row in rows_data:
        assert row["updates"] > 0
        # Shape: incremental updates stay in the sub-millisecond regime
        # on every dataset (the APKeep claim, scaled to this substrate).
        assert row["p99_us"] < 50_000, f"{row['name']}: updates too slow"

    header = (
        f"{'dataset':<11} {'updates':>8} {'mean us':>9} {'p99 us':>8} "
        f"{'burst n':>8} {'burst us/upd':>13}"
    )
    rows = [
        f"{row['name']:<11} {row['updates']:>8} {row['mean_us']:>9.1f} "
        f"{row['p99_us']:>8.1f} {row['burst']:>8} {row['burst_us']:>13.1f}"
        for row in rows_data
    ]
    rows.append("")
    rows.append(
        "shape: per-update cost stays flat (sub-millisecond) as the "
        "dataset grows -- APKeep's incremental-verification claim"
    )
    print_rows(capsys, "APKeep per-update latency", header, rows)
    benchmark.extra_info["worst_p99_us"] = round(
        max(row["p99_us"] for row in rows_data), 1
    )
