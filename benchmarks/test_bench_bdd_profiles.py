"""Supporting microbenchmark: the two BDD operation profiles.

Isolates the substrate behind participant D's predicate-computation
slowdown: identical semantics, different constant factors between the
JDD-style profile (specialised ops, persistent cache) and the
JavaBDD-style profile (generic ITE, cache dropped per call, periodic
sweeps).
"""

import time

from conftest import print_rows

from repro.bdd import JDDEngine, JavaBDDEngine
from repro.bdd.builder import prefix_to_bdd
from repro.netmodel.headerspace import HEADER_BITS, Prefix


def _workload(engine):
    """A predicate-computation-shaped workload: build prefix BDDs at
    mixed lengths and refine an accumulator through them repeatedly."""
    prefixes = [
        Prefix((value << 8) & 0xFF00, 8) for value in range(0, 256, 2)
    ]
    prefixes += [
        Prefix((value << 6) & 0xFFC0, 10) for value in range(0, 512, 8)
    ]
    nodes = [prefix_to_bdd(engine, p) for p in prefixes]
    acc = nodes[0]
    for _ in range(3):
        for node in nodes[1:]:
            union = engine.or_(acc, node)
            inter = engine.and_(acc, node)
            acc = engine.diff(union, inter)
    return engine.satcount(acc)


def _compare():
    jdd = JDDEngine(HEADER_BITS)
    start = time.perf_counter()
    jdd_result = _workload(jdd)
    jdd_seconds = time.perf_counter() - start

    javabdd = JavaBDDEngine(HEADER_BITS)
    start = time.perf_counter()
    javabdd_result = _workload(javabdd)
    javabdd_seconds = time.perf_counter() - start
    return (
        jdd_result, jdd_seconds, jdd.stats(),
        javabdd_result, javabdd_seconds, javabdd.stats(),
    )


def test_bench_bdd_profiles(benchmark, capsys):
    (
        jdd_result, jdd_seconds, jdd_stats,
        javabdd_result, javabdd_seconds, javabdd_stats,
    ) = benchmark.pedantic(_compare, rounds=3, iterations=1)

    assert jdd_result == javabdd_result, "profiles must agree semantically"
    assert javabdd_seconds > jdd_seconds, "JavaBDD profile must be slower"

    ratio = javabdd_seconds / jdd_seconds
    header = f"{'profile':<10} {'seconds':>9} {'result':>8} {'hit ratio':>10}"
    rows = [
        f"{'jdd':<10} {jdd_seconds:>9.4f} {jdd_result:>8} "
        f"{jdd_stats['cache_hit_ratio']:>10.3f}",
        f"{'javabdd':<10} {javabdd_seconds:>9.4f} {javabdd_result:>8} "
        f"{javabdd_stats['cache_hit_ratio']:>10.3f}",
        "",
        f"slowdown: {ratio:.1f}x (the paper attributes up to 20x of "
        "participant D's predicate time to this library choice)",
    ]
    print_rows(capsys, "BDD operation profiles", header, rows)
    benchmark.extra_info["slowdown"] = round(ratio, 2)
    benchmark.extra_info["jdd_hit_ratio"] = round(
        jdd_stats["cache_hit_ratio"], 3
    )
    benchmark.extra_info["javabdd_hit_ratio"] = round(
        javabdd_stats["cache_hit_ratio"], 3
    )
