"""Supporting microbenchmark: the two BDD operation profiles.

Isolates the substrate behind participant D's predicate-computation
slowdown: identical semantics, different constant factors between the
JDD-style profile (specialised ops, persistent cache) and the
JavaBDD-style profile (generic ITE, cache dropped per call, periodic
sweeps).

The workload itself lives in the ``repro.bench`` registry
(``bdd.build_apply`` / ``bdd.javabdd_profile``); this file runs those
registered specs through the same runner the ``repro bench`` CLI uses,
so the paper-shape assertions here and the perf artifacts gate the
identical code.
"""

from conftest import print_rows

from repro import bench


def _compare():
    bench.discover()
    jdd = bench.run_benchmark(bench.get_spec("bdd.build_apply"), repeat=3)
    javabdd = bench.run_benchmark(
        bench.get_spec("bdd.javabdd_profile"), repeat=3
    )
    return jdd, javabdd


def test_bench_bdd_profiles(benchmark, capsys):
    jdd, javabdd = benchmark.pedantic(_compare, rounds=1, iterations=1)

    assert jdd.meta["satcount"] == javabdd.meta["satcount"], (
        "profiles must agree semantically"
    )
    assert javabdd.median_seconds > jdd.median_seconds, (
        "JavaBDD profile must be slower"
    )

    ratio = javabdd.median_seconds / jdd.median_seconds
    header = f"{'profile':<10} {'seconds':>9} {'result':>8} {'hit ratio':>10}"
    rows = [
        f"{'jdd':<10} {jdd.median_seconds:>9.4f} {jdd.meta['satcount']:>8} "
        f"{jdd.meta['cache_hit_ratio']:>10.3f}",
        f"{'javabdd':<10} {javabdd.median_seconds:>9.4f} "
        f"{javabdd.meta['satcount']:>8} "
        f"{javabdd.meta['cache_hit_ratio']:>10.3f}",
        "",
        f"slowdown: {ratio:.1f}x (the paper attributes up to 20x of "
        "participant D's predicate time to this library choice)",
    ]
    print_rows(capsys, "BDD operation profiles", header, rows)
    benchmark.extra_info["slowdown"] = round(ratio, 2)
    benchmark.extra_info["jdd_hit_ratio"] = jdd.meta["cache_hit_ratio"]
    benchmark.extra_info["javabdd_hit_ratio"] = javabdd.meta["cache_hit_ratio"]
