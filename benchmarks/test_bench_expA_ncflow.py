"""EXP-A -- participant A: reproduced NCFlow on 13 TE instances.

Paper's findings: the reproduced NCFlow computes the objective within a
maximal 3.51% of the open-source prototype, with an end-to-end latency
up to 111x higher, attributed solely to the LP toolchain (PuLP vs
Gurobi).

Shape asserted here: every instance solves; the reproduction never beats
the PF4 optimum (feasibility); the maximal objective difference from the
reference stays in the single digits; the reproduction is slower on a
clear majority of instances; and swapping only the LP backend of the
*reference* reproduces the direction of the latency gap.
"""

import time

from conftest import print_rows

from repro.lp import FastLPBackend, SlowLPBackend
from repro.netmodel.instances import ncflow_instances
from repro.te import solve_max_flow, solve_max_flow_edge
from repro.te.ncflow import NCFlowSolver


def _run_all(reproduced_module):
    rows = []
    for instance in ncflow_instances(max_commodities=300, total_demand_fraction=0.1):
        start = time.perf_counter()
        reference = NCFlowSolver().solve(instance.topology, instance.traffic)
        reference_seconds = time.perf_counter() - start
        start = time.perf_counter()
        reproduced_objective = reproduced_module.solve_ncflow(
            instance.topology, instance.traffic
        )
        reproduced_seconds = time.perf_counter() - start
        optimal = solve_max_flow(instance.topology, instance.traffic)
        exact = solve_max_flow_edge(instance.topology, instance.traffic)
        rows.append(
            {
                "name": instance.name,
                "reference": reference.objective,
                "reproduced": reproduced_objective,
                "pf4": optimal.objective,
                "exact": exact.objective,
                "reference_seconds": reference_seconds,
                "reproduced_seconds": reproduced_seconds,
            }
        )
    return rows


def test_bench_expA_ncflow(benchmark, capsys, reproduced_ncflow):
    rows_data = benchmark.pedantic(
        _run_all, args=(reproduced_ncflow,), rounds=1, iterations=1
    )

    assert len(rows_data) == 13
    worst_diff = 0.0
    worst_latency_ratio = 0.0
    slower_count = 0
    for row in rows_data:
        assert row["reproduced"] > 0
        assert row["reproduced"] <= row["exact"] * 1.001, (
            f"{row['name']}: reproduction beats the exact optimum (infeasible)"
        )
        assert row["reference"] <= row["exact"] * 1.001
        diff = abs(row["reference"] - row["reproduced"]) / row["reference"]
        ratio = row["reproduced_seconds"] / row["reference_seconds"]
        worst_diff = max(worst_diff, diff)
        worst_latency_ratio = max(worst_latency_ratio, ratio)
        if ratio > 1.0:
            slower_count += 1
    assert worst_diff < 0.08, f"objective diff too large: {worst_diff:.1%}"
    assert slower_count >= 8, "the reproduction should usually be slower"

    # Isolated toolchain factor: the reference solver, fast vs slow LP
    # backend, on the largest instance (the paper's 111x explanation).
    largest = ncflow_instances(max_commodities=300, total_demand_fraction=0.1)[7]
    start = time.perf_counter()
    NCFlowSolver(backend=FastLPBackend()).solve(largest.topology, largest.traffic)
    fast_seconds = time.perf_counter() - start
    start = time.perf_counter()
    NCFlowSolver(backend=SlowLPBackend()).solve(largest.topology, largest.traffic)
    slow_seconds = time.perf_counter() - start
    assert slow_seconds > fast_seconds, "slow toolchain must cost latency"

    header = (
        f"{'instance':<15} {'reference':>10} {'reproduced':>11} {'pf4':>10} "
        f"{'diff':>7} {'lat.ratio':>9}"
    )
    rows = []
    for row in rows_data:
        diff = abs(row["reference"] - row["reproduced"]) / row["reference"]
        ratio = row["reproduced_seconds"] / row["reference_seconds"]
        rows.append(
            f"{row['name']:<15} {row['reference']:>10.0f} "
            f"{row['reproduced']:>11.0f} {row['pf4']:>10.0f} "
            f"{diff * 100:6.2f}% {ratio:8.1f}x"
        )
    rows.append("")
    rows.append(
        f"max objective diff: {worst_diff * 100:.2f}%  (paper: 3.51%)"
    )
    rows.append(
        f"max end-to-end latency ratio: {worst_latency_ratio:.1f}x  "
        "(paper: up to 111x; see EXPERIMENTS.md on magnitude)"
    )
    rows.append(
        f"toolchain-only factor on {largest.name}: "
        f"{slow_seconds / fast_seconds:.1f}x (slow vs fast LP backend)"
    )
    print_rows(capsys, "EXP-A: reproduced NCFlow on 13 instances", header, rows)

    benchmark.extra_info["max_objective_diff_pct"] = round(worst_diff * 100, 2)
    benchmark.extra_info["max_latency_ratio"] = round(worst_latency_ratio, 2)
    benchmark.extra_info["toolchain_factor"] = round(
        slow_seconds / fast_seconds, 2
    )
