"""EXP-B -- participant B: reproduced ARROW on 2 TE instances.

Paper's finding: the computed objective differs from the open-source
prototype by up to 30%, rooted in two documented paper-code
inconsistencies (predefined restoration parameters vs decision
variables; differing restorable-tunnel definitions).

Shape asserted here: the reproduction matches the paper-faithful
reference almost exactly; the open-source (code) variant dominates it;
the worst-case gap across the two instances is substantial (tens of
percent); restoration always helps (none <= paper <= code).
"""

import time

from conftest import print_rows

from repro.netmodel.instances import arrow_instances
from repro.te.arrow import ArrowSolver, single_fiber_scenarios


def _run_all(reproduced_module):
    rows = []
    for instance in arrow_instances(max_commodities=120):
        scenarios = single_fiber_scenarios(instance.topology, limit=12)
        objectives = {}
        for variant in ("none", "paper", "code"):
            solution = ArrowSolver(variant=variant).solve(
                instance.topology, instance.traffic, scenarios
            )
            objectives[variant] = solution.objective
        start = time.perf_counter()
        reproduced = reproduced_module.solve_arrow(
            instance.topology, instance.traffic
        )
        seconds = time.perf_counter() - start
        rows.append(
            {
                "name": instance.name,
                "reproduced": reproduced,
                "seconds": seconds,
                **objectives,
            }
        )
    return rows


def test_bench_expB_arrow(benchmark, capsys, reproduced_arrow):
    rows_data = benchmark.pedantic(
        _run_all, args=(reproduced_arrow,), rounds=1, iterations=1
    )

    assert len(rows_data) == 2
    worst_gap = 0.0
    for row in rows_data:
        # Restoration ordering: none <= paper <= code.
        assert row["none"] <= row["paper"] + 1e-6
        assert row["paper"] <= row["code"] + 1e-6
        # The reproduction is the paper-faithful variant.
        paper_gap = abs(row["reproduced"] - row["paper"]) / row["paper"]
        assert paper_gap < 0.02, (
            f"{row['name']}: reproduction does not match the paper variant"
        )
        gap = (row["code"] - row["reproduced"]) / row["code"]
        worst_gap = max(worst_gap, gap)
    # The documented inconsistency shows up as a large objective gap on
    # at least one instance (paper: up to 30%).
    assert 0.05 < worst_gap < 0.45

    header = (
        f"{'instance':<14} {'no-rest.':>10} {'reproduced':>11} "
        f"{'paper-var':>10} {'open-src':>10} {'gap':>7}"
    )
    rows = []
    for row in rows_data:
        gap = (row["code"] - row["reproduced"]) / row["code"]
        rows.append(
            f"{row['name']:<14} {row['none']:>10.0f} {row['reproduced']:>11.0f} "
            f"{row['paper']:>10.0f} {row['code']:>10.0f} {gap * 100:6.1f}%"
        )
    rows.append("")
    rows.append(
        f"max objective gap vs open source: {worst_gap * 100:.1f}%  "
        "(paper: up to 30%)"
    )
    print_rows(capsys, "EXP-B: reproduced ARROW on 2 instances", header, rows)

    benchmark.extra_info["max_open_source_gap_pct"] = round(worst_gap * 100, 1)
