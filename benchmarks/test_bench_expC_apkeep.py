"""EXP-C -- participant C: reproduced APKeep on 4 datasets.

Paper's finding: on all four real-topology datasets, the reproduced
APKeep and the open-source prototype compute the same number of atomic
predicates and have approximately the same latency (both link the same
BDD library family).

Shape asserted here: identical atom counts on all four datasets, loop
verdicts agree (including on a perturbed dataset), and the build latency
ratio stays within a small constant of 1.
"""

import time

from conftest import print_rows

from repro.apkeep import APKeepVerifier
from repro.netmodel.datasets import build_verification_dataset, inject_loop

DATASETS = ["Internet2", "Stanford", "Purdue", "Airtel"]


def _run_all(reproduced_module):
    rows = []
    for name in DATASETS:
        dataset = build_verification_dataset(name)
        start = time.perf_counter()
        reference = APKeepVerifier(dataset)
        reference_seconds = time.perf_counter() - start
        start = time.perf_counter()
        state = reproduced_module.build_network(dataset)
        reproduced_seconds = time.perf_counter() - start
        rows.append(
            {
                "name": name,
                "rules": dataset.total_rules,
                "reference_atoms": reference.num_atoms_minimal,
                "reproduced_atoms": reproduced_module.count_atoms(state),
                "reference_seconds": reference_seconds,
                "reproduced_seconds": reproduced_seconds,
                "reference_loops": len(reference.find_loops()),
                "reproduced_loops": len(reproduced_module.find_loops(state)),
            }
        )
    return rows


def test_bench_expC_apkeep(benchmark, capsys, reproduced_apkeep):
    rows_data = benchmark.pedantic(
        _run_all, args=(reproduced_apkeep,), rounds=1, iterations=1
    )

    assert len(rows_data) == 4
    worst_ratio = 0.0
    for row in rows_data:
        assert row["reproduced_atoms"] == row["reference_atoms"], (
            f"{row['name']}: atom counts differ"
        )
        assert row["reproduced_loops"] == row["reference_loops"] == 0
        ratio = row["reproduced_seconds"] / row["reference_seconds"]
        worst_ratio = max(worst_ratio, ratio)
    # "Approximately the same latency": within a small constant factor.
    assert worst_ratio < 5.0

    # Anomaly agreement on a perturbed dataset.
    perturbed, _ = inject_loop(build_verification_dataset("Internet2"), seed=3)
    reference_loops = len(APKeepVerifier(perturbed).find_loops())
    state = reproduced_apkeep.build_network(perturbed)
    reproduced_loops = len(reproduced_apkeep.find_loops(state))
    assert reference_loops > 0 and reproduced_loops > 0

    header = (
        f"{'dataset':<11} {'rules':>6} {'ref atoms':>9} {'repro atoms':>11} "
        f"{'ref sec':>9} {'repro sec':>10} {'ratio':>6}"
    )
    rows = []
    for row in rows_data:
        ratio = row["reproduced_seconds"] / row["reference_seconds"]
        rows.append(
            f"{row['name']:<11} {row['rules']:>6} {row['reference_atoms']:>9} "
            f"{row['reproduced_atoms']:>11} {row['reference_seconds']:>9.3f} "
            f"{row['reproduced_seconds']:>10.3f} {ratio:>5.1f}x"
        )
    rows.append("")
    rows.append(
        "paper: same #atomic predicates, approximately the same latency "
        f"-- measured worst latency ratio {worst_ratio:.1f}x"
    )
    print_rows(capsys, "EXP-C: reproduced APKeep on 4 datasets", header, rows)

    benchmark.extra_info["worst_latency_ratio"] = round(worst_ratio, 2)
