"""EXP-D -- participant D: reproduced AP on 3 datasets.

Paper's findings: the reproduction computes the same number of atomic
predicates and the same verification results, but (1) predicate
computation is up to 20x slower because of the BDD library choice
(JavaBDD vs JDD) and (2) reachability verification is up to 10^4x slower
because D enumerated all paths instead of the authors' selective BFS.

Shape asserted here: identical atom counts and identical reachability
answers; the JavaBDD-profile build is slower on every dataset; the
path-enumeration strategy is orders of magnitude slower, growing with
topology size and crossing 10^3x on the largest dataset.
"""

import time

from conftest import print_rows

from repro.ap import APVerifier
from repro.netmodel.datasets import build_verification_dataset

DATASETS = ["Internet2", "Stanford", "Purdue"]


def _run_all(reproduced_module):
    rows = []
    for name in DATASETS:
        dataset = build_verification_dataset(name)
        reference = APVerifier(dataset)  # JDD profile, selective BFS
        start = time.perf_counter()
        state = reproduced_module.build_verifier(dataset)  # JavaBDD profile
        build_seconds = time.perf_counter() - start

        nodes = dataset.topology.nodes
        pairs = [
            (nodes[0], nodes[-1]),
            (nodes[1], nodes[-2]),
            (nodes[2], nodes[-3]),
        ]
        bfs_seconds = 0.0
        enum_seconds = 0.0
        answers_match = True
        for src, dst in pairs:
            start = time.perf_counter()
            want = reference.reachable_atoms(src, dst)
            bfs_seconds += time.perf_counter() - start
            start = time.perf_counter()
            got = reproduced_module.reachable(state, src, dst)
            enum_seconds += time.perf_counter() - start
            want_headers = reference.atomics.satcount(want.atoms)
            got_headers = reproduced_module.atoms_satcount(state, got)
            answers_match = answers_match and want_headers == got_headers
        rows.append(
            {
                "name": name,
                "reference_atoms": reference.num_atoms,
                "reproduced_atoms": reproduced_module.count_atoms(state),
                "reference_build": reference.predicate_seconds,
                "reproduced_build": build_seconds,
                "bfs_seconds": bfs_seconds,
                "enum_seconds": enum_seconds,
                "answers_match": answers_match,
            }
        )
    return rows


def test_bench_expD_ap(benchmark, capsys, reproduced_ap):
    rows_data = benchmark.pedantic(
        _run_all, args=(reproduced_ap,), rounds=1, iterations=1
    )

    assert len(rows_data) == 3
    verify_ratios = []
    for row in rows_data:
        assert row["reproduced_atoms"] == row["reference_atoms"]
        assert row["answers_match"], f"{row['name']}: reachability differs"
        # BDD-library direction: the JavaBDD profile is always slower.
        assert row["reproduced_build"] > row["reference_build"]
        verify_ratios.append(row["enum_seconds"] / row["bfs_seconds"])
    # Path enumeration blows up with topology size...
    assert verify_ratios == sorted(verify_ratios)
    # ...and crosses three orders of magnitude on the largest dataset.
    assert verify_ratios[-1] > 1e3

    header = (
        f"{'dataset':<11} {'atoms':>6} {'build jdd':>10} {'build jbdd':>11} "
        f"{'x':>5} {'bfs ms':>8} {'enum ms':>9} {'x':>8}"
    )
    rows = []
    for row in rows_data:
        build_ratio = row["reproduced_build"] / row["reference_build"]
        verify_ratio = row["enum_seconds"] / row["bfs_seconds"]
        rows.append(
            f"{row['name']:<11} {row['reference_atoms']:>6} "
            f"{row['reference_build']:>10.4f} {row['reproduced_build']:>11.4f} "
            f"{build_ratio:>4.1f}x {row['bfs_seconds'] * 1000:>8.2f} "
            f"{row['enum_seconds'] * 1000:>9.1f} {verify_ratio:>7.0f}x"
        )
    rows.append("")
    rows.append(
        "paper: up to 20x slower predicates (BDD library), up to 10^4x "
        "slower verification (path enumeration)"
    )
    rows.append(
        f"measured: up to {max(r['reproduced_build'] / r['reference_build'] for r in rows_data):.1f}x "
        f"predicates, up to {verify_ratios[-1]:.0f}x verification"
    )
    print_rows(capsys, "EXP-D: reproduced AP on 3 datasets", header, rows)

    benchmark.extra_info["max_verify_ratio"] = round(verify_ratios[-1])
