"""FIG1 -- Figure 1: SIGCOMM/NSDI papers with an author open-source
prototype, 2013-2022.

Paper's numbers: 32% SIGCOMM / 29% NSDI / 31% combined.
"""

from conftest import print_rows

from repro.study import build_corpus, opensource_stats


def test_bench_fig1_opensource_stats(benchmark, capsys):
    stats = benchmark(lambda: opensource_stats(build_corpus()))

    sigcomm = stats.venue_fraction("SIGCOMM")
    nsdi = stats.venue_fraction("NSDI")
    combined = stats.combined_fraction

    # Shape: the rounded percentages match the paper exactly.
    assert round(sigcomm * 100) == 32
    assert round(nsdi * 100) == 29
    assert round(combined * 100) == 31

    rows = [
        f"{'metric':<24} {'paper':>8} {'measured':>10}",
        f"{'SIGCOMM open-source':<24} {'32%':>8} {sigcomm * 100:9.1f}%",
        f"{'NSDI open-source':<24} {'29%':>8} {nsdi * 100:9.1f}%",
        f"{'combined open-source':<24} {'31%':>8} {combined * 100:9.1f}%",
        "",
        f"{'venue':<8} {'year':>5} {'open':>5} {'total':>6} {'frac':>7}",
    ]
    for venue, year, opened, total, fraction in stats.rows():
        rows.append(
            f"{venue:<8} {year:>5} {opened:>5} {total:>6} {fraction * 100:6.1f}%"
        )
    print_rows(capsys, "FIG1: open-source prototype availability", rows[0], rows[1:])

    benchmark.extra_info["sigcomm_pct"] = round(sigcomm * 100, 2)
    benchmark.extra_info["nsdi_pct"] = round(nsdi * 100, 2)
    benchmark.extra_info["combined_pct"] = round(combined * 100, 2)
