"""FIG2 -- Figure 2: systems-in-comparison and manual reproductions.

Paper's numbers: 59.68% of papers compare with at least two other
systems; papers that reproduce at all reproduce 2.29 systems on average;
49.20% / 26.65% manually reproduce at least one / two.
"""

import pytest
from conftest import print_rows

from repro.study import build_corpus, comparison_stats


def test_bench_fig2_comparison_stats(benchmark, capsys):
    stats = benchmark(lambda: comparison_stats(build_corpus()))

    # Shape: the four reported aggregates within half a point.
    assert stats.frac_compared_ge2 == pytest.approx(0.5968, abs=0.005)
    assert stats.frac_manual_ge1 == pytest.approx(0.4920, abs=0.005)
    assert stats.frac_manual_ge2 == pytest.approx(0.2665, abs=0.005)
    assert stats.mean_manual_given_any == pytest.approx(2.29, abs=0.03)

    header = f"{'metric':<34} {'paper':>8} {'measured':>10}"
    rows = [
        f"{'compare >= 2 systems':<34} {'59.68%':>8} "
        f"{stats.frac_compared_ge2 * 100:9.2f}%",
        f"{'mean manual (papers with >= 1)':<34} {'2.29':>8} "
        f"{stats.mean_manual_given_any:10.2f}",
        f"{'manually reproduce >= 1':<34} {'49.20%':>8} "
        f"{stats.frac_manual_ge1 * 100:9.2f}%",
        f"{'manually reproduce >= 2':<34} {'26.65%':>8} "
        f"{stats.frac_manual_ge2 * 100:9.2f}%",
        "",
        f"{'#manually reproduced':<22} {'papers':>7}",
    ]
    for count in sorted(stats.manual_histogram):
        rows.append(
            f"{count:<22} {stats.manual_histogram[count]:>7}"
        )
    print_rows(
        capsys, "FIG2: compared and manually reproduced systems", header, rows
    )

    benchmark.extra_info["compared_ge2_pct"] = round(
        stats.frac_compared_ge2 * 100, 2
    )
    benchmark.extra_info["mean_manual_given_any"] = round(
        stats.mean_manual_given_any, 3
    )
