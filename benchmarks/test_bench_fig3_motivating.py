"""FIG3 -- section 2.2 / Figure 3: the rock-paper-scissors motivating
example.

Paper's numbers: 4 prompts, 159 words, 93 LoC, and the generated
client/server program plays correctly.  The benchmark replays the
conversation *and* plays the game over real loopback sockets.
"""

import contextlib
import io

from conftest import print_rows

from repro.core.assembly import assemble_module
from repro.motivating import play_scripted_game, run_motivating_session


def _session_and_game():
    result = run_motivating_session()
    module = assemble_module(result.artifacts, "rps_bench")
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        outcome = play_scripted_game(module)
    return result, outcome


def test_bench_fig3_motivating(benchmark, capsys):
    result, outcome = benchmark.pedantic(
        _session_and_game, rounds=3, iterations=1
    )

    # Shape: exactly the paper's conversation and a correct game.
    assert result.num_prompts == 4
    assert result.total_words == 159
    assert result.total_loc == 93
    assert outcome.results == ["client", "server", "tie"]
    assert outcome.consistent

    header = f"{'metric':<22} {'paper':>8} {'measured':>10}"
    rows = [
        f"{'prompts':<22} {'4':>8} {result.num_prompts:>10}",
        f"{'prompt words':<22} {'159':>8} {result.total_words:>10}",
        f"{'generated LoC':<22} {'93':>8} {result.total_loc:>10}",
        f"{'game rounds played':<22} {'-':>8} {outcome.rounds_played:>10}",
        f"{'round verdicts':<22} {'-':>8} {' '.join(outcome.results):>10}",
    ]
    print_rows(capsys, "FIG3: motivating example", header, rows)

    benchmark.extra_info["prompts"] = result.num_prompts
    benchmark.extra_info["words"] = result.total_words
    benchmark.extra_info["loc"] = result.total_loc
