"""FIG4 -- Figure 4: prompts and words used by each participant.

The paper plots per-participant prompt and word counts without stating
the values in the text; the shape assertions are that every participant
succeeds with a few dozen prompts at most, that debugging accounts for a
visible share of them, and that the counts are deterministic.
"""

from conftest import print_rows

from repro.experiments import figure4_rows, run_experiment


def test_bench_fig4_prompts(benchmark, capsys):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    assert result.all_succeeded
    rows_data = figure4_rows(result)
    again = figure4_rows(run_experiment())
    assert rows_data == again, "prompt counts must be deterministic"

    header = f"{'participant':<12} {'system':<8} {'prompts':>8} {'words':>8}"
    rows = []
    for participant, system, prompts, words in rows_data:
        assert 5 <= prompts <= 40
        assert 100 <= words <= 5000
        rows.append(f"{participant:<12} {system:<8} {prompts:>8} {words:>8}")
        benchmark.extra_info[f"{participant}_prompts"] = prompts
        benchmark.extra_info[f"{participant}_words"] = words
    print_rows(capsys, "FIG4: prompts and words per participant", header, rows)
