"""FIG5 -- Figure 5: LoC of reproduced vs open-source prototypes.

Paper's shape: the TE reproductions are a small fraction of their
prototypes (A: 17%, B: 19% -- the prototypes bundle solver glue and
input parsing), while the verification reproductions are comparable in
size (C and D roughly the prototype's size, both linking an external
BDD library).
"""

from conftest import print_rows

from repro.experiments import figure5_rows, run_experiment

PAPER_RATIOS = {"A": 0.17, "B": 0.19, "C": 1.0, "D": 1.0}


def test_bench_fig5_loc(benchmark, capsys):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert result.all_succeeded

    rows_data = figure5_rows(result)
    ratios = {participant: ratio for participant, _, _, _, ratio in rows_data}

    # Shape: TE ratios are small; DPV ratios are several times larger.
    assert ratios["A"] < 0.35
    assert ratios["B"] < 0.35
    assert ratios["C"] > 2 * ratios["A"]
    assert ratios["D"] > 2 * ratios["B"]

    header = (
        f"{'part.':<6} {'system':<8} {'repro LoC':>10} {'ref LoC':>8} "
        f"{'measured':>9} {'paper':>7}"
    )
    rows = []
    for participant, system, reproduced, reference, ratio in rows_data:
        rows.append(
            f"{participant:<6} {system:<8} {reproduced:>10} {reference:>8} "
            f"{ratio * 100:8.0f}% {PAPER_RATIOS[participant] * 100:6.0f}%"
        )
        benchmark.extra_info[f"{participant}_ratio"] = round(ratio, 3)
    print_rows(capsys, "FIG5: reproduced vs open-source LoC", header, rows)
