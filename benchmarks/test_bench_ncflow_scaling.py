"""Supporting benchmark: NCFlow's speed/quality trade-off vs baselines.

The core claim of the NCFlow substrate (and the reason participant A's
system exists): the decomposition solves far fewer LP rows than the
exact edge-formulation optimum while staying close on total flow.  Also
ablates the partition quality (random vs structure-aware), a design
choice DESIGN.md calls out.

The workload body is :func:`repro.bench.workloads.ncflow_scaling_rows`
-- the same solver invocations the ``te.*`` registry benchmarks time on
their smoke instance, here scaled up to the four named instances.
"""

from conftest import print_rows

from repro.bench.workloads import ncflow_scaling_rows

INSTANCES = ["Uninett2010", "Colt", "Cogentco", "Kdl"]


def test_bench_ncflow_scaling(benchmark, capsys):
    rows_data = benchmark.pedantic(
        ncflow_scaling_rows, args=(INSTANCES,), rounds=1, iterations=1
    )

    for row in rows_data:
        assert row["ncflow"] <= row["exact"] * 1.001
        assert row["random"] <= row["exact"] * 1.001
        assert row["fleischer"] <= row["exact"] * 1.001
        assert row["fleischer"] >= row["exact"] * 0.5
        # Structure-aware partitions must beat random ones somewhere big.
    best_gain = max(
        (row["ncflow"] - row["random"]) / row["exact"] for row in rows_data
    )
    assert best_gain > 0.02, "partition quality must matter"
    # On the largest instance the decomposition is faster than exact.
    largest = rows_data[-1]
    assert largest["ncflow_seconds"] < largest["exact_seconds"]

    header = (
        f"{'instance':<13} {'n':>4} {'exact':>9} {'ncflow':>9} {'random':>9} "
        f"{'fleischer':>10} {'flow frac':>9} {'speedup':>8}"
    )
    rows = []
    for row in rows_data:
        fraction = row["ncflow"] / row["exact"]
        speedup = row["exact_seconds"] / row["ncflow_seconds"]
        rows.append(
            f"{row['name']:<13} {row['nodes']:>4} {row['exact']:>9.0f} "
            f"{row['ncflow']:>9.0f} {row['random']:>9.0f} "
            f"{row['fleischer']:>10.0f} "
            f"{fraction * 100:8.1f}% {speedup:>7.1f}x"
        )
    print_rows(
        capsys,
        "NCFlow vs exact optimum vs random-partition ablation",
        header,
        rows,
    )
    benchmark.extra_info["largest_speedup"] = round(
        rows_data[-1]["exact_seconds"] / rows_data[-1]["ncflow_seconds"], 2
    )
