"""Supporting benchmark: satisfied-fraction vs demand scale.

The crossover-style series TE papers plot: sweep the traffic matrix
scale from underload to overload and track the fraction of demand each
solver satisfies.  PF4 (optimal within its path set) upper-bounds
NCFlow everywhere; both sit at ~100% below the max feasible scale and
roll off beyond it, with NCFlow's decomposition penalty appearing only
under contention.

The workload body is :func:`repro.bench.workloads.demand_scale_series`.
"""

from conftest import print_rows

from repro.bench.workloads import demand_scale_series

SCALES = [0.25, 0.5, 1.0, 2.0, 4.0]


def test_bench_scale_sweep(benchmark, capsys):
    feasible, pf4_points, ncflow_points = benchmark.pedantic(
        demand_scale_series, args=(SCALES,), rounds=1, iterations=1
    )

    assert feasible > 0
    for pf4, ncflow in zip(pf4_points, ncflow_points):
        # NCFlow never beats PF4 by more than path-set noise, and both
        # fractions decrease (weakly) as scale grows.
        assert ncflow.objective <= pf4.objective * 1.05
    pf4_fractions = [point.satisfied_fraction for point in pf4_points]
    assert all(
        earlier >= later - 1e-6
        for earlier, later in zip(pf4_fractions, pf4_fractions[1:])
    ), "satisfied fraction must be non-increasing in scale"
    # Below the feasibility knee, everything fits.
    for point in pf4_points:
        if point.scale * 1.0 <= feasible * 0.99:
            assert point.satisfied_fraction > 0.99

    header = (
        f"{'scale':>6} {'demand':>10} {'pf4 sat':>8} {'ncflow sat':>11}"
    )
    rows = []
    for pf4, ncflow in zip(pf4_points, ncflow_points):
        rows.append(
            f"{pf4.scale:>6.2f} {pf4.total_demand:>10.0f} "
            f"{pf4.satisfied_fraction * 100:7.1f}% "
            f"{ncflow.satisfied_fraction * 100:10.1f}%"
        )
    rows.append("")
    rows.append(f"max feasible scale (exact oracle): {feasible:.2f}")
    print_rows(capsys, "Demand-scale sweep on Colt", header, rows)
    benchmark.extra_info["max_feasible_scale"] = round(feasible, 3)
