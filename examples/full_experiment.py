#!/usr/bin/env python
"""Run the paper's full experiment: participants A-D reproduce their
systems, and the Figure 4 / Figure 5 series are printed.

Run:  python examples/full_experiment.py
"""

import time

from repro.experiments import figure4_rows, figure5_rows, run_experiment

PAPER_LOC_RATIOS = {"A": "17%", "B": "19%", "C": "~100%", "D": "~100%"}


def main():
    print("Running participants A-D (simulated LLM)...")
    start = time.perf_counter()
    result = run_experiment()
    elapsed = time.perf_counter() - start
    print(f"Done in {elapsed:.1f}s; all succeeded: {result.all_succeeded}")

    print()
    print("Figure 4 -- prompts and words per participant:")
    print(f"  {'part.':<6} {'system':<8} {'prompts':>8} {'words':>7}")
    for participant, system, prompts, words in figure4_rows(result):
        print(f"  {participant:<6} {system:<8} {prompts:>8} {words:>7}")

    print()
    print("Figure 5 -- LoC of reproduced vs open-source prototypes:")
    print(
        f"  {'part.':<6} {'system':<8} {'repro':>7} {'ref':>7} "
        f"{'measured':>9} {'paper':>7}"
    )
    for participant, system, reproduced, reference, ratio in figure5_rows(result):
        print(
            f"  {participant:<6} {system:<8} {reproduced:>7} {reference:>7} "
            f"{ratio * 100:8.0f}% {PAPER_LOC_RATIOS[participant]:>7}"
        )

    print()
    print("Per-participant validation details:")
    for name in sorted(result.reports):
        report = result.reports[name]
        print(f"  {name} ({report.paper_key}):")
        for key, value in sorted(report.validation_details.items()):
            if isinstance(value, float):
                print(f"      {key} = {value:.4g}")
            else:
                print(f"      {key} = {value}")


if __name__ == "__main__":
    main()
