#!/usr/bin/env python
"""Quickstart: reproduce the paper's motivating example end to end.

Replays the four-prompt conversation (section 2.2) against the simulated
LLM, assembles the generated rock-paper-scissors client/server, and
plays a real game over loopback sockets -- the smallest complete tour of
the framework: prompt -> generate -> assemble -> run -> validate.

Run:  python examples/quickstart.py
"""

from repro.core.assembly import assemble_module
from repro.core.validation import validate_rps
from repro.motivating import (
    MOTIVATING_PROMPTS,
    play_scripted_game,
    run_motivating_session,
)


def main():
    print("Replaying the motivating conversation (section 2.2)...")
    for index, prompt in enumerate(MOTIVATING_PROMPTS, start=1):
        preview = prompt.text[:64].rstrip() + "..."
        print(f"  prompt {index} ({prompt.word_count:>3} words): {preview}")

    result = run_motivating_session()
    print()
    print(
        f"Conversation: {result.num_prompts} prompts, "
        f"{result.total_words} words (paper: 4 prompts, 159 words)"
    )
    print(
        f"Generated program: {result.total_loc} lines of code "
        "(paper: 93 LoC)"
    )

    print()
    print("Assembling and running the generated game over loopback...")
    module = assemble_module(result.artifacts, "rps_quickstart")
    outcome = play_scripted_game(module)
    print()
    print(f"Rounds played: {outcome.rounds_played}")
    print(f"Verdicts     : {outcome.results}")
    print(f"Client agrees: {outcome.consistent}")

    passed, details = validate_rps(module)
    print()
    print(f"Validation against the expected game transcript: "
          f"{'PASSED' if passed else 'FAILED'} ({details})")


if __name__ == "__main__":
    main()
