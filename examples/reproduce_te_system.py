#!/usr/bin/env python
"""Reproduce a traffic-engineering system with the full pipeline.

Drives participant A's session: the simulated LLM generates NCFlow
component by component (with its seeded first-draft bugs), the pipeline
tests and debugs each component using the three guidelines, assembles
the prototype, and validates it against the reference implementation --
then solves a real TE instance with the reproduced code and compares it
with the reference solver and the optimal baseline.

Run:  python examples/reproduce_te_system.py [instance-name]
"""

import sys
import time

from repro.core.assembly import assemble_module
from repro.experiments import run_participant
from repro.netmodel.instances import make_te_instance
from repro.netmodel.topozoo import NCFLOW_INSTANCE_NAMES
from repro.te import solve_max_flow, solve_max_flow_edge
from repro.te.ncflow import NCFlowSolver


def main():
    instance_name = sys.argv[1] if len(sys.argv) > 1 else "Colt"
    if instance_name not in NCFLOW_INSTANCE_NAMES:
        raise SystemExit(
            f"unknown instance {instance_name!r}; "
            f"pick one of {NCFLOW_INSTANCE_NAMES}"
        )

    print("Running participant A's reproduction session (NCFlow)...")
    report = run_participant("A")
    print(f"  {report.summary_row()}")
    for outcome in report.components:
        print(
            f"    {outcome.name:<14} revisions={outcome.revisions} "
            f"debug_rounds={outcome.debug_rounds} "
            f"{'ok' if outcome.passed else 'FAILED'}"
        )
    print(f"  validation: {report.validation_details}")
    if not report.succeeded:
        raise SystemExit("reproduction failed")

    print()
    print(f"Solving the {instance_name} instance with the reproduced code...")
    instance = make_te_instance(
        instance_name, max_commodities=300, total_demand_fraction=0.1
    )

    # Rebuild the reproduced module from the session's final artifacts.
    from repro.core.knowledge import get_knowledge, get_paper_spec
    from repro.core.llm import CodeArtifact

    knowledge = get_knowledge("ncflow")
    artifacts = [
        CodeArtifact(c.name, "python", knowledge.components[c.name].final_source, 9)
        for c in get_paper_spec("ncflow").components
    ]
    reproduced = assemble_module(artifacts, "reproduced_ncflow_example")

    start = time.perf_counter()
    reproduced_objective = reproduced.solve_ncflow(
        instance.topology, instance.traffic
    )
    reproduced_seconds = time.perf_counter() - start

    start = time.perf_counter()
    reference = NCFlowSolver().solve(instance.topology, instance.traffic)
    reference_seconds = time.perf_counter() - start
    pf4 = solve_max_flow(instance.topology, instance.traffic)
    exact = solve_max_flow_edge(instance.topology, instance.traffic)

    diff = abs(reference.objective - reproduced_objective) / reference.objective
    print()
    print(f"  total demand          : {instance.traffic.total_demand:12.0f} Mbps")
    print(f"  exact optimum         : {exact.objective:12.0f} Mbps")
    print(f"  PF4 baseline          : {pf4.objective:12.0f} Mbps")
    print(
        f"  reference NCFlow      : {reference.objective:12.0f} Mbps "
        f"({reference_seconds:.2f}s, {reference.lp_count} LPs)"
    )
    print(
        f"  reproduced NCFlow     : {reproduced_objective:12.0f} Mbps "
        f"({reproduced_seconds:.2f}s)"
    )
    print(f"  objective difference  : {diff * 100:11.2f} %  (paper: max 3.51%)")
    print(
        f"  latency ratio         : "
        f"{reproduced_seconds / reference_seconds:11.1f} x"
    )


if __name__ == "__main__":
    main()
