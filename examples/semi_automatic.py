#!/usr/bin/env python
"""The section-4 extensions, end to end.

Demonstrates the semi-automatic workflow the paper sketches as future
work, using the deterministic stand-ins this library implements:

1. a structured *paper document* (what an upstream LLM would extract
   from the PDF) is parsed into a PaperSpec;
2. the reproduction pipeline runs against it;
3. the conversation is exported as a markdown log (as the authors
   published theirs);
4. the reproduced prototype is comparatively analysed against the
   reference to surface paper-vs-prototype discrepancies — the
   mechanised version of what participants B and D did by hand.

Run:  python examples/semi_automatic.py
"""

from repro.core import SimulatedLLM, parse_paperdoc, render_paperdoc
from repro.core.discrepancy import analyze
from repro.core.knowledge import (
    get_component_tests,
    get_knowledge,
    get_logic_notes,
    get_paper_spec,
)
from repro.core.pipeline import ReproductionPipeline
from repro.core.transcript import summarize
from repro.core.validation import get_validator


def main():
    # 1. Start from the structured paper document, not the PaperSpec.
    document = render_paperdoc(get_paper_spec("arrow"))
    print("Paper document (first 12 lines):")
    for line in document.splitlines()[:12]:
        print(f"  {line}")
    print("  ...")
    spec = parse_paperdoc(document)
    print(f"\nParsed: {spec.title} ({spec.venue} {spec.year}), "
          f"{len(spec.components)} components: {', '.join(spec.component_names)}")

    # 2. Run the pipeline from the parsed spec.
    llm = SimulatedLLM({"arrow": get_knowledge("arrow")})
    pipeline = ReproductionPipeline(
        llm,
        spec,
        component_tests=get_component_tests("arrow"),
        logic_notes=get_logic_notes("arrow"),
        validator=get_validator("arrow"),
        participant="auto",
    )
    report = pipeline.run()
    print(f"\nPipeline: {report.summary_row()}")

    # 3. Export the conversation.
    print("\nConversation summary:")
    print(summarize(pipeline.session))

    # 4. Comparative discrepancy analysis.
    from repro.core.assembly import assemble_module

    ordered = [
        pipeline.artifacts[c.name]
        for c in spec.components
        if c.name in pipeline.artifacts
    ]
    module = assemble_module(ordered, "auto_arrow")
    print()
    print(analyze("arrow", module).render())
    print(
        "\nThe finding above is participant B's §3.2 result, surfaced "
        "automatically: the paper-faithful reproduction trails the "
        "open-source prototype because of the documented paper-code "
        "inconsistency."
    )


if __name__ == "__main__":
    main()
