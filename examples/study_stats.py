#!/usr/bin/env python
"""Regenerate the paper's background study (Figures 1 and 2).

Builds the calibrated SIGCOMM/NSDI 2013-2022 corpus and prints the
open-source-availability and comparison/manual-reproduction statistics
with paper-vs-measured columns.

Run:  python examples/study_stats.py
"""

from repro.study import build_corpus, comparison_stats, opensource_stats


def main():
    corpus = build_corpus()
    print(f"Corpus: {len(corpus)} papers across SIGCOMM and NSDI, 2013-2022")

    print()
    print("Figure 1 -- author open-source prototypes:")
    stats = opensource_stats(corpus)
    print(f"  {'metric':<24} {'paper':>7} {'measured':>9}")
    print(f"  {'SIGCOMM':<24} {'32%':>7} "
          f"{stats.venue_fraction('SIGCOMM') * 100:8.1f}%")
    print(f"  {'NSDI':<24} {'29%':>7} "
          f"{stats.venue_fraction('NSDI') * 100:8.1f}%")
    print(f"  {'combined':<24} {'31%':>7} "
          f"{stats.combined_fraction * 100:8.1f}%")

    print()
    print("  Per-venue, per-year open-source fraction:")
    for venue in ("SIGCOMM", "NSDI"):
        series = "  ".join(
            f"{year % 100:02d}:{stats.year_fraction(venue, year) * 100:4.0f}%"
            for year in range(2013, 2023)
        )
        print(f"    {venue:<8} {series}")

    print()
    print("Figure 2 -- comparison and manual-reproduction burden:")
    comparison = comparison_stats(corpus)
    print(f"  {'metric':<36} {'paper':>8} {'measured':>9}")
    print(f"  {'compare with >= 2 systems':<36} {'59.68%':>8} "
          f"{comparison.frac_compared_ge2 * 100:8.2f}%")
    print(f"  {'mean manual (papers with >= 1)':<36} {'2.29':>8} "
          f"{comparison.mean_manual_given_any:9.2f}")
    print(f"  {'manually reproduce >= 1':<36} {'49.20%':>8} "
          f"{comparison.frac_manual_ge1 * 100:8.2f}%")
    print(f"  {'manually reproduce >= 2':<36} {'26.65%':>8} "
          f"{comparison.frac_manual_ge2 * 100:8.2f}%")

    print()
    print("  Manual-reproduction histogram (papers by #systems reproduced):")
    for count in sorted(comparison.manual_histogram):
        papers = comparison.manual_histogram[count]
        bar = "#" * max(1, papers // 8)
        print(f"    {count:>3}: {papers:>4} {bar}")


if __name__ == "__main__":
    main()
