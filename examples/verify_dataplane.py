#!/usr/bin/env python
"""Data-plane verification with AP and APKeep, plus anomaly hunting.

Builds a synthetic data plane, verifies it with both reference verifiers
(batch AP and incremental APKeep), injects a forwarding loop and a
blackhole, and shows both systems catching them.  Also demonstrates
APKeep absorbing an incremental rule update.

Run:  python examples/verify_dataplane.py [dataset-name]
"""

import sys
import time

from repro.ap import APVerifier
from repro.apkeep import APKeepVerifier
from repro.netmodel.datasets import (
    build_verification_dataset,
    inject_blackhole,
    inject_loop,
)
from repro.netmodel.headerspace import Prefix
from repro.netmodel.rules import ForwardingRule
from repro.netmodel.topozoo import VERIFICATION_DATASET_NAMES


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "Stanford"
    if name not in VERIFICATION_DATASET_NAMES:
        raise SystemExit(
            f"unknown dataset {name!r}; pick one of {VERIFICATION_DATASET_NAMES}"
        )

    dataset = build_verification_dataset(name)
    print(
        f"Dataset {name}: {dataset.topology.num_nodes} devices, "
        f"{dataset.total_rules} rules, "
        f"{sum(1 for d in dataset.devices.values() if d.has_acl)} ACLs"
    )

    print()
    print("Batch verification (AP)...")
    start = time.perf_counter()
    ap = APVerifier(dataset)
    print(
        f"  {ap.num_predicates} predicates -> {ap.num_atoms} atomic "
        f"predicates in {time.perf_counter() - start:.3f}s"
    )
    scope = ap.allocated_atoms()
    print(f"  loops: {len(ap.find_loops())}  "
          f"blackholes (allocated space): {len(ap.find_blackholes(scope))}")

    print()
    print("Incremental verification (APKeep)...")
    apkeep = APKeepVerifier(dataset)
    print(
        f"  {len(apkeep.updates)} rule updates absorbed in "
        f"{apkeep.build_seconds:.3f}s -> {apkeep.num_atoms_minimal} atoms "
        f"(matches AP: {apkeep.num_atoms_minimal == ap.num_atoms})"
    )

    print()
    print("Injecting a forwarding loop...")
    looped, (u, v) = inject_loop(dataset, seed=3)
    loops = APVerifier(looped).find_loops()
    print(f"  injected between {u} and {v}; AP found {len(loops)} loop(s):")
    for report in loops[:3]:
        print(f"    atom {report.atom} cycles through {' -> '.join(report.cycle)}")

    print()
    print("Injecting a blackhole...")
    holed, device = inject_blackhole(dataset, seed=3)
    verifier = APVerifier(holed)
    reports = verifier.find_blackholes(scope=verifier.allocated_atoms())
    print(f"  injected at {device}; AP reports: "
          f"{[(r.device, sorted(r.atoms)) for r in reports]}")

    print()
    print("Incremental update through APKeep...")
    node = dataset.topology.nodes[0]
    neighbor = dataset.topology.successors(node)[0]
    rule = ForwardingRule(Prefix(0xF000, 4), neighbor, priority=99)
    start = time.perf_counter()
    changes = apkeep.insert_rule(node, rule)
    elapsed = time.perf_counter() - start
    print(
        f"  inserted a /4 override at {node}: {len(changes)} behaviour "
        f"change(s) absorbed in {elapsed * 1000:.2f}ms; atoms now "
        f"{apkeep.num_atoms} (minimal {apkeep.num_atoms_minimal})"
    )
    apkeep.remove_rule(node, rule)
    print(f"  removed it again; loops: {len(apkeep.find_loops())}")


if __name__ == "__main__":
    main()
