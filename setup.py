"""Setup shim so editable installs work offline (no `wheel` package).

The environment has no network access and no `wheel` distribution, so
PEP 660 editable installs (which build an editable wheel) fail.  With this
shim, `pip install -e . --no-build-isolation --no-use-pep517` falls back
to the classic `setup.py develop` code path.  Plain `pip install -e .`
works on any machine that has `wheel` installed.
"""

from setuptools import setup

setup()
