"""repro -- reproduction of "Toward Reproducing Network Research Results
Using Large Language Models" (HotNets 2023).

Subpackages
-----------
``repro.core``
    The paper's contribution: an LLM-assisted reproduction framework
    (prompt engineering pipeline, simulated LLM, debugging guidelines,
    validation and metrics).
``repro.lp``
    LP modelling layer with fast (Gurobi-like) and slow (PuLP-like)
    backends.
``repro.netmodel``
    Topologies, forwarding rules, ACLs, traffic matrices, TE instances.
``repro.bdd``
    From-scratch binary decision diagram engine (JDD-like and
    JavaBDD-like operation profiles).
``repro.ap`` / ``repro.apkeep``
    The two data-plane verification systems reproduced in the paper.
``repro.te``
    The two traffic-engineering systems (NCFlow, ARROW) plus baselines.
``repro.study``
    The SIGCOMM/NSDI 2013-2022 open-source statistics study.
``repro.experiments``
    Scripted participants A-D regenerating the paper's experiment.
``repro.motivating``
    The rock-paper-scissors motivating example (section 2.2).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
