"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

try:
    code = main()
except BrokenPipeError:
    # A downstream reader (``repro jobs | head``) closed the pipe;
    # the POSIX-polite exit is 128+SIGPIPE, not a traceback.  Dup
    # devnull over stdout so interpreter shutdown's implicit flush
    # cannot raise the same error again.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    code = 128 + 13
sys.exit(code)
