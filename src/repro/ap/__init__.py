"""AP: real-time verification of network properties using atomic predicates.

Implementation of Yang & Lam's Atomic Predicates verifier (ToN 2016), the
system participant D reproduced.  The verifier:

1. extracts the forwarding and ACL *predicates* (packet-set BDDs) from a
   data plane,
2. computes the *atomic predicates* -- the coarsest partition of the
   header space under which every predicate is a union of atoms -- so that
   all later set algebra happens on small integer sets instead of BDDs,
3. answers reachability / loop / blackhole queries by graph traversal over
   the atom-labelled port graph.

Two query strategies are provided because the paper's experiment hinges on
the difference: :meth:`APVerifier.reachable_atoms` (the authors' selective
BFS) and :meth:`APVerifier.reachable_atoms_by_path_enumeration`
(participant D's naive choice, exponential in path count, the root cause
of the reported up-to-10^4x verification slowdown).
"""

from repro.ap.atomic import AtomicPredicates, compute_atomic_predicates
from repro.ap.predicates import PredicateTable, extract_predicates
from repro.ap.verifier import APVerifier, ReachabilityResult

__all__ = [
    "APVerifier",
    "AtomicPredicates",
    "PredicateTable",
    "ReachabilityResult",
    "compute_atomic_predicates",
    "extract_predicates",
]
