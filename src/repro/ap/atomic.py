"""The atomic-predicates algorithm (Yang & Lam, ToN 2016, Definition 2).

Given predicates P1..Pk over the header space, the atomic predicates are
the unique minimal set of non-empty, disjoint predicates {a1..am} whose
union is true and such that every Pi is a disjoint union of atoms.  Every
set operation the verifier later needs then reduces to integer-set
algebra: Pi is represented by the set of atom ids it contains.

The computation is the standard iterative refinement: start from {true};
for each predicate P split every current atom a into ``a AND P`` and
``a AND NOT P`` (keeping the non-empty halves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List

from repro.bdd.engine import BDDEngine, BDD_FALSE, BDD_TRUE


@dataclass
class AtomicPredicates:
    """The atoms plus the predicate -> atom-set map.

    ``atoms``
        atom id -> BDD node (disjoint, non-empty, union = true).
    ``predicate_atoms``
        predicate BDD node -> frozenset of atom ids whose union equals it.
    """

    engine: BDDEngine
    atoms: Dict[int, int] = field(default_factory=dict)
    predicate_atoms: Dict[int, FrozenSet[int]] = field(default_factory=dict)

    @property
    def num_atoms(self) -> int:
        return len(self.atoms)

    def atoms_of(self, predicate: int) -> FrozenSet[int]:
        """Atom ids of a predicate that participated in the computation."""
        if predicate == BDD_TRUE:
            return frozenset(self.atoms)
        if predicate == BDD_FALSE:
            return frozenset()
        return self.predicate_atoms[predicate]

    def union_bdd(self, atom_ids: Iterable[int]) -> int:
        """BDD of the union of the given atoms (for result reporting)."""
        out = BDD_FALSE
        for atom_id in sorted(atom_ids):
            out = self.engine.or_(out, self.atoms[atom_id])
        return out

    def satcount(self, atom_ids: Iterable[int]) -> int:
        return sum(self.engine.satcount(self.atoms[a]) for a in atom_ids)


def compute_atomic_predicates(
    engine: BDDEngine, predicates: List[int]
) -> AtomicPredicates:
    """Compute atoms of ``predicates`` (BDD node ids in ``engine``).

    Runs in O(k * m) BDD operations for k predicates and m final atoms.
    Trivial predicates (true/false) are accepted and mapped without
    refining anything.
    """
    result = AtomicPredicates(engine)
    # Each working atom is (bdd, membership) where membership is the set of
    # indices of predicates that contain the atom.
    working: List[List] = [[BDD_TRUE, set()]]

    distinct = []
    seen = set()
    for predicate in predicates:
        if predicate in (BDD_TRUE, BDD_FALSE) or predicate in seen:
            continue
        seen.add(predicate)
        distinct.append(predicate)

    for index, predicate in enumerate(distinct):
        refined: List[List] = []
        for bdd, membership in working:
            inside = engine.and_(bdd, predicate)
            outside = engine.diff(bdd, predicate)
            if inside != BDD_FALSE and outside != BDD_FALSE:
                refined.append([inside, membership | {index}])
                refined.append([outside, membership])
            elif inside != BDD_FALSE:
                membership.add(index)
                refined.append([bdd, membership])
            else:
                refined.append([bdd, membership])
        working = refined

    for atom_id, (bdd, _) in enumerate(working):
        result.atoms[atom_id] = bdd

    membership_of: Dict[int, set] = {i: set() for i in range(len(distinct))}
    for atom_id, (_, membership) in enumerate(working):
        for index in membership:
            membership_of[index].add(atom_id)

    for index, predicate in enumerate(distinct):
        result.predicate_atoms[predicate] = frozenset(membership_of[index])

    # Trivial predicates asked about later resolve through atoms_of.
    return result
