"""Differential verification: what changed between two snapshots.

Operators care less about absolute reachability than about what a
change *broke*.  This module verifies two data-plane snapshots inside
one shared BDD engine (so packet sets are directly comparable) and
reports, per (src, dst) pair, the headers that gained and lost
reachability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro import obs
from repro.ap.verifier import APVerifier
from repro.bdd.builder import new_engine
from repro.bdd.engine import BDD_FALSE
from repro.netmodel.datasets import VerificationDataset


@dataclass(frozen=True)
class PairDelta:
    """Reachability change for one (src, dst) pair."""

    src: str
    dst: str
    gained_headers: int
    lost_headers: int

    @property
    def changed(self) -> bool:
        return bool(self.gained_headers or self.lost_headers)


@dataclass
class SnapshotDiff:
    """Full differential report between two snapshots."""

    before_name: str
    after_name: str
    deltas: List[PairDelta] = field(default_factory=list)
    pairs_compared: int = 0
    seconds: float = 0.0

    @property
    def changed_pairs(self) -> List[PairDelta]:
        return [delta for delta in self.deltas if delta.changed]

    @property
    def unchanged(self) -> bool:
        return not self.changed_pairs

    def total_lost(self) -> int:
        return sum(delta.lost_headers for delta in self.deltas)

    def total_gained(self) -> int:
        return sum(delta.gained_headers for delta in self.deltas)

    def render(self, limit: int = 10) -> str:
        lines = [
            f"Snapshot diff {self.before_name} -> {self.after_name}: "
            f"{len(self.changed_pairs)}/{self.pairs_compared} pairs changed "
            f"(+{self.total_gained()} / -{self.total_lost()} headers)"
        ]
        for delta in self.changed_pairs[:limit]:
            lines.append(
                f"  {delta.src} -> {delta.dst}: "
                f"+{delta.gained_headers} / -{delta.lost_headers} headers"
            )
        remaining = len(self.changed_pairs) - limit
        if remaining > 0:
            lines.append(f"  ... and {remaining} more changed pairs")
        return "\n".join(lines)


def diff_snapshots(
    before: VerificationDataset,
    after: VerificationDataset,
    pairs: List[Tuple[str, str]] = None,
) -> SnapshotDiff:
    """Compare reachability between two snapshots of the same network.

    Both snapshots must share the topology's node set.  ``pairs``
    restricts the comparison (default: all ordered pairs).
    """
    if set(before.topology.nodes) != set(after.topology.nodes):
        raise ValueError("snapshots must cover the same nodes")
    with obs.span("ap.diff", before=before.name, after=after.name) as sp:
        engine = new_engine("jdd")
        verifier_before = APVerifier(before, engine=engine)
        verifier_after = APVerifier(after, engine=engine)

        if pairs is None:
            nodes = before.topology.nodes
            pairs = [
                (src, dst) for src in nodes for dst in nodes if src != dst
            ]

        diff = SnapshotDiff(before.name, after.name)
        for src, dst in pairs:
            bdd_before = verifier_before.atomics.union_bdd(
                verifier_before.reachable_atoms(src, dst).atoms
            )
            bdd_after = verifier_after.atomics.union_bdd(
                verifier_after.reachable_atoms(src, dst).atoms
            )
            if bdd_before == bdd_after:
                diff.deltas.append(PairDelta(src, dst, 0, 0))
            else:
                gained = engine.diff(bdd_after, bdd_before)
                lost = engine.diff(bdd_before, bdd_after)
                diff.deltas.append(
                    PairDelta(
                        src,
                        dst,
                        engine.satcount(gained) if gained != BDD_FALSE else 0,
                        engine.satcount(lost) if lost != BDD_FALSE else 0,
                    )
                )
        diff.pairs_compared = len(pairs)
        sp.set(pairs=len(pairs), changed=len(diff.changed_pairs))
    diff.seconds = sp.duration
    return diff
