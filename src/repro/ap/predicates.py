"""Predicate extraction: from FIBs and ACLs to packet-set BDDs.

A *predicate* is the exact set of headers a device sends out of one port
(after priority shadowing), or the set an ACL permits.  These are the
inputs to the atomic-predicates computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.bdd.builder import acl_permit_bdd, forwarding_port_bdds
from repro.bdd.engine import BDDEngine, BDD_TRUE
from repro.netmodel.datasets import VerificationDataset


@dataclass
class PredicateTable:
    """All predicates of a data plane, as BDD node ids in one engine.

    ``forwarding``
        ``(device, port) -> BDD`` of headers the device forwards to that
        port.  Ports follow :mod:`repro.netmodel.rules` conventions: a
        neighbour device name, ``DROP_PORT`` or ``SELF_PORT``.
    ``acl``
        ``device -> BDD`` of headers the device's ingress ACL permits
        (``BDD_TRUE`` when the device has no ACL).
    """

    engine: BDDEngine
    forwarding: Dict[Tuple[str, str], int] = field(default_factory=dict)
    acl: Dict[str, int] = field(default_factory=dict)

    def distinct_predicates(self) -> List[int]:
        """All distinct non-trivial predicate BDDs, in deterministic order."""
        seen = []
        seen_set = set()
        for key in sorted(self.forwarding):
            node = self.forwarding[key]
            if node not in seen_set:
                seen_set.add(node)
                seen.append(node)
        for device in sorted(self.acl):
            node = self.acl[device]
            if node != BDD_TRUE and node not in seen_set:
                seen_set.add(node)
                seen.append(node)
        return seen

    @property
    def num_forwarding(self) -> int:
        return len(self.forwarding)

    @property
    def num_acl(self) -> int:
        return sum(1 for node in self.acl.values() if node != BDD_TRUE)


def extract_predicates(
    dataset: VerificationDataset,
    engine: BDDEngine,
    devices: Optional[Iterable[str]] = None,
) -> PredicateTable:
    """Build the predicate table of ``dataset`` inside ``engine``.

    ``devices`` restricts extraction to a subset of the dataset's
    devices (boundary-aware shard extraction: a shard reads only its
    members' FIBs and ACLs, so the table -- and every BDD node it
    allocates -- is local to that shard's engine).  ``None`` extracts
    the whole data plane.
    """
    table = PredicateTable(engine)
    names = sorted(dataset.devices if devices is None else devices)
    for name in names:
        device = dataset.devices[name]
        for port, bdd in sorted(forwarding_port_bdds(engine, device).items()):
            table.forwarding[(name, port)] = bdd
        table.acl[name] = acl_permit_bdd(engine, device)
    return table
