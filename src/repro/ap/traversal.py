"""Atom-set traversal algorithms shared by the AP and APKeep verifiers.

Both verifiers end up with the same view of the data plane: per device a
``port -> atom-id set`` labelling (ports partition the atom space) and per
device the set of atoms its ingress ACL admits.  Reachability, loop and
blackhole checks only need that view, so they live here and both systems
delegate to them.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.netmodel.rules import DROP_PORT, SELF_PORT
from repro.netmodel.topology import Topology

PortAtoms = Dict[Tuple[str, str], FrozenSet[int]]
AclAtoms = Dict[str, FrozenSet[int]]


def selective_bfs(
    topology: Topology,
    port_atoms: PortAtoms,
    acl_atoms: AclAtoms,
    src: str,
    dst: str,
    initial: FrozenSet[int],
) -> FrozenSet[int]:
    """Atoms from ``initial`` injected at ``src`` that can arrive at ``dst``.

    The authors' strategy: breadth-first propagation of atom sets with two
    prunings -- empty sets die, and atoms already seen at a device are not
    reprocessed (forwarding is deterministic per atom, so a second arrival
    adds nothing).
    """
    if src == dst:
        return initial
    seen: Dict[str, Set[int]] = {}
    arrived: Set[int] = set()
    queue = deque([(src, set(initial))])
    while queue:
        device, atoms = queue.popleft()
        fresh = atoms - seen.setdefault(device, set())
        if not fresh:
            continue
        seen[device].update(fresh)
        if device == dst:
            arrived.update(fresh)
            continue
        for neighbor in topology.successors(device):
            label = port_atoms.get((device, neighbor))
            if not label:
                continue
            moving = fresh & label & acl_atoms.get(neighbor, frozenset())
            if moving:
                queue.append((neighbor, moving))
    return frozenset(arrived)


def path_enumeration_reach(
    topology: Topology,
    port_atoms: PortAtoms,
    acl_atoms: AclAtoms,
    src: str,
    dst: str,
    initial: FrozenSet[int],
    max_paths: Optional[int] = None,
) -> Tuple[FrozenSet[int], int]:
    """Participant D's strategy: intersect labels along every simple path.

    Returns ``(atoms, paths_explored)``.  Identical answers to
    :func:`selective_bfs` (a deterministic trajectory reaching ``dst`` is
    necessarily simple), at exponential cost.
    """
    import networkx as nx

    if src == dst:
        return initial, 0
    arrived: Set[int] = set()
    explored = 0
    graph = topology.to_networkx()
    for path in nx.all_simple_paths(graph, src, dst):
        explored += 1
        atoms = set(initial)
        for hop, nxt in zip(path, path[1:]):
            label = port_atoms.get((hop, nxt))
            if not label:
                atoms.clear()
                break
            atoms &= label
            atoms &= acl_atoms.get(nxt, frozenset())
            if not atoms:
                break
        arrived.update(atoms)
        if max_paths is not None and explored >= max_paths:
            break
    return frozenset(arrived), explored


def build_next_port(port_atoms: PortAtoms) -> Dict[str, Dict[int, str]]:
    """Deterministic ``device -> atom -> port`` map from port labels."""
    next_port: Dict[str, Dict[int, str]] = {}
    for (device, port), atoms in port_atoms.items():
        per_device = next_port.setdefault(device, {})
        for atom in atoms:
            per_device[atom] = port
    return next_port


def find_loops(
    topology: Topology,
    next_port: Dict[str, Dict[int, str]],
    acl_atoms: AclAtoms,
    atoms: Iterable[int],
) -> List[Tuple[int, Tuple[str, ...]]]:
    """All (atom, canonicalised device cycle) forwarding loops."""
    reports: List[Tuple[int, Tuple[str, ...]]] = []
    seen_cycles: Set[Tuple[int, Tuple[str, ...]]] = set()
    for atom in sorted(atoms):
        state: Dict[str, int] = {}
        for start_device in topology.nodes:
            if atom not in acl_atoms.get(start_device, frozenset()):
                continue
            if state.get(start_device):
                continue
            path: List[str] = []
            device = start_device
            while True:
                mark = state.get(device)
                if mark == 2:
                    break
                if mark == 1:
                    cycle = tuple(path[path.index(device):])
                    rotated = rotate_cycle(cycle)
                    key = (atom, rotated)
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        reports.append(key)
                    break
                state[device] = 1
                path.append(device)
                port = next_port.get(device, {}).get(atom, DROP_PORT)
                if port in (DROP_PORT, SELF_PORT):
                    break
                if atom not in acl_atoms.get(port, frozenset()):
                    break
                device = port
            for visited in path:
                state[visited] = 2
    return reports


def find_blackholes(
    topology: Topology,
    port_atoms: PortAtoms,
    acl_atoms: AclAtoms,
    scope: Optional[FrozenSet[int]] = None,
) -> List[Tuple[str, FrozenSet[int]]]:
    """Devices dropping live atoms, optionally restricted to ``scope``."""
    reports: List[Tuple[str, FrozenSet[int]]] = []
    for device in topology.nodes:
        label = port_atoms.get((device, DROP_PORT), frozenset())
        live = label & acl_atoms.get(device, frozenset())
        if scope is not None:
            live = live & scope
        if live:
            reports.append((device, frozenset(live)))
    return reports


def rotate_cycle(cycle: Tuple[str, ...]) -> Tuple[str, ...]:
    """Rotate a cycle so it starts at its lexicographically-smallest node."""
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]
