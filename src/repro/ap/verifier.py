"""The AP verifier: atom-labelled traversal of the data plane.

After the atomic predicates are computed, every port of every device is
labelled with an integer set of atom ids and all queries are set algebra
plus graph traversal (see :mod:`repro.ap.traversal` for the algorithms,
which APKeep shares).

Two query strategies exist because the paper's experiment hinges on the
difference:

* :meth:`APVerifier.reachable_atoms` -- the authors' *selective BFS*:
  propagate atom sets breadth-first from the source, pruning empty sets
  and atoms already seen at a device.  Linear in (devices x atoms).
* :meth:`APVerifier.reachable_atoms_by_path_enumeration` -- participant
  D's approach: enumerate all simple topology paths from source to
  destination and intersect port labels along each.  Exponential in the
  path count; produces identical answers (a deterministic trajectory that
  reaches the destination is necessarily a simple path), and is the root
  cause of the up-to-10^4x verification slowdown the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro import obs
from repro.ap.atomic import AtomicPredicates, compute_atomic_predicates
from repro.ap.predicates import PredicateTable, extract_predicates
from repro.ap import traversal
from repro.bdd.builder import new_engine, prefix_to_bdd
from repro.bdd.engine import BDDEngine, BDD_FALSE, BDD_TRUE
from repro.netmodel.datasets import VerificationDataset


@dataclass
class ReachabilityResult:
    """Answer to one reachability query."""

    src: str
    dst: str
    atoms: FrozenSet[int]
    strategy: str
    query_seconds: float
    paths_explored: int = 0

    @property
    def reachable(self) -> bool:
        return bool(self.atoms)


@dataclass
class LoopReport:
    """One forwarding loop: the atom and the device cycle it traverses."""

    atom: int
    cycle: Tuple[str, ...]


@dataclass
class BlackholeReport:
    """One blackhole: atoms dropped at a device."""

    device: str
    atoms: FrozenSet[int]


def _engine_meta(engine) -> Dict[str, object]:
    """BDD engine telemetry as span metadata keys (``bdd_*``)."""
    stats = getattr(engine, "stats", None)
    if stats is None:
        return {}
    return {
        f"bdd_{key}": value
        for key, value in stats().items()
        if key != "profile"
    }


class APVerifier:
    """Atomic-predicates verifier over one data-plane snapshot."""

    def __init__(
        self,
        dataset: VerificationDataset,
        engine: Optional[BDDEngine] = None,
        profile: str = "jdd",
    ):
        self.dataset = dataset
        self.engine = engine if engine is not None else new_engine(profile)
        with obs.span(
            "ap.build",
            dataset=dataset.name,
            profile=getattr(self.engine, "name", "custom"),
        ) as sp:
            with obs.span("ap.predicates"):
                self.table: PredicateTable = extract_predicates(
                    dataset, self.engine
                )
            with obs.span("ap.atoms"):
                self.atomics: AtomicPredicates = compute_atomic_predicates(
                    self.engine, self.table.distinct_predicates()
                )
            with obs.span("ap.label_ports"):
                self._label_ports()
            sp.set(atoms=self.atomics.num_atoms, **_engine_meta(self.engine))
        self.predicate_seconds = sp.duration

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _label_ports(self) -> None:
        self.port_atoms: Dict[Tuple[str, str], FrozenSet[int]] = {}
        self.acl_atoms: Dict[str, FrozenSet[int]] = {}
        all_atoms = frozenset(self.atomics.atoms)
        for (device, port), bdd in self.table.forwarding.items():
            self.port_atoms[(device, port)] = self.atomics.atoms_of(bdd)
        for device, bdd in self.table.acl.items():
            if bdd == BDD_TRUE:
                self.acl_atoms[device] = all_atoms
            else:
                self.acl_atoms[device] = self.atomics.atoms_of(bdd)
        self.next_port = traversal.build_next_port(self.port_atoms)

    @property
    def num_atoms(self) -> int:
        return self.atomics.num_atoms

    @property
    def num_predicates(self) -> int:
        return len(self.table.distinct_predicates())

    def _initial_atoms(self, src: str) -> FrozenSet[int]:
        return self.acl_atoms.get(src, frozenset(self.atomics.atoms))

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def reachable_atoms(self, src: str, dst: str) -> ReachabilityResult:
        """Atoms injected at ``src`` that can arrive at ``dst`` (BFS)."""
        self._check_device(src)
        self._check_device(dst)
        with obs.span(
            "ap.query", strategy="selective-bfs", src=src, dst=dst
        ) as sp:
            atoms = traversal.selective_bfs(
                self.dataset.topology,
                self.port_atoms,
                self.acl_atoms,
                src,
                dst,
                self._initial_atoms(src),
            )
        return ReachabilityResult(src, dst, atoms, "selective-bfs", sp.duration)

    def reachable_atoms_by_path_enumeration(
        self, src: str, dst: str, max_paths: Optional[int] = None
    ) -> ReachabilityResult:
        """Same answer as :meth:`reachable_atoms`, exponentially slower.

        ``max_paths`` bounds the enumeration for benchmark safety;
        ``None`` means unbounded (exact answers, possibly very slow).
        """
        self._check_device(src)
        self._check_device(dst)
        with obs.span(
            "ap.query", strategy="path-enumeration", src=src, dst=dst
        ) as sp:
            atoms, explored = traversal.path_enumeration_reach(
                self.dataset.topology,
                self.port_atoms,
                self.acl_atoms,
                src,
                dst,
                self._initial_atoms(src),
                max_paths=max_paths,
            )
            sp.set(paths_explored=explored)
        return ReachabilityResult(
            src, dst, atoms, "path-enumeration",
            sp.duration, paths_explored=explored,
        )

    def reachability_tree(self, src: str) -> Dict[str, FrozenSet[int]]:
        """Atoms from ``src`` that can arrive at *every* device, in one BFS.

        The one-to-all form of :meth:`reachable_atoms` (the AP paper's
        reachability trees): a single propagation answers all ``src ->
        *`` queries, so sweeping sources costs O(V) traversals instead
        of O(V^2).
        """
        self._check_device(src)
        from collections import deque

        seen: Dict[str, set] = {}
        queue = deque([(src, set(self._initial_atoms(src)))])
        while queue:
            device, atoms = queue.popleft()
            fresh = atoms - seen.setdefault(device, set())
            if not fresh:
                continue
            seen[device].update(fresh)
            for neighbor in self.dataset.topology.successors(device):
                label = self.port_atoms.get((device, neighbor))
                if not label:
                    continue
                moving = fresh & label & self.acl_atoms[neighbor]
                if moving:
                    queue.append((neighbor, moving))
        return {
            device: frozenset(atoms)
            for device, atoms in seen.items()
        }

    # ------------------------------------------------------------------
    # Property checks
    # ------------------------------------------------------------------
    def find_loops(self) -> List[LoopReport]:
        """All forwarding loops, one report per (atom, canonical cycle)."""
        raw = traversal.find_loops(
            self.dataset.topology,
            self.next_port,
            self.acl_atoms,
            self.atomics.atoms,
        )
        return [LoopReport(atom, cycle) for atom, cycle in raw]

    def atoms_overlapping(self, bdd: int) -> FrozenSet[int]:
        """Atom ids whose packet set intersects the given BDD."""
        found = set()
        for atom_id, atom_bdd in self.atomics.atoms.items():
            if self.engine.and_(atom_bdd, bdd) != BDD_FALSE:
                found.add(atom_id)
        return frozenset(found)

    def allocated_atoms(self) -> FrozenSet[int]:
        """Atoms inside the union of the dataset's allocated prefixes.

        Headers outside every device's prefix are legitimately dropped;
        blackhole checks usually scope to this set.
        """
        union = BDD_FALSE
        for prefix in self.dataset.prefix_of.values():
            union = self.engine.or_(union, prefix_to_bdd(self.engine, prefix))
        return self.atoms_overlapping(union)

    def find_blackholes(
        self, scope: Optional[FrozenSet[int]] = None
    ) -> List[BlackholeReport]:
        """Devices that drop packets (atoms mapped to the drop port).

        ``scope`` restricts the check to the given atoms; pass
        :meth:`allocated_atoms` to ignore the unallocated default-drop
        space.
        """
        raw = traversal.find_blackholes(
            self.dataset.topology, self.port_atoms, self.acl_atoms, scope
        )
        return [BlackholeReport(device, atoms) for device, atoms in raw]

    def verify_all_pairs(
        self, strategy: str = "selective-bfs", max_paths: Optional[int] = None
    ) -> Dict[Tuple[str, str], FrozenSet[int]]:
        """Reachable atom sets for every ordered device pair."""
        results: Dict[Tuple[str, str], FrozenSet[int]] = {}
        for src in self.dataset.topology.nodes:
            for dst in self.dataset.topology.nodes:
                if src == dst:
                    continue
                if strategy == "selective-bfs":
                    result = self.reachable_atoms(src, dst)
                elif strategy == "path-enumeration":
                    result = self.reachable_atoms_by_path_enumeration(
                        src, dst, max_paths=max_paths
                    )
                else:
                    raise KeyError(f"unknown strategy {strategy!r}")
                results[(src, dst)] = result.atoms
        return results

    def _check_device(self, name: str) -> None:
        if name not in self.dataset.devices:
            raise KeyError(f"unknown device {name!r}")
