"""APKeep: realtime, incremental data-plane verification (NSDI 2020).

The system participant C reproduced.  APKeep maintains a *port-predicate
map* (PPM): a network-wide set of atomic predicates plus, for every
element and port, the set of atoms forwarded to that port.  Rule updates
are absorbed incrementally:

1. :meth:`ForwardingElement.insert` runs Algorithm 1 of the paper
   (``IdentifyChangesInsert``, reproduced in the HotNets paper's
   Figure 6): maintain per-rule *hit* BDDs and emit the behaviour
   :class:`Change` set caused by the update;
2. :meth:`PPM.apply_changes` transfers atoms between ports, splitting
   atoms on partial overlap (and :meth:`PPM.compact` merges atoms that
   have become behaviourally identical, keeping the predicate set
   minimal);
3. properties (loops, blackholes, reachability) are re-checked over the
   atom labels using the same traversal algorithms as AP.
"""

from repro.apkeep.changes import Change
from repro.apkeep.element import AclElement, ElementRule, ForwardingElement
from repro.apkeep.ppm import PPM
from repro.apkeep.network import APKeepVerifier, UpdateRecord

__all__ = [
    "AclElement",
    "APKeepVerifier",
    "Change",
    "ElementRule",
    "ForwardingElement",
    "PPM",
    "UpdateRecord",
]
