"""Behaviour changes: the currency between elements and the PPM."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Change:
    """Packets in ``bdd`` move from ``from_port`` to ``to_port``.

    Emitted by rule insertion/deletion on an element (Algorithm 1 and its
    deletion counterpart) and consumed by :meth:`repro.apkeep.ppm.PPM.
    apply_changes`.  The ``bdd`` is a node id in the verifier's engine.
    """

    bdd: int
    from_port: str
    to_port: str

    def __post_init__(self):
        if self.from_port == self.to_port:
            raise ValueError("a change must move packets between distinct ports")
