"""APKeep elements: forwarding devices and ACLs with per-rule hit BDDs.

A rule's *hit* is the part of its match not shadowed by higher-priority
rules -- the exact packet set the rule acts on.  Algorithm 1 of the APKeep
paper (``IdentifyChangesInsert``) maintains hits under insertion and emits
the behaviour changes; :meth:`ForwardingElement.remove` is the deletion
counterpart.

Priority ties are broken by insertion order (earlier rule wins), matching
:meth:`repro.netmodel.rules.Device.lookup`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apkeep.changes import Change
from repro.bdd.builder import prefix_to_bdd
from repro.bdd.engine import BDDEngine, BDD_FALSE, BDD_TRUE
from repro.netmodel.headerspace import Prefix
from repro.netmodel.rules import AclAction, AclRule, DROP_PORT, ForwardingRule

ACL_PERMIT = "permit"
ACL_DENY = "deny"


@dataclass
class ElementRule:
    """One installed rule with its live hit BDD."""

    prefix: Prefix
    port: str
    priority: int
    match: int
    hit: int
    sequence: int  # insertion order; earlier wins priority ties


class ForwardingElement:
    """A forwarding device inside APKeep.

    The element always contains an implicit default rule (priority minus
    infinity) sending everything to ``default_port`` (normally the drop
    port), so hits of all rules plus the default partition the full
    header space -- an invariant asserted by tests.
    """

    def __init__(self, name: str, engine: BDDEngine, default_port: str = DROP_PORT):
        self.name = name
        self.engine = engine
        self.default_port = default_port
        self._rules: List[ElementRule] = []
        self._default_hit = BDD_TRUE
        self._sequence = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def rules(self) -> List[ElementRule]:
        return list(self._rules)

    @property
    def num_rules(self) -> int:
        return len(self._rules)

    @property
    def default_hit(self) -> int:
        return self._default_hit

    def ports(self) -> List[str]:
        seen = {self.default_port}
        for rule in self._rules:
            seen.add(rule.port)
        return sorted(seen)

    def hit_of(self, port: str) -> int:
        """Union of hits of all rules forwarding to ``port``."""
        out = BDD_FALSE
        for rule in self._rules:
            if rule.port == port:
                out = self.engine.or_(out, rule.hit)
        if port == self.default_port:
            out = self.engine.or_(out, self._default_hit)
        return out

    # ------------------------------------------------------------------
    # Algorithm 1: IdentifyChangesInsert
    # ------------------------------------------------------------------
    def insert(self, rule: ForwardingRule) -> List[Change]:
        """Insert ``rule``, maintain hits, return the behaviour changes."""
        engine = self.engine
        match = prefix_to_bdd(engine, rule.prefix)
        engine.ref(match)
        hit = match
        changes: List[Change] = []
        for existing in self._rules:
            wins_over_new = (
                existing.priority > rule.priority
                or existing.priority == rule.priority  # earlier insertion wins
            )
            if wins_over_new:
                if engine.and_(hit, existing.hit) != BDD_FALSE:
                    hit = engine.diff(hit, existing.hit)
                    if hit == BDD_FALSE:
                        break
            else:
                inter = engine.and_(hit, existing.hit)
                if inter != BDD_FALSE:
                    if existing.port != rule.port:
                        changes.append(Change(inter, existing.port, rule.port))
                    existing.hit = engine.diff(existing.hit, hit)
        # The default rule has the lowest priority of all.
        if hit != BDD_FALSE:
            inter = engine.and_(hit, self._default_hit)
            if inter != BDD_FALSE:
                if self.default_port != rule.port:
                    changes.append(Change(inter, self.default_port, rule.port))
                self._default_hit = engine.diff(self._default_hit, hit)
        self._rules.append(
            ElementRule(
                prefix=rule.prefix,
                port=rule.port,
                priority=rule.priority,
                match=match,
                hit=hit,
                sequence=self._sequence,
            )
        )
        self._sequence += 1
        return changes

    # ------------------------------------------------------------------
    # Deletion counterpart
    # ------------------------------------------------------------------
    def remove(self, rule: ForwardingRule) -> List[Change]:
        """Remove the first installed rule equal to ``rule``.

        The freed hit space is redistributed to the remaining rules in
        priority order (the highest-priority matching rule inherits each
        part), with the default rule as the final fallback.
        """
        target = self._find(rule)
        if target is None:
            raise KeyError(f"rule {rule} not installed on element {self.name!r}")
        self._rules.remove(target)
        engine = self.engine
        changes: List[Change] = []
        remaining = target.hit
        if remaining == BDD_FALSE:
            return changes
        for existing in self._ordered():
            inter = engine.and_(remaining, existing.match)
            if inter == BDD_FALSE:
                continue
            existing.hit = engine.or_(existing.hit, inter)
            if existing.port != target.port:
                changes.append(Change(inter, target.port, existing.port))
            remaining = engine.diff(remaining, existing.match)
            if remaining == BDD_FALSE:
                break
        if remaining != BDD_FALSE:
            self._default_hit = engine.or_(self._default_hit, remaining)
            if self.default_port != target.port:
                changes.append(Change(remaining, target.port, self.default_port))
        return changes

    def _find(self, rule: ForwardingRule) -> Optional[ElementRule]:
        for existing in self._rules:
            if (
                existing.prefix == rule.prefix
                and existing.port == rule.port
                and existing.priority == rule.priority
            ):
                return existing
        return None

    def _ordered(self) -> List[ElementRule]:
        return sorted(self._rules, key=lambda r: (-r.priority, r.sequence))

    def check_partition(self) -> bool:
        """Invariant: rule hits plus the default hit partition the space."""
        engine = self.engine
        union = self._default_hit
        for rule in self._rules:
            if engine.and_(union, rule.hit) != BDD_FALSE:
                return False
            union = engine.or_(union, rule.hit)
        return union == BDD_TRUE


class AclElement:
    """An ACL as an APKeep element with ``permit``/``deny`` ports.

    First match wins (priority, then insertion order); the default action
    is permit, matching :meth:`repro.netmodel.rules.Device.acl_permits`.
    """

    def __init__(self, name: str, engine: BDDEngine):
        self.name = name
        self._inner = ForwardingElement(name, engine, default_port=ACL_PERMIT)

    def insert(self, rule: AclRule) -> List[Change]:
        port = ACL_PERMIT if rule.action is AclAction.PERMIT else ACL_DENY
        return self._inner.insert(
            ForwardingRule(rule.prefix, port, rule.priority)
        )

    def remove(self, rule: AclRule) -> List[Change]:
        port = ACL_PERMIT if rule.action is AclAction.PERMIT else ACL_DENY
        return self._inner.remove(
            ForwardingRule(rule.prefix, port, rule.priority)
        )

    @property
    def num_rules(self) -> int:
        return self._inner.num_rules

    def permit_bdd(self) -> int:
        return self._inner.hit_of(ACL_PERMIT)

    def ports(self) -> List[str]:
        return [ACL_DENY, ACL_PERMIT]

    def check_partition(self) -> bool:
        return self._inner.check_partition()
