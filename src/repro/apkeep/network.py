"""The APKeep verifier: elements + PPM + incremental property checking."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.ap import traversal
from repro.apkeep.changes import Change
from repro.apkeep.element import (
    ACL_PERMIT,
    AclElement,
    ForwardingElement,
)
from repro.apkeep.ppm import PPM
from repro.bdd.builder import new_engine
from repro.bdd.engine import BDDEngine, BDD_FALSE
from repro.netmodel.datasets import VerificationDataset
from repro.netmodel.rules import AclRule, DROP_PORT, ForwardingRule


def _acl_element_name(device: str) -> str:
    return f"acl:{device}"


@dataclass
class UpdateRecord:
    """Bookkeeping for one rule update."""

    device: str
    operation: str  # "insert" | "remove"
    changes: int
    splits: int
    seconds: float


class APKeepVerifier:
    """Incremental data-plane verifier in the style of APKeep.

    Construction replays every FIB rule and ACL entry of the dataset as an
    incremental insertion, exactly how APKeep would consume an update
    stream; :meth:`insert_rule` / :meth:`remove_rule` absorb further
    updates in O(changed atoms) work.
    """

    def __init__(
        self,
        dataset: VerificationDataset,
        engine: Optional[BDDEngine] = None,
        profile: str = "jdd",
        check_invariants: bool = False,
    ):
        self.dataset = dataset
        self.engine = engine if engine is not None else new_engine(profile)
        self.check_invariants = check_invariants
        self.ppm = PPM(self.engine)
        self.elements: Dict[str, ForwardingElement] = {}
        self.acl_elements: Dict[str, AclElement] = {}
        self.updates: List[UpdateRecord] = []

        start = time.perf_counter()
        for name in sorted(dataset.devices):
            device = dataset.devices[name]
            element = ForwardingElement(name, self.engine, default_port=DROP_PORT)
            self.elements[name] = element
            self.ppm.add_element(name, [DROP_PORT], default_port=DROP_PORT)
            if device.has_acl:
                acl = AclElement(_acl_element_name(name), self.engine)
                self.acl_elements[name] = acl
                self.ppm.add_element(
                    _acl_element_name(name), acl.ports(), default_port=ACL_PERMIT
                )
        for name in sorted(dataset.devices):
            device = dataset.devices[name]
            for rule in device.rules:
                self.insert_rule(name, rule)
            for acl_rule in device.acl:
                self.insert_acl_rule(name, acl_rule)
        self.build_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------
    def insert_rule(self, device: str, rule: ForwardingRule) -> List[Change]:
        return self._update(device, rule, operation="insert")

    def remove_rule(self, device: str, rule: ForwardingRule) -> List[Change]:
        return self._update(device, rule, operation="remove")

    def _update(self, device: str, rule: ForwardingRule, operation: str) -> List[Change]:
        element = self.elements[device]
        start = time.perf_counter()
        if operation == "insert":
            changes = element.insert(rule)
        else:
            changes = element.remove(rule)
        splits = self.ppm.apply_changes(device, changes)
        elapsed = time.perf_counter() - start
        self.updates.append(
            UpdateRecord(device, operation, len(changes), splits, elapsed)
        )
        if self.check_invariants:
            assert element.check_partition(), f"hit partition broken on {device}"
            assert self.ppm.check_partition(device), f"PPM partition broken on {device}"
        return changes

    def batch_update(
        self, updates: List[Tuple[str, str, ForwardingRule]]
    ) -> List[List[Change]]:
        """Apply a sequence of ``(operation, device, rule)`` updates.

        Each entry is absorbed incrementally in order (APKeep processes
        update streams, not snapshots); returns the change list of every
        update.
        """
        results = []
        for operation, device, rule in updates:
            if operation not in ("insert", "remove"):
                raise ValueError(
                    f"operation must be 'insert' or 'remove', got {operation!r}"
                )
            results.append(self._update(device, rule, operation))
        return results

    def update_latency_stats(self) -> Dict[str, float]:
        """Per-update latency distribution over everything absorbed so far.

        The APKeep paper's headline result is microsecond-level update
        latency; this reports count, mean and tail percentiles in
        seconds.
        """
        import numpy as np

        if not self.updates:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "max": 0.0}
        samples = np.asarray([record.seconds for record in self.updates])
        return {
            "count": int(samples.size),
            "mean": float(samples.mean()),
            "p50": float(np.percentile(samples, 50)),
            "p95": float(np.percentile(samples, 95)),
            "p99": float(np.percentile(samples, 99)),
            "max": float(samples.max()),
        }

    def insert_acl_rule(self, device: str, rule: AclRule) -> List[Change]:
        acl = self.acl_elements.get(device)
        if acl is None:
            acl = AclElement(_acl_element_name(device), self.engine)
            self.acl_elements[device] = acl
            self.ppm.add_element(
                _acl_element_name(device), acl.ports(), default_port=ACL_PERMIT
            )
        start = time.perf_counter()
        changes = acl.insert(rule)
        splits = self.ppm.apply_changes(_acl_element_name(device), changes)
        self.updates.append(
            UpdateRecord(
                device, "acl-insert", len(changes), splits,
                time.perf_counter() - start,
            )
        )
        return changes

    # ------------------------------------------------------------------
    # Views for property checking
    # ------------------------------------------------------------------
    @property
    def num_atoms(self) -> int:
        """Raw atom count (may be finer than minimal; see compact)."""
        return self.ppm.num_atoms

    @property
    def num_atoms_minimal(self) -> int:
        """Atom count after virtually merging equivalent atoms.

        This is the number comparable with :attr:`repro.ap.verifier.
        APVerifier.num_atoms` -- participant C validated the reproduction
        by matching exactly this count.
        """
        return self.ppm.count_compacted()

    def compact(self) -> int:
        return self.ppm.compact()

    def port_atoms(self) -> Dict[Tuple[str, str], FrozenSet[int]]:
        view: Dict[Tuple[str, str], FrozenSet[int]] = {}
        for device, element in self.elements.items():
            for port, atoms in self.ppm.port_map[device].items():
                view[(device, port)] = frozenset(atoms)
        return view

    def acl_atoms(self) -> Dict[str, FrozenSet[int]]:
        all_atoms = frozenset(self.ppm.atoms)
        view: Dict[str, FrozenSet[int]] = {}
        for device in self.elements:
            acl = self.acl_elements.get(device)
            if acl is None:
                view[device] = all_atoms
            else:
                view[device] = self.ppm.atoms_of(
                    _acl_element_name(device), ACL_PERMIT
                )
        return view

    # ------------------------------------------------------------------
    # Property checks (same traversal code as AP)
    # ------------------------------------------------------------------
    def reachable_atoms(self, src: str, dst: str) -> FrozenSet[int]:
        acl_atoms = self.acl_atoms()
        initial = acl_atoms.get(src, frozenset(self.ppm.atoms))
        return traversal.selective_bfs(
            self.dataset.topology, self.port_atoms(), acl_atoms, src, dst, initial
        )

    def find_loops(self) -> List[Tuple[int, Tuple[str, ...]]]:
        port_atoms = self.port_atoms()
        return traversal.find_loops(
            self.dataset.topology,
            traversal.build_next_port(port_atoms),
            self.acl_atoms(),
            self.ppm.atoms,
        )

    def find_blackholes(
        self, scope: Optional[FrozenSet[int]] = None
    ) -> List[Tuple[str, FrozenSet[int]]]:
        return traversal.find_blackholes(
            self.dataset.topology, self.port_atoms(), self.acl_atoms(), scope
        )

    def verify_update(self, changes: List[Change]) -> List[Tuple[int, Tuple[str, ...]]]:
        """Loop check scoped to the atoms an update actually touched.

        This is APKeep's point: after absorbing a rule update, only the
        atoms overlapping the behaviour changes can have gained or lost a
        loop, so re-verification is O(changed atoms), not O(all atoms).
        Returns the loops found among those atoms.
        """
        touched = set()
        for change in changes:
            touched |= self.atoms_overlapping(change.bdd)
        if not touched:
            return []
        port_atoms = self.port_atoms()
        return traversal.find_loops(
            self.dataset.topology,
            traversal.build_next_port(port_atoms),
            self.acl_atoms(),
            sorted(touched),
        )

    def atoms_overlapping(self, bdd: int) -> FrozenSet[int]:
        found = set()
        for atom_id, atom_bdd in self.ppm.atoms.items():
            if self.engine.and_(atom_bdd, bdd) != BDD_FALSE:
                found.add(atom_id)
        return frozenset(found)

    def allocated_atoms(self) -> FrozenSet[int]:
        from repro.bdd.builder import prefix_to_bdd

        union = BDD_FALSE
        for prefix in self.dataset.prefix_of.values():
            union = self.engine.or_(union, prefix_to_bdd(self.engine, prefix))
        return self.atoms_overlapping(union)
