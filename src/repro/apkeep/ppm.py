"""The port-predicate map: APKeep's incrementally-maintained atom space.

One network-wide set of atomic predicates (atoms) is shared by every
element.  Each element maps each of its ports to a set of atom ids; the
sets of one element always partition the atom space.  Applying a
:class:`~repro.apkeep.changes.Change` moves atoms between two ports of one
element, splitting any atom that only partially overlaps the change.

Splitting never merges, so after many updates the atom set can be finer
than the minimal atomic predicates of the final state; :meth:`PPM.compact`
merges atoms with identical port membership across all elements, restoring
minimality (this is the equivalent of APKeep's predicate merging).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.apkeep.changes import Change
from repro.bdd.engine import BDDEngine, BDD_FALSE, BDD_TRUE


class PPM:
    """Port-predicate map over one BDD engine."""

    def __init__(self, engine: BDDEngine):
        self.engine = engine
        self.atoms: Dict[int, int] = {0: BDD_TRUE}
        self._next_atom_id = 1
        # element -> port -> set of atom ids.
        self.port_map: Dict[str, Dict[str, Set[int]]] = {}
        # atom id -> element -> port (reverse index for fast splits).
        self.atom_locations: Dict[int, Dict[str, str]] = {0: {}}
        self.split_count = 0
        self.transfer_count = 0

    # ------------------------------------------------------------------
    # Elements
    # ------------------------------------------------------------------
    def add_element(self, name: str, ports: Iterable[str], default_port: str) -> None:
        """Register an element; every atom starts on its default port."""
        if name in self.port_map:
            raise KeyError(f"element {name!r} already registered")
        port_set = set(ports)
        port_set.add(default_port)
        self.port_map[name] = {port: set() for port in sorted(port_set)}
        self.port_map[name][default_port].update(self.atoms)
        for atom_id in self.atoms:
            self.atom_locations[atom_id][name] = default_port

    def ensure_port(self, element: str, port: str) -> None:
        self.port_map[element].setdefault(port, set())

    # ------------------------------------------------------------------
    # Change application
    # ------------------------------------------------------------------
    def apply_changes(self, element: str, changes: List[Change]) -> int:
        """Apply changes to one element; returns the number of atom splits."""
        splits_before = self.split_count
        for change in changes:
            self._apply_one(element, change)
        return self.split_count - splits_before

    def _apply_one(self, element: str, change: Change) -> None:
        engine = self.engine
        self.ensure_port(element, change.from_port)
        self.ensure_port(element, change.to_port)
        source = self.port_map[element][change.from_port]
        moving_whole: List[int] = []
        splitting: List[Tuple[int, int]] = []  # (atom id, intersection bdd)
        for atom_id in source:
            atom_bdd = self.atoms[atom_id]
            inter = engine.and_(atom_bdd, change.bdd)
            if inter == BDD_FALSE:
                continue
            if inter == atom_bdd:
                moving_whole.append(atom_id)
            else:
                splitting.append((atom_id, inter))
        for atom_id in moving_whole:
            self._move(atom_id, element, change.from_port, change.to_port)
        for atom_id, inter in splitting:
            inside = self._split(atom_id, inter)
            self._move(inside, element, change.from_port, change.to_port)
        self.transfer_count += len(moving_whole) + len(splitting)

    def _move(self, atom_id: int, element: str, from_port: str, to_port: str) -> None:
        self.port_map[element][from_port].discard(atom_id)
        self.port_map[element][to_port].add(atom_id)
        self.atom_locations[atom_id][element] = to_port

    def _split(self, atom_id: int, inside_bdd: int) -> int:
        """Split ``atom_id`` into inside/outside of ``inside_bdd``.

        The original atom id keeps the *outside* part; a fresh id carries
        the inside part and is returned.  Every element's port set gains
        the new id alongside the old one.
        """
        engine = self.engine
        outside_bdd = engine.diff(self.atoms[atom_id], inside_bdd)
        if outside_bdd == BDD_FALSE or inside_bdd == BDD_FALSE:
            raise ValueError("split requires a strict partial overlap")
        new_id = self._next_atom_id
        self._next_atom_id += 1
        self.atoms[atom_id] = outside_bdd
        self.atoms[new_id] = inside_bdd
        self.atom_locations[new_id] = dict(self.atom_locations[atom_id])
        for element, port in self.atom_locations[new_id].items():
            self.port_map[element][port].add(new_id)
        self.split_count += 1
        return new_id

    # ------------------------------------------------------------------
    # Compaction (predicate merging)
    # ------------------------------------------------------------------
    def equivalence_classes(self) -> List[List[int]]:
        """Groups of atoms with identical port membership everywhere."""
        by_profile: Dict[Tuple, List[int]] = {}
        for atom_id in sorted(self.atoms):
            profile = tuple(sorted(self.atom_locations[atom_id].items()))
            by_profile.setdefault(profile, []).append(atom_id)
        return list(by_profile.values())

    def count_compacted(self) -> int:
        """Number of atoms after a (virtual) merge of equivalent atoms."""
        return len(self.equivalence_classes())

    def compact(self) -> int:
        """Merge behaviourally-identical atoms; returns merges performed."""
        merged = 0
        for group in self.equivalence_classes():
            if len(group) < 2:
                continue
            keeper, rest = group[0], group[1:]
            union = self.atoms[keeper]
            for atom_id in rest:
                union = self.engine.or_(union, self.atoms[atom_id])
                for element, port in self.atom_locations[atom_id].items():
                    self.port_map[element][port].discard(atom_id)
                del self.atoms[atom_id]
                del self.atom_locations[atom_id]
                merged += 1
            self.atoms[keeper] = union
        return merged

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def num_atoms(self) -> int:
        return len(self.atoms)

    def atoms_of(self, element: str, port: str) -> FrozenSet[int]:
        return frozenset(self.port_map[element].get(port, ()))

    def check_partition(self, element: str) -> bool:
        """Invariant: one element's ports partition the atom space."""
        seen: Set[int] = set()
        for atoms in self.port_map[element].values():
            if atoms & seen:
                return False
            seen |= atoms
        return seen == set(self.atoms)
