"""From-scratch reduced ordered binary decision diagrams (ROBDDs).

AP and APKeep represent packet sets as BDDs.  The paper attributes a 20x
predicate-computation gap between participant D's reproduction and the
open-source AP prototype purely to the BDD library choice (JavaBDD vs
JDD).  This package provides one correct core (:class:`BDDEngine`) and two
operation profiles with identical semantics but different constant
factors:

* :class:`JDDEngine` -- specialised binary operations with a persistent
  computed-table, like JDD;
* :class:`JavaBDDEngine` -- every operation routed through generic ITE,
  computed-table dropped after each top-level call, and a periodic
  node-table sweep simulating GC pressure, like a poorly tuned JavaBDD
  deployment.

Both profiles produce identical node ids for identical operand histories,
so results can be compared across engines by satcount/semantics.
"""

from repro.bdd.engine import BDDEngine, JDDEngine, JavaBDDEngine, BDD_FALSE, BDD_TRUE
from repro.bdd.builder import prefix_to_bdd, acl_permit_bdd, rule_match_bdd

__all__ = [
    "BDDEngine",
    "BDD_FALSE",
    "BDD_TRUE",
    "JDDEngine",
    "JavaBDDEngine",
    "acl_permit_bdd",
    "prefix_to_bdd",
    "rule_match_bdd",
]
