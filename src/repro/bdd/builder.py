"""Helpers that encode network objects as BDDs.

The verifiers translate prefixes, FIB rules and ACLs into packet-set BDDs
over :data:`repro.netmodel.headerspace.HEADER_BITS` variables (bit 0 of
the destination address is variable 0, at the top of the order).
"""

from __future__ import annotations

from repro.bdd.engine import BDDEngine, BDD_FALSE, BDD_TRUE
from repro.netmodel.headerspace import HEADER_BITS, Prefix
from repro.netmodel.rules import AclAction, Device, ForwardingRule


def new_engine(profile: str = "jdd") -> BDDEngine:
    """Engine over the header bits, by profile name (``jdd``/``javabdd``)."""
    from repro.bdd.engine import JDDEngine, JavaBDDEngine

    if profile == "jdd":
        return JDDEngine(HEADER_BITS)
    if profile == "javabdd":
        return JavaBDDEngine(HEADER_BITS)
    raise KeyError(f"unknown BDD profile {profile!r}")


def prefix_to_bdd(engine: BDDEngine, prefix: Prefix) -> int:
    """BDD of all headers matched by ``prefix``."""
    return engine.cube(prefix.bdd_literals())


def rule_match_bdd(engine: BDDEngine, rule: ForwardingRule) -> int:
    """BDD of the rule's raw match set (before priority shadowing)."""
    return prefix_to_bdd(engine, rule.prefix)


def acl_permit_bdd(engine: BDDEngine, device: Device) -> int:
    """BDD of headers the device's ingress ACL permits (first match wins)."""
    if not device.has_acl:
        return BDD_TRUE
    permitted = BDD_FALSE
    remaining = BDD_TRUE
    for acl_rule in device.acl:
        match = prefix_to_bdd(engine, acl_rule.prefix)
        effective = engine.and_(match, remaining)
        if acl_rule.action is AclAction.PERMIT:
            permitted = engine.or_(permitted, effective)
        remaining = engine.diff(remaining, match)
    # Default action is permit, matching Device.acl_permits.
    return engine.or_(permitted, remaining)


def forwarding_port_bdds(engine: BDDEngine, device: Device) -> dict:
    """Map ``port -> BDD`` of headers the device forwards to that port.

    Applies priority shadowing: a rule only acts on headers not taken by
    higher-priority rules.  Unmatched headers go to the drop port.
    """
    from repro.netmodel.rules import DROP_PORT

    port_sets = {}
    remaining = BDD_TRUE
    for rule in device.rules:
        match = prefix_to_bdd(engine, rule.prefix)
        effective = engine.and_(match, remaining)
        if effective != BDD_FALSE:
            previous = port_sets.get(rule.port, BDD_FALSE)
            port_sets[rule.port] = engine.or_(previous, effective)
        remaining = engine.diff(remaining, match)
    if remaining != BDD_FALSE:
        previous = port_sets.get(DROP_PORT, BDD_FALSE)
        port_sets[DROP_PORT] = engine.or_(previous, remaining)
    return port_sets
