"""Graphviz DOT export of BDDs — the standard debugging aid.

``to_dot(engine, node)`` renders the sub-DAG rooted at ``node``: solid
edges for the high (1) branch, dashed for the low (0) branch, boxes for
the terminals.  Paste the output into any Graphviz viewer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bdd.engine import BDDEngine, BDD_FALSE, BDD_TRUE


def to_dot(
    engine: BDDEngine,
    node: int,
    name: str = "bdd",
    var_names: Optional[Dict[int, str]] = None,
) -> str:
    """DOT source for the BDD rooted at ``node``."""
    lines: List[str] = [f"digraph {name} {{"]
    lines.append("  rankdir=TB;")
    lines.append('  node0 [label="0", shape=box];')
    lines.append('  node1 [label="1", shape=box];')

    visited = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if current in visited or current in (BDD_FALSE, BDD_TRUE):
            continue
        visited.add(current)
        variable = engine._var[current]
        label = (
            var_names[variable]
            if var_names and variable in var_names
            else f"x{variable}"
        )
        lines.append(f'  node{current} [label="{label}", shape=circle];')
        low = engine._low[current]
        high = engine._high[current]
        lines.append(f"  node{current} -> node{low} [style=dashed];")
        lines.append(f"  node{current} -> node{high};")
        stack.append(low)
        stack.append(high)
    lines.append("}")
    return "\n".join(lines)


def node_count(engine: BDDEngine, node: int) -> int:
    """Number of internal nodes in the sub-DAG rooted at ``node``."""
    visited = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if current in visited or current in (BDD_FALSE, BDD_TRUE):
            continue
        visited.add(current)
        stack.append(engine._low[current])
        stack.append(engine._high[current])
    return len(visited)
