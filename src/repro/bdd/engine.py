"""The ROBDD core and its two operation profiles.

Standard Bryant construction: nodes are ``(var, low, high)`` triples kept
canonical through a unique table, terminals are the integers ``0``
(false) and ``1`` (true), and variable order is fixed to ``0 < 1 < ...``
(variable 0 at the top).  All operations return node ids; equal ids mean
equal functions.

Reference counting mirrors the JDD/JavaBDD API (``ref``/``deref``) that
the APKeep pseudocode in the paper's Figure 6 calls; the counts are
tracked faithfully but nodes are never actually reclaimed (Python owns the
memory), so a missing ``deref`` can never corrupt results -- it only shows
up in :attr:`BDDEngine.live_refs` statistics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

BDD_FALSE = 0
BDD_TRUE = 1

_OP_AND = "and"
_OP_OR = "or"
_OP_DIFF = "diff"


class BDDEngine:
    """Correct ROBDD engine; subclasses choose the operation strategy."""

    name = "base"

    def __init__(self, num_vars: int):
        if num_vars < 1:
            raise ValueError("num_vars must be >= 1")
        self.num_vars = num_vars
        # Node storage; indices 0/1 are the terminals (var = num_vars acts
        # as a sentinel level below every real variable).
        self._var: List[int] = [num_vars, num_vars]
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._cache: Dict[Tuple, int] = {}
        self._refs: Dict[int, int] = {}
        # Operation statistics (used by benchmarks and the GC profile).
        self.op_count = 0
        self.mk_count = 0
        # Computed-table statistics: every cache probe is a hit or miss,
        # so profiles that drop the cache per call (JavaBDD) show up as a
        # collapsed hit ratio in :meth:`stats`.
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        node = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        self.mk_count += 1
        self._after_mk()
        return node

    def _after_mk(self) -> None:
        """Hook for profiles that do per-allocation bookkeeping."""

    def var(self, index: int) -> int:
        """BDD for the single positive literal ``x_index``."""
        self._check_var(index)
        return self._mk(index, BDD_FALSE, BDD_TRUE)

    def nvar(self, index: int) -> int:
        """BDD for the single negative literal ``not x_index``."""
        self._check_var(index)
        return self._mk(index, BDD_TRUE, BDD_FALSE)

    def _check_var(self, index: int) -> None:
        if not 0 <= index < self.num_vars:
            raise IndexError(f"variable {index} out of [0, {self.num_vars})")

    def cube(self, literals) -> int:
        """Conjunction of ``(var, polarity)`` literals."""
        ordered = sorted(literals, key=lambda lit: lit[0], reverse=True)
        node = BDD_TRUE
        for index, polarity in ordered:
            self._check_var(index)
            if polarity:
                node = self._mk(index, BDD_FALSE, node)
            else:
                node = self._mk(index, node, BDD_FALSE)
        return node

    # ------------------------------------------------------------------
    # Operations (profile-specific dispatch)
    # ------------------------------------------------------------------
    def and_(self, u: int, v: int) -> int:
        raise NotImplementedError

    def or_(self, u: int, v: int) -> int:
        raise NotImplementedError

    def diff(self, u: int, v: int) -> int:
        """``u AND NOT v`` -- the workhorse of both verifiers."""
        raise NotImplementedError

    def not_(self, u: int) -> int:
        self.op_count += 1
        return self._not_rec(u)

    def _not_rec(self, u: int) -> int:
        if u == BDD_FALSE:
            return BDD_TRUE
        if u == BDD_TRUE:
            return BDD_FALSE
        key = ("not", u)
        found = self._cache.get(key)
        if found is not None:
            self.cache_hits += 1
            return found
        self.cache_misses += 1
        node = self._mk(self._var[u], self._not_rec(self._low[u]), self._not_rec(self._high[u]))
        self._cache[key] = node
        return node

    def xor_(self, u: int, v: int) -> int:
        return self.or_(self.diff(u, v), self.diff(v, u))

    def implies(self, u: int, v: int) -> bool:
        """True when the set ``u`` is contained in ``v``."""
        return self.diff(u, v) == BDD_FALSE

    def equal(self, u: int, v: int) -> bool:
        return u == v

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f AND g) OR (NOT f AND h)``."""
        self.op_count += 1
        return self._ite_rec(f, g, h)

    def _ite_rec(self, f: int, g: int, h: int) -> int:
        if f == BDD_TRUE:
            return g
        if f == BDD_FALSE:
            return h
        if g == h:
            return g
        if g == BDD_TRUE and h == BDD_FALSE:
            return f
        key = ("ite", f, g, h)
        found = self._cache.get(key)
        if found is not None:
            self.cache_hits += 1
            return found
        self.cache_misses += 1
        level = min(self._var[f], self._var[g], self._var[h])

        def branch(node: int, take_high: bool) -> int:
            if self._var[node] != level:
                return node
            return self._high[node] if take_high else self._low[node]

        high = self._ite_rec(branch(f, True), branch(g, True), branch(h, True))
        low = self._ite_rec(branch(f, False), branch(g, False), branch(h, False))
        node = self._mk(level, low, high)
        self._cache[key] = node
        return node

    # ------------------------------------------------------------------
    # Reference counting (JDD-style API; never reclaims)
    # ------------------------------------------------------------------
    def ref(self, u: int) -> int:
        self._refs[u] = self._refs.get(u, 0) + 1
        return u

    def deref(self, u: int) -> None:
        count = self._refs.get(u, 0)
        if count <= 1:
            self._refs.pop(u, None)
        else:
            self._refs[u] = count - 1

    @property
    def live_refs(self) -> int:
        return sum(self._refs.values())

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._var)

    def satcount(self, u: int) -> int:
        """Number of satisfying assignments over all ``num_vars`` variables."""
        memo: Dict[int, int] = {BDD_FALSE: 0, BDD_TRUE: 1}

        def count(node: int) -> int:
            found = memo.get(node)
            if found is not None:
                return found
            level = self._var[node]
            low, high = self._low[node], self._high[node]
            total = count(low) << (self._var[low] - level - 1)
            total += count(high) << (self._var[high] - level - 1)
            memo[node] = total
            return total

        if u == BDD_FALSE:
            return 0
        return count(u) << self._var[u]

    def any_sat(self, u: int) -> Optional[Dict[int, bool]]:
        """One satisfying assignment (partial; unmentioned vars are free)."""
        if u == BDD_FALSE:
            return None
        assignment: Dict[int, bool] = {}
        node = u
        while node != BDD_TRUE:
            if self._low[node] != BDD_FALSE:
                assignment[self._var[node]] = False
                node = self._low[node]
            else:
                assignment[self._var[node]] = True
                node = self._high[node]
        return assignment

    def evaluate(self, u: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate the function at a full assignment ``var -> bool``."""
        node = u
        while node not in (BDD_FALSE, BDD_TRUE):
            node = self._high[node] if assignment[self._var[node]] else self._low[node]
        return node == BDD_TRUE

    def node(self, u: int) -> Tuple[int, int, int]:
        """The ``(var, low, high)`` triple of node ``u``.

        Terminals report the sentinel level ``num_vars`` with themselves
        as both branches.  This is the only structural accessor the
        engine exposes; it lets exporters (the shard tier's
        canonical-interval encoding) walk a BDD without reaching into
        the node tables, so every engine stays free to own its storage
        -- the property that makes shard-local node tables possible.
        """
        return self._var[u], self._low[u], self._high[u]

    def clear_cache(self) -> None:
        self._cache.clear()

    def stats(self) -> Dict[str, object]:
        """Engine telemetry: node/cache sizes and computed-table hit rate.

        The fast (JDD) and slow (JavaBDD) profiles run identical
        semantics, so the profile comparison reduces to a diff of these
        numbers -- most visibly ``cache_hit_ratio``, which collapses when
        the computed table is dropped per call.
        """
        lookups = self.cache_hits + self.cache_misses
        return {
            "profile": self.name,
            "num_vars": self.num_vars,
            "num_nodes": self.num_nodes,
            "cache_size": len(self._cache),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_ratio": self.cache_hits / lookups if lookups else 0.0,
            "op_count": self.op_count,
            "mk_count": self.mk_count,
            "live_refs": self.live_refs,
        }


class JDDEngine(BDDEngine):
    """Specialised ops + persistent computed-table (the fast profile)."""

    name = "jdd"

    def and_(self, u: int, v: int) -> int:
        self.op_count += 1
        return self._apply(_OP_AND, u, v)

    def or_(self, u: int, v: int) -> int:
        self.op_count += 1
        return self._apply(_OP_OR, u, v)

    def diff(self, u: int, v: int) -> int:
        self.op_count += 1
        return self._apply(_OP_DIFF, u, v)

    def _apply(self, op: str, u: int, v: int) -> int:
        terminal = _TERMINAL_RULES[op](u, v)
        if terminal is not None:
            return terminal
        if op in (_OP_AND, _OP_OR) and u > v:
            u, v = v, u  # commutative: canonicalise the cache key
        key = (op, u, v)
        found = self._cache.get(key)
        if found is not None:
            self.cache_hits += 1
            return found
        self.cache_misses += 1
        level = min(self._var[u], self._var[v])
        u_low, u_high = self._branches(u, level)
        v_low, v_high = self._branches(v, level)
        node = self._mk(
            level,
            self._apply(op, u_low, v_low),
            self._apply(op, u_high, v_high),
        )
        self._cache[key] = node
        return node

    def _branches(self, node: int, level: int) -> Tuple[int, int]:
        if self._var[node] != level:
            return node, node
        return self._low[node], self._high[node]


def _and_terminal(u: int, v: int) -> Optional[int]:
    if u == BDD_FALSE or v == BDD_FALSE:
        return BDD_FALSE
    if u == BDD_TRUE:
        return v
    if v == BDD_TRUE:
        return u
    if u == v:
        return u
    return None


def _or_terminal(u: int, v: int) -> Optional[int]:
    if u == BDD_TRUE or v == BDD_TRUE:
        return BDD_TRUE
    if u == BDD_FALSE:
        return v
    if v == BDD_FALSE:
        return u
    if u == v:
        return u
    return None


def _diff_terminal(u: int, v: int) -> Optional[int]:
    if u == BDD_FALSE or v == BDD_TRUE:
        return BDD_FALSE
    if v == BDD_FALSE:
        return u
    if u == v:
        return BDD_FALSE
    return None


_TERMINAL_RULES = {
    _OP_AND: _and_terminal,
    _OP_OR: _or_terminal,
    _OP_DIFF: _diff_terminal,
}


class JavaBDDEngine(BDDEngine):
    """Generic-ITE ops, cache dropped per call, periodic sweep (slow profile).

    Semantics are identical to :class:`JDDEngine`; only constant factors
    differ, which is exactly the paper's explanation for participant D's
    20x predicate-computation slowdown.
    """

    name = "javabdd"

    #: Sweep the node table every this many allocations (GC pressure model).
    gc_interval = 256

    def __init__(self, num_vars: int):
        super().__init__(num_vars)
        self.gc_sweeps = 0

    def and_(self, u: int, v: int) -> int:
        result = self.ite(u, v, BDD_FALSE)
        self.clear_cache()
        return result

    def or_(self, u: int, v: int) -> int:
        result = self.ite(u, BDD_TRUE, v)
        self.clear_cache()
        return result

    def diff(self, u: int, v: int) -> int:
        inverted = self._not_rec(v)
        result = self._ite_rec(u, inverted, BDD_FALSE)
        self.op_count += 1
        self.clear_cache()
        return result

    def not_(self, u: int) -> int:
        result = super().not_(u)
        self.clear_cache()
        return result

    def _after_mk(self) -> None:
        if self.mk_count % self.gc_interval == 0:
            self._sweep()

    def stats(self) -> Dict[str, object]:
        data = super().stats()
        data["gc_sweeps"] = self.gc_sweeps
        return data

    def _sweep(self) -> None:
        """Walk the whole node table, as a mark phase would."""
        self.gc_sweeps += 1
        touched = 0
        for var, low, high in zip(self._var, self._low, self._high):
            touched += var + (low ^ high)
        self._last_sweep_checksum = touched
