"""``repro.bench`` -- the performance benchmark harness.

The repo's north star is measured speed; this package is the measuring
device.  Four dependency-free pieces:

* :mod:`repro.bench.registry` -- the ``@benchmark`` workload registry
  (:func:`discover` loads the built-in catalogue from
  :mod:`repro.bench.workloads`: BDD build/apply, AP atoms, APKeep
  incremental updates, every TE registry solver cold/warm, parallel
  fan-out, simulated-LLM pipeline runs);
* :mod:`repro.bench.runner` -- warmup + repeated timed iterations with
  min/median/stddev and :mod:`repro.obs.metrics` counter deltas
  attached to each :class:`BenchResult`;
* :mod:`repro.bench.artifact` -- schema-versioned ``BENCH_<sha>.json``
  artifacts (:func:`write_artifact` / :func:`read_artifact`);
* :mod:`repro.bench.compare` -- the regression comparator that diffs
  two artifacts and fails the gate on configurable thresholds.

Typical use is the CLI (``python -m repro bench --save`` then later
``python -m repro bench --baseline BENCH_<sha>.json``), but everything
is callable::

    from repro import bench

    bench.discover()
    results = bench.run_benchmarks(bench.select("bdd"), repeat=3)
    bench.write_artifact("BENCH_dev.json", results)
    report = bench.compare_artifacts(
        bench.read_artifact("BENCH_base.json"),
        bench.read_artifact("BENCH_dev.json"),
    )
    assert report.ok, report.render()
"""

from repro.bench.artifact import (
    SCHEMA,
    ArtifactError,
    build_artifact,
    default_artifact_path,
    find_latest_artifact,
    git_sha,
    read_artifact,
    validate_artifact,
    write_artifact,
)
from repro.bench.compare import (
    ComparisonReport,
    Delta,
    Thresholds,
    compare_artifacts,
)
from repro.bench.registry import (
    LAYERS,
    BenchmarkSpec,
    UnknownBenchmarkError,
    benchmark,
    benchmark_names,
    discover,
    get_spec,
    register,
    render_table,
    select,
    unregister,
)
from repro.bench.runner import (
    BenchResult,
    metric_delta,
    render_results,
    run_benchmark,
    run_benchmarks,
)

__all__ = [
    "ArtifactError",
    "BenchResult",
    "BenchmarkSpec",
    "ComparisonReport",
    "Delta",
    "LAYERS",
    "SCHEMA",
    "Thresholds",
    "UnknownBenchmarkError",
    "benchmark",
    "benchmark_names",
    "build_artifact",
    "compare_artifacts",
    "default_artifact_path",
    "discover",
    "find_latest_artifact",
    "get_spec",
    "git_sha",
    "metric_delta",
    "read_artifact",
    "register",
    "render_results",
    "render_table",
    "run_benchmark",
    "run_benchmarks",
    "select",
    "unregister",
    "validate_artifact",
    "write_artifact",
]
