"""Benchmark artifacts: schema-versioned ``BENCH_<git-sha>.json`` files.

An artifact is the repo's durable perf record for one revision: which
workloads ran, with what profile (repeat/warmup/filter), how long each
took, and what its metric deltas were.  The comparator
(:mod:`repro.bench.compare`) diffs two of them to gate regressions, so
the format is versioned (:data:`SCHEMA`) and :func:`read_artifact`
refuses anything it does not understand rather than mis-comparing.

Layout::

    {
      "schema": "repro.bench/1",
      "git_sha": "150fb5e",
      "created_unix": 1754462400.0,
      "environment": {"python": "3.11.7", "platform": "Linux-..."},
      "profile": {"repeat": 3, "warmup": 1, "filter": null},
      "benchmarks": {
        "te.pf4.warm": {
          "layer": "te",
          "description": "...",
          "repeat": 3, "warmup": 1,
          "seconds": [0.0051, 0.0049, 0.0050],
          "stats": {"min": ..., "median": ..., "mean": ..., "stddev": ...},
          "metrics": {"tunnel_cache.hit": 3, "lp.solves": 3},
          "meta": {"objective": 8854.5}
        }, ...
      }
    }
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.bench.runner import BenchResult

#: Current artifact schema identifier; bump the suffix on breaking changes.
SCHEMA = "repro.bench/1"

_REQUIRED_BENCHMARK_KEYS = ("layer", "seconds", "stats", "metrics")


class ArtifactError(ValueError):
    """A benchmark artifact is malformed or has an unsupported schema."""


def git_sha(short: bool = True, cwd: Optional[str] = None) -> str:
    """The checkout's HEAD sha, or ``"unknown"`` outside a git repo.

    Tries ``cwd`` (the working directory by default) first, then the
    directory this package lives in, so artifacts saved from anywhere
    still carry the sha of the code that was measured.
    """
    command = ["git", "rev-parse", "--short" if short else "--verify", "HEAD"]
    for where in (cwd, str(Path(__file__).resolve().parent)):
        try:
            sha = subprocess.run(
                command, cwd=where, capture_output=True, text=True,
                check=True, timeout=10,
            ).stdout.strip()
        except (OSError, subprocess.SubprocessError):
            continue
        if sha:
            return sha
    return "unknown"


def default_artifact_path(directory: Union[str, Path] = ".") -> Path:
    """``BENCH_<sha>.json`` in ``directory`` (the repo root by convention)."""
    return Path(directory) / f"BENCH_{git_sha()}.json"


def find_latest_artifact(directory: Union[str, Path] = ".") -> Path:
    """The newest ``BENCH_*.json`` in ``directory``.

    "Newest" is each artifact's own ``created_unix`` stamp (what the
    writer recorded), falling back to file mtime for artifacts that do
    not parse.  This is what ``repro bench --baseline`` (no path) and
    ``--compare`` (one path) resolve against; raises
    :class:`ArtifactError` when the directory has no candidates, so the
    caller can say "save a baseline first" instead of mis-comparing.
    """
    directory = Path(directory)
    candidates = sorted(directory.glob("BENCH_*.json"))
    if not candidates:
        raise ArtifactError(
            f"no BENCH_*.json artifact found in {directory.resolve()}; "
            "save one first with 'repro bench --save'"
        )

    def freshness(path: Path) -> float:
        try:
            artifact = json.loads(path.read_text())
            return float(artifact["created_unix"])
        except (OSError, ValueError, KeyError, TypeError):
            return path.stat().st_mtime

    return max(candidates, key=freshness)


def build_artifact(
    results: List[BenchResult],
    profile: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the artifact dict for ``results`` (no I/O)."""
    benchmarks: Dict[str, object] = {}
    for result in results:
        benchmarks[result.name] = {
            "layer": result.layer,
            "description": result.description,
            "repeat": result.repeat,
            "warmup": result.warmup,
            "seconds": list(result.seconds),
            "stats": result.stats(),
            "metrics": dict(result.metrics),
            "meta": dict(result.meta),
        }
    return {
        "schema": SCHEMA,
        "git_sha": git_sha(),
        "created_unix": time.time(),
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "argv": list(sys.argv),
        },
        "profile": dict(profile or {}),
        "benchmarks": benchmarks,
    }


def write_artifact(
    path: Union[str, Path],
    results: List[BenchResult],
    profile: Optional[Dict[str, object]] = None,
) -> Path:
    """Write ``results`` as an artifact at ``path``; returns the path.

    The write is atomic (same-directory temporary file published with
    :func:`os.replace`): a bench run killed mid-write can never leave a
    truncated ``BENCH_*.json`` where the comparator -- or
    :func:`find_latest_artifact` -- would trip over it.
    """
    path = Path(path)
    artifact = build_artifact(results, profile=profile)
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
    tmp.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def validate_artifact(artifact: object) -> Dict[str, object]:
    """Check artifact structure; returns it typed, raises :class:`ArtifactError`."""
    if not isinstance(artifact, dict):
        raise ArtifactError("artifact must be a JSON object")
    schema = artifact.get("schema")
    if schema != SCHEMA:
        raise ArtifactError(
            f"unsupported artifact schema {schema!r} (expected {SCHEMA!r})"
        )
    benchmarks = artifact.get("benchmarks")
    if not isinstance(benchmarks, dict):
        raise ArtifactError("artifact has no 'benchmarks' object")
    for name, record in benchmarks.items():
        if not isinstance(record, dict):
            raise ArtifactError(f"benchmark {name!r} is not an object")
        for key in _REQUIRED_BENCHMARK_KEYS:
            if key not in record:
                raise ArtifactError(f"benchmark {name!r} is missing {key!r}")
        if not record["seconds"]:
            raise ArtifactError(f"benchmark {name!r} has no timings")
    return artifact


def read_artifact(path: Union[str, Path]) -> Dict[str, object]:
    """Load and validate an artifact file."""
    try:
        artifact = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path}: not valid JSON: {exc}") from exc
    return validate_artifact(artifact)
