"""The regression comparator: diff two artifacts, gate on thresholds.

Given a *baseline* artifact and a *current* one, classify every
benchmark the baseline knows about:

* ``regression`` -- current / baseline exceeds ``Thresholds.ratio``
  (and the benchmark is slow enough to matter, see ``min_seconds``);
* ``faster``     -- the same test in the other direction (informational);
* ``ok``         -- within the noise band, including exactly equal;
* ``missing``    -- in the baseline but absent from the current run: a
  deleted workload fails the gate, because silently dropping a slow
  benchmark is indistinguishable from fixing it;
* ``skipped-fast`` -- both sides faster than ``min_seconds``; at that
  scale the ratio is timer noise, so it never gates;
* ``new``        -- in the current run only (informational).

:meth:`ComparisonReport.ok` is the gate: ``False`` (and a nonzero CLI
exit) when any regression or missing benchmark exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Stats keys a comparison may gate on.
COMPARABLE_STATS = ("min", "median", "mean")


@dataclass(frozen=True)
class Thresholds:
    """Knobs for what counts as a regression.

    ``ratio`` is the slowdown factor that fails the gate (1.5 = fail at
    +50%); ``min_seconds`` exempts benchmarks whose baseline *and*
    current stat are both below it; ``stat`` picks which statistic the
    ratio is computed over (median by default -- robust against one
    noisy iteration, unlike mean, while still moving when the workload
    does, unlike min on a lucky run).
    """

    ratio: float = 1.5
    min_seconds: float = 0.002
    stat: str = "median"

    def __post_init__(self):
        if self.ratio <= 1.0:
            raise ValueError("threshold ratio must be > 1.0")
        if self.min_seconds < 0:
            raise ValueError("min_seconds must be >= 0")
        if self.stat not in COMPARABLE_STATS:
            raise ValueError(
                f"stat must be one of {COMPARABLE_STATS}, got {self.stat!r}"
            )


@dataclass(frozen=True)
class Delta:
    """One benchmark's baseline-vs-current verdict."""

    name: str
    status: str  # 'ok' | 'faster' | 'regression' | 'missing' | 'new' | 'skipped-fast'
    baseline_seconds: Optional[float] = None
    current_seconds: Optional[float] = None

    @property
    def ratio(self) -> Optional[float]:
        """current / baseline, when both sides exist and baseline > 0."""
        if not self.baseline_seconds or self.current_seconds is None:
            return None
        return self.current_seconds / self.baseline_seconds


@dataclass
class ComparisonReport:
    """Every per-benchmark :class:`Delta` plus the gate verdict."""

    thresholds: Thresholds
    deltas: List[Delta] = field(default_factory=list)

    @property
    def regressions(self) -> List[Delta]:
        """Deltas that exceeded the slowdown threshold."""
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def missing(self) -> List[Delta]:
        """Baseline benchmarks absent from the current artifact."""
        return [d for d in self.deltas if d.status == "missing"]

    @property
    def ok(self) -> bool:
        """``True`` when nothing regressed and nothing went missing."""
        return not self.regressions and not self.missing

    def render(self) -> str:
        """Plain-text comparison table plus a one-line verdict."""
        lines = [
            f"{'benchmark':<26} {'baseline':>10} {'current':>10} "
            f"{'ratio':>7}  status"
        ]
        for delta in self.deltas:
            base = (
                f"{delta.baseline_seconds:>9.4f}s"
                if delta.baseline_seconds is not None else f"{'-':>10}"
            )
            cur = (
                f"{delta.current_seconds:>9.4f}s"
                if delta.current_seconds is not None else f"{'-':>10}"
            )
            ratio = (
                f"{delta.ratio:>6.2f}x" if delta.ratio is not None
                else f"{'-':>7}"
            )
            status = delta.status.upper() if delta.status in (
                "regression", "missing") else delta.status
            lines.append(f"{delta.name:<26} {base} {cur} {ratio}  {status}")
        verdict = "ok" if self.ok else (
            f"FAILED: {len(self.regressions)} regression(s), "
            f"{len(self.missing)} missing"
        )
        lines.append(
            f"gate ({self.thresholds.stat} ratio > "
            f"{self.thresholds.ratio:g}x, ignoring < "
            f"{self.thresholds.min_seconds:g}s): {verdict}"
        )
        return "\n".join(lines)


def _stat(record: Dict[str, object], stat: str) -> float:
    stats = record.get("stats") or {}
    return float(stats[stat])


def compare_artifacts(
    baseline: Dict[str, object],
    current: Dict[str, object],
    thresholds: Optional[Thresholds] = None,
) -> ComparisonReport:
    """Diff two validated artifacts into a :class:`ComparisonReport`.

    Iterates the union of benchmark names (baseline order first, then
    new ones) so the report is stable for byte-identical inputs.
    """
    thresholds = thresholds or Thresholds()
    base_benchmarks: Dict[str, Dict] = baseline["benchmarks"]
    cur_benchmarks: Dict[str, Dict] = current["benchmarks"]
    report = ComparisonReport(thresholds=thresholds)
    for name in sorted(base_benchmarks):
        base_seconds = _stat(base_benchmarks[name], thresholds.stat)
        if name not in cur_benchmarks:
            report.deltas.append(Delta(name, "missing", base_seconds, None))
            continue
        cur_seconds = _stat(cur_benchmarks[name], thresholds.stat)
        if (base_seconds < thresholds.min_seconds
                and cur_seconds < thresholds.min_seconds):
            status = "skipped-fast"
        elif base_seconds > 0 and cur_seconds / base_seconds > thresholds.ratio:
            status = "regression"
        elif base_seconds > 0 and base_seconds / max(cur_seconds, 1e-12) > thresholds.ratio:
            status = "faster"
        else:
            status = "ok"
        report.deltas.append(Delta(name, status, base_seconds, cur_seconds))
    for name in sorted(set(cur_benchmarks) - set(base_benchmarks)):
        report.deltas.append(
            Delta(name, "new", None, _stat(cur_benchmarks[name], thresholds.stat))
        )
    return report
