"""The benchmark registry: one catalogue for every measured hot path.

A *benchmark* is a named, deterministic workload exercising one hot
path of the repository (a BDD build, a TE solve, a pipeline run).  The
registry is the single source of truth for workload definitions: the
``repro bench`` CLI, the CI perf-smoke job, and the pytest-benchmark
files under ``benchmarks/`` all resolve workloads here, so a timing
measured in one place is the same code measured everywhere else.

Registration mirrors :mod:`repro.te.registry`'s idiom::

    from repro.bench import benchmark

    @benchmark("bdd.build_apply", layer="bdd",
               description="prefix BDD build + apply chain (JDD profile)")
    def bench_bdd_build_apply():
        engine = JDDEngine(HEADER_BITS)
        return bdd_profile_workload(engine)

The decorated callable runs one *timed iteration* and returns either a
scalar checksum or a dict of extra metadata; both land in the result's
``meta`` so artifacts can assert the workload computed the same thing
across revisions, not just that it got faster.  Optional ``setup`` runs
once before any iteration and ``pre_iteration`` runs untimed before
every iteration (cold-cache workloads clear the tunnel cache there).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: Layers a benchmark can belong to, in the order tables render them.
LAYERS = (
    "bdd", "ap", "apkeep", "shard", "te", "lp", "store", "parallel",
    "pipeline", "obs", "fuzz", "serve",
)


class UnknownBenchmarkError(KeyError):
    """Raised when a benchmark name is not in the registry."""

    def __init__(self, name: str, known: List[str]):
        self.benchmark_name = name
        self.known = known
        self.suggestions = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
        message = f"unknown benchmark {name!r}"
        if self.suggestions:
            message += "; did you mean: " + ", ".join(self.suggestions) + "?"
        super().__init__(message)

    def __str__(self) -> str:
        return self.args[0]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One registered workload: name, layer, and the callables to time.

    ``func`` performs one timed iteration and returns a checksum value
    or a dict of metadata.  ``setup`` (optional) runs once, untimed,
    before the first iteration; ``pre_iteration`` (optional) runs
    untimed before *every* iteration -- warmup and timed alike -- which
    is where cold-cache workloads invalidate their cache.  ``repeat``
    is the spec's default timed-iteration count (the runner and CLI can
    override it).
    """

    name: str
    layer: str
    func: Callable[[], object]
    setup: Optional[Callable[[], None]] = None
    pre_iteration: Optional[Callable[[], None]] = None
    description: str = ""
    repeat: int = 3
    tags: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.layer not in LAYERS:
            raise ValueError(
                f"unknown layer {self.layer!r}; expected one of {LAYERS}"
            )
        if self.repeat < 1:
            raise ValueError(f"repeat must be >= 1, got {self.repeat}")

    def matches(self, needle: str) -> bool:
        """Case-insensitive substring match on name, layer, or tags."""
        needle = needle.lower()
        return (
            needle in self.name.lower()
            or needle == self.layer.lower()
            or any(needle in tag.lower() for tag in self.tags)
        )


_REGISTRY: Dict[str, BenchmarkSpec] = {}
_discovered = False


def register(spec: BenchmarkSpec, replace: bool = False) -> BenchmarkSpec:
    """Add ``spec`` to the registry; re-registration requires ``replace``."""
    if spec.layer not in LAYERS:
        raise ValueError(
            f"benchmark {spec.name!r} has unknown layer {spec.layer!r} "
            f"(expected one of {', '.join(LAYERS)})"
        )
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"benchmark {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> BenchmarkSpec:
    """Remove and return a registered spec (tests registering probe
    benchmarks clean up with ``try/finally: unregister(...)``)."""
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise UnknownBenchmarkError(name, benchmark_names()) from None


def benchmark(
    name: str,
    layer: str,
    description: str = "",
    setup: Optional[Callable[[], None]] = None,
    pre_iteration: Optional[Callable[[], None]] = None,
    repeat: int = 3,
    tags: Tuple[str, ...] = (),
) -> Callable[[Callable[[], object]], Callable[[], object]]:
    """Decorator form of :func:`register`; returns ``func`` unchanged."""

    def decorate(func: Callable[[], object]) -> Callable[[], object]:
        register(BenchmarkSpec(
            name=name,
            layer=layer,
            func=func,
            setup=setup,
            pre_iteration=pre_iteration,
            description=description,
            repeat=repeat,
            tags=tuple(tags),
        ))
        return func

    return decorate


def discover() -> None:
    """Import the built-in workload catalogue (idempotent).

    Workloads live in :mod:`repro.bench.workloads`, which imports most
    of the repository; deferring that import keeps ``import repro.bench``
    cheap for consumers that only need the comparator or artifact I/O.
    """
    global _discovered
    if _discovered:
        return
    _discovered = True
    from repro.bench import workloads  # noqa: F401  (imports register)


def benchmark_names() -> List[str]:
    """All registered benchmark names, sorted."""
    return sorted(_REGISTRY)


def get_spec(name: str) -> BenchmarkSpec:
    """The :class:`BenchmarkSpec` for ``name``; raises
    :class:`UnknownBenchmarkError` with close-match suggestions."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBenchmarkError(name, benchmark_names()) from None


def select(filter_expr: Optional[str] = None) -> List[BenchmarkSpec]:
    """Specs matching ``filter_expr`` in layer-then-name order.

    ``filter_expr`` is a comma-separated list of needles; a spec is
    selected when *any* needle matches its name, layer, or tags
    (:meth:`BenchmarkSpec.matches`).  ``None`` or ``""`` selects
    everything.
    """
    specs = [_REGISTRY[name] for name in benchmark_names()]
    specs.sort(key=lambda spec: (LAYERS.index(spec.layer), spec.name))
    if not filter_expr:
        return specs
    needles = [part.strip() for part in filter_expr.split(",") if part.strip()]
    return [
        spec for spec in specs
        if any(spec.matches(needle) for needle in needles)
    ]


def render_table(specs: Optional[List[BenchmarkSpec]] = None) -> str:
    """Plain-text catalogue listing (``repro bench --list``)."""
    if specs is None:
        specs = select()
    lines = [f"{'benchmark':<26} {'layer':<9} description"]
    for spec in specs:
        lines.append(f"{spec.name:<26} {spec.layer:<9} {spec.description}")
    return "\n".join(lines)
