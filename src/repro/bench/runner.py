"""The benchmark runner: warmup, repeated timed iterations, statistics.

One :class:`BenchResult` per workload: the raw per-iteration wall
times, derived statistics (min / median / mean / stddev), and the
*metric delta* -- how much every :mod:`repro.obs.metrics` counter moved
during the timed iterations.  The delta is what ties a timing to its
cause: a ``te.pf4.warm`` result carrying ``tunnel_cache.hit == repeat``
proves the warm path really skipped Yen's algorithm, and a regression
whose ``lp.solves`` delta doubled is an algorithmic change, not noise.

Timing discipline: ``setup`` runs once, untimed; ``pre_iteration``
runs untimed before every iteration; warmup iterations run the real
workload but discard their time (first-call costs -- imports, lazy
caches -- land there); only the ``repeat`` timed iterations contribute
to statistics and the metric delta.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.bench.registry import BenchmarkSpec

#: Metric families worth attaching to results; everything else (e.g.
#: pipeline step histograms) is noise at benchmark granularity.
METRIC_PREFIXES = (
    "tunnel_cache.", "solver.", "lp.", "bdd.", "pipeline.", "parallel.",
    "faults.", "llm.", "retries", "store.", "serve.",
)


def _flatten(snapshot: Dict[str, Dict[str, object]]) -> Dict[str, float]:
    """Reduce a metrics snapshot to ``{name: scalar}`` for delta math.

    Counters and gauges contribute their value; histograms contribute
    ``<name>.count`` and ``<name>.sum``.
    """
    flat: Dict[str, float] = {}
    for name, snap in snapshot.items():
        if not name.startswith(METRIC_PREFIXES):
            continue
        if snap.get("type") == "histogram":
            flat[f"{name}.count"] = float(snap.get("count", 0))
            flat[f"{name}.sum"] = float(snap.get("sum", 0.0))
        else:
            flat[name] = float(snap.get("value", 0))
    return flat


def metric_delta(
    before: Dict[str, Dict[str, object]],
    after: Dict[str, Dict[str, object]],
) -> Dict[str, float]:
    """Per-metric movement between two snapshots, zero deltas dropped."""
    flat_before = _flatten(before)
    flat_after = _flatten(after)
    delta = {}
    for name, value in flat_after.items():
        moved = value - flat_before.get(name, 0.0)
        if moved:
            delta[name] = moved
    return delta


@dataclass
class BenchResult:
    """Outcome of running one benchmark: timings, stats, metric deltas."""

    name: str
    layer: str
    description: str
    warmup: int
    repeat: int
    seconds: List[float]
    metrics: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def min_seconds(self) -> float:
        """Fastest timed iteration -- the least-noisy point estimate."""
        return min(self.seconds)

    @property
    def median_seconds(self) -> float:
        """Median timed iteration -- what the comparator gates on."""
        return statistics.median(self.seconds)

    @property
    def mean_seconds(self) -> float:
        """Arithmetic mean of the timed iterations."""
        return statistics.fmean(self.seconds)

    @property
    def stddev_seconds(self) -> float:
        """Population stddev of the timed iterations (0 for one run)."""
        if len(self.seconds) < 2:
            return 0.0
        return statistics.pstdev(self.seconds)

    def stats(self) -> Dict[str, float]:
        """The artifact's ``stats`` block for this result."""
        return {
            "min": self.min_seconds,
            "median": self.median_seconds,
            "mean": self.mean_seconds,
            "stddev": self.stddev_seconds,
        }


def _jsonable(value: object) -> bool:
    """Whether a workload-returned meta value can land in an artifact."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return True
    if isinstance(value, (list, tuple)):
        return all(_jsonable(item) for item in value)
    if isinstance(value, dict):
        return all(
            isinstance(k, str) and _jsonable(v) for k, v in value.items()
        )
    return False


def run_benchmark(
    spec: BenchmarkSpec,
    repeat: Optional[int] = None,
    warmup: int = 1,
) -> BenchResult:
    """Run one spec: setup, warmup, ``repeat`` timed iterations.

    ``repeat=None`` uses the spec's own default.  The workload's return
    value from the *last* timed iteration becomes the result's ``meta``
    (merged in when it is a dict, stored under ``"result"`` otherwise),
    so artifacts record what was computed alongside how long it took.
    """
    rounds = spec.repeat if repeat is None else repeat
    if rounds < 1:
        raise ValueError("repeat must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    with obs.span("bench.run", benchmark=spec.name, repeat=rounds):
        if spec.setup is not None:
            spec.setup()
        for _ in range(warmup):
            if spec.pre_iteration is not None:
                spec.pre_iteration()
            spec.func()
        before = obs.metrics.snapshot()
        seconds: List[float] = []
        value: object = None
        for _ in range(rounds):
            if spec.pre_iteration is not None:
                spec.pre_iteration()
            start = time.perf_counter()
            value = spec.func()
            seconds.append(time.perf_counter() - start)
        after = obs.metrics.snapshot()
    meta: Dict[str, object] = {}
    if isinstance(value, dict):
        meta.update({k: v for k, v in value.items() if _jsonable(v)})
    elif _jsonable(value) and value is not None:
        meta["result"] = value
    return BenchResult(
        name=spec.name,
        layer=spec.layer,
        description=spec.description,
        warmup=warmup,
        repeat=rounds,
        seconds=seconds,
        metrics=metric_delta(before, after),
        meta=meta,
    )


def run_benchmarks(
    specs: List[BenchmarkSpec],
    repeat: Optional[int] = None,
    warmup: int = 1,
    progress: Optional[Callable[[BenchResult], None]] = None,
) -> List[BenchResult]:
    """Run every spec in order; ``progress`` fires after each result."""
    results = []
    for spec in specs:
        result = run_benchmark(spec, repeat=repeat, warmup=warmup)
        results.append(result)
        if progress is not None:
            progress(result)
    return results


def render_results(results: List[BenchResult]) -> str:
    """Plain-text results table (what ``repro bench`` prints)."""
    lines = [
        f"{'benchmark':<26} {'layer':<9} {'min':>10} {'median':>10} "
        f"{'stddev':>9}  metrics"
    ]
    for result in results:
        interesting = ", ".join(
            f"{name}={value:g}"
            for name, value in sorted(result.metrics.items())
            if not name.endswith(".sum")
        )
        lines.append(
            f"{result.name:<26} {result.layer:<9} "
            f"{result.min_seconds:>9.4f}s {result.median_seconds:>9.4f}s "
            f"{result.stddev_seconds:>8.4f}s  {interesting}"
        )
    return "\n".join(lines)
