"""The built-in workload catalogue: every hot path, one benchmark each.

Imported (once) by :func:`repro.bench.registry.discover`; importing it
registers the whole catalogue.  Inputs are fixed and seeded -- named
synthetic datasets, fixed commodity counts, deterministic bursts -- so
two runs on the same revision time the *same* computation and artifact
``meta`` checksums (objectives, atom counts, satcounts) must match
across revisions unless an algorithm genuinely changed.

Layers covered:

* ``bdd``      -- prefix-BDD build + apply chains on both operation
  profiles, with computed-table statistics attached;
* ``ap``       -- atomic-predicate computation and all-pairs queries;
* ``apkeep``   -- full update-stream replay and post-build bursts;
* ``shard``    -- partitioned verification: the sharded-beats-whole
  spawn-worker pair (byte-equal result checksums), the streaming
  update-burst latency path, and a store-cold vs store-warm artifact
  pair on the 100k-rule large preset;
* ``te``       -- every registry solver, as ``.cold`` (tunnel cache
  cleared before each iteration) and ``.warm`` (cache primed) variants
  where the solver uses tunnels;
* ``lp``       -- the solve-session tier: a scale sweep solved cold vs
  carried on one warm LP session, and a single solve on the exact fast
  backend vs the decomposed (reduced-support) backend;
* ``parallel`` -- ``run_ordered`` fan-out overhead, serial vs threads;
* ``pipeline`` -- simulated-LLM reproduction runs end to end;
* ``obs``      -- telemetry-tier overhead: labeled metric hot path and
  disabled-span cost (what un-instrumented runs pay);
* ``fuzz``     -- differential-gate throughput: a fixed case window
  through a fast oracle subset, timed end to end;
* ``serve``    -- the service tier: a fixed job batch through the
  in-process pool vs the spawn worker pool (the multi-process speedup
  pair CI gates on), and the full HTTP submit/wait round trip.

The module-level helpers (:func:`bdd_profile_workload`,
:func:`apkeep_update_latency_rows`, :func:`ncflow_scaling_rows`,
:func:`demand_scale_series`) are also the workload bodies the
pytest-benchmark files under ``benchmarks/`` call, so the paper-shape
assertions there and the perf numbers here measure identical code.
"""

from __future__ import annotations

import time
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from repro.bench.registry import benchmark, register, BenchmarkSpec

#: Default TE benchmark instance: small enough that the full catalogue
#: smoke-runs in seconds, structured enough to exercise real LP models.
TE_INSTANCE = "B4"
TE_COMMODITIES = 30
TE_LOAD = 0.1

#: Default verification datasets for the AP / APKeep layers.
AP_DATASET = "Stanford"
APKEEP_DATASET = "Internet2"


# ----------------------------------------------------------------------
# Shared, deterministic input builders (memoised; setup hooks prime them
# so construction cost never lands inside a timed iteration).
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def _te_instance(name: str = TE_INSTANCE):
    from repro.netmodel.instances import make_te_instance

    return make_te_instance(
        name, max_commodities=TE_COMMODITIES, total_demand_fraction=TE_LOAD
    )


@lru_cache(maxsize=None)
def _verification_dataset(name: str):
    from repro.netmodel.datasets import build_verification_dataset

    return build_verification_dataset(name)


@lru_cache(maxsize=None)
def _ap_verifier(name: str = AP_DATASET):
    from repro.ap import APVerifier

    return APVerifier(_verification_dataset(name))


@lru_cache(maxsize=None)
def _apkeep_verifier(name: str = APKEEP_DATASET):
    from repro.apkeep import APKeepVerifier

    return APKeepVerifier(_verification_dataset(name))


# ----------------------------------------------------------------------
# BDD layer
# ----------------------------------------------------------------------
def bdd_profile_workload(engine) -> int:
    """A predicate-computation-shaped workload: build prefix BDDs at
    mixed lengths and refine an accumulator through them repeatedly.

    The body participant D's slowdown hinges on; both the registry
    benchmarks and ``benchmarks/test_bench_bdd_profiles.py`` run it.
    """
    from repro.bdd.builder import prefix_to_bdd
    from repro.netmodel.headerspace import Prefix

    prefixes = [
        Prefix((value << 8) & 0xFF00, 8) for value in range(0, 256, 2)
    ]
    prefixes += [
        Prefix((value << 6) & 0xFFC0, 10) for value in range(0, 512, 8)
    ]
    nodes = [prefix_to_bdd(engine, p) for p in prefixes]
    acc = nodes[0]
    for _ in range(3):
        for node in nodes[1:]:
            union = engine.or_(acc, node)
            inter = engine.and_(acc, node)
            acc = engine.diff(union, inter)
    return engine.satcount(acc)


def _bdd_profile_bench(profile: str) -> Dict[str, object]:
    from repro.bdd.builder import new_engine

    engine = new_engine(profile)
    satcount = bdd_profile_workload(engine)
    stats = engine.stats()
    return {
        "satcount": satcount,
        "num_nodes": stats["num_nodes"],
        "cache_hit_ratio": round(stats["cache_hit_ratio"], 4),
        "cache_hits": stats["cache_hits"],
        "cache_misses": stats["cache_misses"],
    }


@benchmark(
    "bdd.build_apply", layer="bdd",
    description="prefix-BDD build + or/and/diff chain, JDD profile",
)
def bench_bdd_build_apply() -> Dict[str, object]:
    """Fresh JDD engine per iteration; meta carries the cache stats."""
    return _bdd_profile_bench("jdd")


@benchmark(
    "bdd.javabdd_profile", layer="bdd",
    description="same workload on the JavaBDD profile (cache dropped per call)",
)
def bench_bdd_javabdd_profile() -> Dict[str, object]:
    """The slow operation profile on the identical workload."""
    return _bdd_profile_bench("javabdd")


# ----------------------------------------------------------------------
# AP layer
# ----------------------------------------------------------------------
@benchmark(
    "ap.build", layer="ap",
    description=f"AP predicate + atom computation, {AP_DATASET} dataset",
)
def bench_ap_build() -> Dict[str, object]:
    """Full AP verifier construction from a fresh dataset each iteration."""
    from repro.ap import APVerifier

    verifier = APVerifier(_verification_dataset(AP_DATASET))
    return {
        "num_atoms": verifier.num_atoms,
        "num_predicates": verifier.num_predicates,
    }


@benchmark(
    "ap.query_all_pairs", layer="ap",
    description=f"all-pairs selective-BFS reachability, {AP_DATASET} dataset",
    setup=lambda: _ap_verifier(),
)
def bench_ap_query_all_pairs() -> Dict[str, object]:
    """All-pairs reachability over a prebuilt verifier."""
    verifier = _ap_verifier()
    results = verifier.verify_all_pairs()
    reachable = sum(1 for atoms in results.values() if atoms)
    return {"pairs": len(results), "reachable": reachable}


# ----------------------------------------------------------------------
# APKeep layer
# ----------------------------------------------------------------------
def apkeep_burst(dataset) -> List[Tuple[str, str, object]]:
    """A deterministic insert+remove burst: a /4 override on every
    device, removed again so verifier state is unchanged afterwards."""
    from repro.netmodel.headerspace import Prefix
    from repro.netmodel.rules import ForwardingRule

    burst = []
    for node in dataset.topology.nodes:
        neighbors = dataset.topology.successors(node)
        if not neighbors:
            continue
        rule = ForwardingRule(Prefix(0xF000, 4), neighbors[0], priority=99)
        burst.append(("insert", node, rule))
        burst.append(("remove", node, rule))
    return burst


def apkeep_update_latency_rows(datasets: Sequence[str]) -> List[Dict[str, float]]:
    """Per-dataset update-latency rows: replay each dataset as an update
    stream, then time a post-build :func:`apkeep_burst`.

    The workload behind ``benchmarks/test_bench_apkeep_updates.py``.
    """
    from repro.apkeep import APKeepVerifier

    rows = []
    for name in datasets:
        dataset = _verification_dataset(name)
        verifier = APKeepVerifier(dataset)
        stats = verifier.update_latency_stats()
        burst = apkeep_burst(dataset)
        start = time.perf_counter()
        verifier.batch_update(burst)
        burst_seconds = time.perf_counter() - start
        rows.append(
            {
                "name": name,
                "updates": stats["count"],
                "mean_us": stats["mean"] * 1e6,
                "p99_us": stats["p99"] * 1e6,
                "burst": len(burst),
                "burst_us": burst_seconds / max(len(burst), 1) * 1e6,
            }
        )
    return rows


@benchmark(
    "apkeep.build", layer="apkeep",
    description=f"APKeep full update-stream replay, {APKEEP_DATASET} dataset",
)
def bench_apkeep_build() -> Dict[str, object]:
    """Rebuild the incremental verifier from scratch each iteration."""
    from repro.apkeep import APKeepVerifier

    verifier = APKeepVerifier(_verification_dataset(APKEEP_DATASET))
    return {
        "num_atoms_minimal": verifier.num_atoms_minimal,
        "updates": len(verifier.updates),
    }


@benchmark(
    "apkeep.update_burst", layer="apkeep",
    description="incremental insert+remove burst on a prebuilt verifier",
    setup=lambda: _apkeep_verifier(),
)
def bench_apkeep_update_burst() -> Dict[str, object]:
    """Absorb a deterministic burst; state returns to baseline after."""
    verifier = _apkeep_verifier()
    burst = apkeep_burst(_verification_dataset(APKEEP_DATASET))
    verifier.batch_update(burst)
    return {"burst": len(burst), "num_atoms": verifier.num_atoms}


# ----------------------------------------------------------------------
# TE layer: every registry solver, cold and (where tunnels are used)
# warm tunnel-cache variants.
# ----------------------------------------------------------------------
def _register_te_benchmarks() -> None:
    """One ``.cold`` benchmark per registry solver plus a ``.warm``
    variant for tunnel-using solvers.

    Registered dynamically from :mod:`repro.te.registry`, so a newly
    registered solver is benchmarked without touching this module.
    """
    from repro.te import registry as te_registry
    from repro.te.tunnelcache import TUNNEL_CACHE

    @lru_cache(maxsize=None)
    def solver_for(name: str):
        return te_registry.make_solver(name)

    def solve_once(name: str) -> Dict[str, object]:
        instance = _te_instance()
        solution = solver_for(name).solve(instance.topology, instance.traffic)
        return {
            "objective": round(solution.objective, 4),
            "status": solution.status,
            "lp_count": solution.lp_count,
        }

    def make_run(name: str):
        def run() -> Dict[str, object]:
            return solve_once(name)
        return run

    def make_prime(name: str):
        def prime() -> None:
            _te_instance()
            solve_once(name)   # populates the tunnel cache, untimed
        return prime

    for name in te_registry.solver_names():
        spec = te_registry.get_spec(name)
        uses_tunnels = spec.capabilities.uses_tunnels
        if uses_tunnels:
            register(BenchmarkSpec(
                name=f"te.{name}.cold",
                layer="te",
                func=make_run(name),
                setup=lambda: _te_instance(),
                pre_iteration=TUNNEL_CACHE.clear,
                description=f"{name} solve, tunnel cache cleared per iteration",
                tags=("te-cold", "solver"),
            ))
            register(BenchmarkSpec(
                name=f"te.{name}.warm",
                layer="te",
                func=make_run(name),
                setup=make_prime(name),
                description=f"{name} solve, tunnel cache primed",
                tags=("te-warm", "solver"),
            ))
        else:
            register(BenchmarkSpec(
                name=f"te.{name}.solve",
                layer="te",
                func=make_run(name),
                setup=lambda: _te_instance(),
                description=f"{name} solve ({spec.capabilities.summary()})",
                tags=("solver",),
            ))


_register_te_benchmarks()


# ----------------------------------------------------------------------
# LP layer: the solve-session tier.  Two explicit pairs: a scale sweep
# solved cold vs carried on one warm session (``--filter lp.warm``
# selects exactly the pair), and one solve on the exact fast backend vs
# the decomposed reduced-support backend (``--filter lp.decomposed``).
# ----------------------------------------------------------------------
#: Instance for the warm-vs-cold sweep pair.  Deliberately bigger than
#: the ``te`` layer default: support reduction only pays once the LP is
#: large enough that a reduced solve is much cheaper than a full one.
LP_SWEEP_INSTANCE = "Kdl"
LP_SWEEP_COMMODITIES = 200

#: Scale factors for the warm-vs-cold sweep pair: enough near-identical
#: points that session reuse amortises the one cold solve per chain.
LP_SWEEP_SCALES = tuple(round(0.5 + 0.1 * i, 1) for i in range(12))


@lru_cache(maxsize=None)
def _lp_sweep_instance():
    from repro.netmodel.instances import make_te_instance

    return make_te_instance(
        LP_SWEEP_INSTANCE,
        max_commodities=LP_SWEEP_COMMODITIES,
        total_demand_fraction=TE_LOAD,
    )


def _lp_sweep(warm: bool) -> Dict[str, object]:
    """One pf4 scale sweep over :data:`LP_SWEEP_SCALES`; cold or warm."""
    from repro.te.demandscale import scale_sweep

    instance = _lp_sweep_instance()
    points = scale_sweep(
        instance.topology,
        instance.traffic,
        "pf4",
        scales=list(LP_SWEEP_SCALES),
        warm_start=warm,
    )
    return {
        "points": len(points),
        "objectives": [round(point.objective, 4) for point in points],
    }


def _prime_lp_sweep() -> None:
    """Untimed: build the instance and fill the tunnel cache, so both
    pair members time LP solves rather than k-shortest-paths."""
    _lp_sweep(warm=False)


@benchmark(
    "lp.warm_vs_cold.cold",
    layer="lp",
    description="pf4 scale sweep, every point solved cold",
    setup=_prime_lp_sweep,
    tags=("lp-session", "sweep"),
)
def bench_lp_sweep_cold() -> Dict[str, object]:
    """Cold half of the warm-vs-cold sweep pair."""
    return _lp_sweep(warm=False)


@benchmark(
    "lp.warm_vs_cold.warm",
    layer="lp",
    description="pf4 scale sweep, one warm LP session across all points",
    setup=_prime_lp_sweep,
    tags=("lp-session", "sweep"),
)
def bench_lp_sweep_warm() -> Dict[str, object]:
    """Warm half of the warm-vs-cold sweep pair."""
    return _lp_sweep(warm=True)


def _lp_solve_once(backend_name: str) -> Dict[str, object]:
    """One pf4 solve on a named LP backend (exact-vs-decomposed pair)."""
    from repro.lp import get_backend
    from repro.te.maxflow import solve_max_flow

    instance = _te_instance()
    solution = solve_max_flow(
        instance.topology, instance.traffic, backend=get_backend(backend_name)
    )
    return {
        "objective": round(solution.objective, 4),
        "status": solution.status,
    }


def _prime_lp_solve() -> None:
    _te_instance()
    _lp_solve_once("fast")   # fills the tunnel cache, untimed


@benchmark(
    "lp.decomposed_vs_exact.exact",
    layer="lp",
    description="pf4 solve on the exact fast backend (decomposed baseline)",
    setup=_prime_lp_solve,
    tags=("lp-decomposed", "solver"),
)
def bench_lp_exact() -> Dict[str, object]:
    """Exact half of the decomposed-vs-exact pair."""
    return _lp_solve_once("fast")


@benchmark(
    "lp.decomposed_vs_exact.decomposed",
    layer="lp",
    description="pf4 solve on the decomposed reduced-support backend",
    setup=_prime_lp_solve,
    tags=("lp-decomposed", "solver"),
)
def bench_lp_decomposed() -> Dict[str, object]:
    """Decomposed half of the decomposed-vs-exact pair."""
    return _lp_solve_once("decomposed")


def ncflow_scaling_rows(
    instances: Sequence[str],
    max_commodities: int = 300,
    total_demand_fraction: float = 0.1,
) -> List[Dict[str, float]]:
    """NCFlow vs exact optimum vs ablations over named instances.

    The workload behind ``benchmarks/test_bench_ncflow_scaling.py``:
    per instance, time the exact edge-formulation LP, the NCFlow
    decomposition, the random-partition ablation, and Fleischer's FPTAS.
    """
    from repro.netmodel.instances import make_te_instance
    from repro.te import solve_fleischer, solve_max_flow_edge
    from repro.te.ncflow import NCFlowSolver

    rows = []
    for name in instances:
        instance = make_te_instance(
            name,
            max_commodities=max_commodities,
            total_demand_fraction=total_demand_fraction,
        )
        start = time.perf_counter()
        exact = solve_max_flow_edge(instance.topology, instance.traffic)
        exact_seconds = time.perf_counter() - start
        start = time.perf_counter()
        ncflow = NCFlowSolver().solve(instance.topology, instance.traffic)
        ncflow_seconds = time.perf_counter() - start
        random_based = NCFlowSolver(partitioners=["random"]).solve(
            instance.topology, instance.traffic
        )
        start = time.perf_counter()
        fleischer = solve_fleischer(
            instance.topology, instance.traffic, epsilon=0.2
        )
        fleischer_seconds = time.perf_counter() - start
        rows.append(
            {
                "name": name,
                "nodes": instance.topology.num_nodes,
                "exact": exact.objective,
                "exact_seconds": exact_seconds,
                "ncflow": ncflow.objective,
                "ncflow_seconds": ncflow_seconds,
                "random": random_based.objective,
                "fleischer": fleischer.objective,
                "fleischer_seconds": fleischer_seconds,
            }
        )
    return rows


def demand_scale_series(
    scales: Sequence[float],
    instance_name: str = "Colt",
    max_commodities: int = 200,
    total_demand_fraction: float = 0.05,
):
    """The satisfied-fraction-vs-scale series TE papers plot.

    The workload behind ``benchmarks/test_bench_scale_sweep.py``:
    returns ``(max_feasible_scale, pf4 points, ncflow points)``.
    """
    from repro.netmodel.instances import make_te_instance
    from repro.te import max_feasible_scale, scale_sweep, solve_max_flow
    from repro.te.ncflow import NCFlowSolver

    instance = make_te_instance(
        instance_name,
        max_commodities=max_commodities,
        total_demand_fraction=total_demand_fraction,
    )
    feasible = max_feasible_scale(instance.topology, instance.traffic)
    pf4_points = scale_sweep(
        instance.topology,
        instance.traffic,
        lambda topo, tm: solve_max_flow(topo, tm),
        list(scales),
    )
    solver = NCFlowSolver()
    ncflow_points = scale_sweep(
        instance.topology,
        instance.traffic,
        lambda topo, tm: solver.solve(topo, tm),
        list(scales),
    )
    return feasible, pf4_points, ncflow_points


# ----------------------------------------------------------------------
# Store layer: the persistent tier, cold vs warm.  The pair quantifies
# what the disk store buys: ``cold`` pays Yen's algorithm plus the
# write-through; ``warm`` starts every iteration with an empty memory
# cache and a populated store, so it pays only the verified disk read.
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def _bench_store(variant: str):
    """A scratch :class:`repro.store.ArtifactStore` per workload variant.

    Lives under the system temp directory: bench runs must never write
    into (or read from) a store the user actually operates.
    """
    import tempfile

    from repro.store import ArtifactStore

    return ArtifactStore(
        tempfile.mkdtemp(prefix=f"repro-bench-store-{variant}-")
    )


def _store_tunnel_lookup(variant: str) -> Dict[str, object]:
    """One tunnel lookup through a fresh memory cache + the variant's store."""
    from repro.te.tunnelcache import TunnelCache

    instance = _te_instance()
    cache = TunnelCache(store=_bench_store(variant))
    tunnels = cache.lookup(instance.topology, instance.traffic, 4)
    return {"commodities": len(tunnels)}


@benchmark(
    "store.tunnels.cold", layer="store",
    description=f"tunnel lookup, empty store: Yen + write-through, {TE_INSTANCE}",
    pre_iteration=lambda: _bench_store("cold").clear(),
    tags=("store-cold",),
)
def bench_store_tunnels_cold() -> Dict[str, object]:
    """The store's write path: compute tunnels, persist them atomically."""
    return _store_tunnel_lookup("cold")


@benchmark(
    "store.tunnels.warm", layer="store",
    description=f"tunnel lookup, populated store: verified read, {TE_INSTANCE}",
    setup=lambda: _store_tunnel_lookup("warm"),
    tags=("store-warm",),
)
def bench_store_tunnels_warm() -> Dict[str, object]:
    """The store's read path: integrity-verified disk hit, no Yen."""
    return _store_tunnel_lookup("warm")


@benchmark(
    "store.put_get", layer="store",
    description="artifact put + verified get round-trip, 64-entry payload",
)
def bench_store_put_get() -> Dict[str, object]:
    """Raw store overhead: canonical encode, digest, write, verified read."""
    store = _bench_store("roundtrip")
    payload = [
        [f"n{i}", f"m{i}", [[f"n{i}", "via", f"m{i}"]]] for i in range(64)
    ]
    store.put("bench/roundtrip", payload)
    got = store.get("bench/roundtrip")
    return {"entries": len(got)}


# ----------------------------------------------------------------------
# Parallel layer
# ----------------------------------------------------------------------
_FANOUT_TASKS = 16
_FANOUT_WORK = 25_000


def _fanout(workers: int) -> Dict[str, object]:
    from repro.parallel import run_ordered

    def work() -> int:
        return sum(i * i for i in range(_FANOUT_WORK))

    results = run_ordered([work] * _FANOUT_TASKS, workers=workers)
    return {
        "tasks": _FANOUT_TASKS,
        "workers": workers,
        "checksum": sum(results) % 1_000_003,
    }


@benchmark(
    "parallel.fanout_serial", layer="parallel",
    description=f"run_ordered, {_FANOUT_TASKS} CPU tasks, workers=1",
)
def bench_parallel_fanout_serial() -> Dict[str, object]:
    """Serial baseline for the fan-out overhead comparison."""
    return _fanout(workers=1)


@benchmark(
    "parallel.fanout_threads", layer="parallel",
    description=f"run_ordered, {_FANOUT_TASKS} CPU tasks, workers=4",
)
def bench_parallel_fanout_threads() -> Dict[str, object]:
    """Thread fan-out of the identical task list (pool + ordering cost)."""
    return _fanout(workers=4)


# ----------------------------------------------------------------------
# Pipeline layer
# ----------------------------------------------------------------------
@benchmark(
    "pipeline.participant", layer="pipeline",
    description="simulated-LLM reproduction of APKeep (participant C), end to end",
)
def bench_pipeline_participant() -> Dict[str, object]:
    """One full pipeline run: prompts, debugging, assembly, validation."""
    from repro.experiments import run_participant

    report = run_participant("C")
    return {
        "succeeded": report.succeeded,
        "prompts": report.num_prompts,
    }


@benchmark(
    "pipeline.motivating", layer="pipeline",
    description="the rock-paper-scissors motivating example session",
)
def bench_pipeline_motivating() -> Dict[str, object]:
    """Replay the motivating example's four-prompt session."""
    from repro.motivating import run_motivating_session

    result = run_motivating_session()
    return {
        "prompts": result.num_prompts,
        "total_loc": result.total_loc,
    }


# ----------------------------------------------------------------------
# Obs layer (telemetry overhead guards)
# ----------------------------------------------------------------------
_OBS_OPS = 20_000


@benchmark(
    "obs.metrics_labeled", layer="obs",
    description=f"{_OBS_OPS} labeled counter incs + histogram observes "
                "on a private registry",
)
def bench_obs_metrics_labeled() -> Dict[str, object]:
    """Hot-path cost of the labeled metrics tier.

    A private registry (not the process-global one) so iterations do
    not accumulate state, exercising the decorated-name lookup, the
    family-total propagation, and the reservoir write.
    """
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    backends = ("fast-highs", "slow-pulp")
    for index in range(_OBS_OPS):
        backend = backends[index & 1]
        registry.counter("lp.solves", backend=backend).inc()
        registry.histogram("lp.solve_seconds", backend=backend).observe(
            (index % 97) / 1000.0
        )
    snap = registry.snapshot()
    return {
        "ops": _OBS_OPS * 2,
        "series": len(snap),
        "checksum": int(snap["lp.solves"]["value"]),
    }


@benchmark(
    "obs.span_disabled", layer="obs",
    description=f"{_OBS_OPS} spans with the NOOP tracer installed "
                "(disabled-telemetry overhead)",
)
def bench_obs_span_disabled() -> Dict[str, object]:
    """Overhead of instrumentation when nothing is collecting.

    This is the cost every un-instrumented run pays; the CI bench guard
    holds it to the regression gate so the telemetry tier stays free
    when off.
    """
    from repro import obs

    total = 0
    for index in range(_OBS_OPS):
        with obs.span("bench.noop", index=index):
            total += index
    return {"ops": _OBS_OPS, "checksum": total % 1_000_003}


# ----------------------------------------------------------------------
# fuzz: differential-gate throughput
# ----------------------------------------------------------------------
_FUZZ_CASES = 4


@benchmark(
    "fuzz.cases_per_second", layer="fuzz",
    description=f"{_FUZZ_CASES}-case sweep through the fast dataplane "
                "and TE-bounds oracles",
)
def bench_fuzz_cases_per_second() -> Dict[str, object]:
    """Throughput of the standing differential gate's hot loop.

    A fixed seed window through the cheap oracle subset (no
    minimization, no store) times exactly what a CI fuzz-smoke second
    buys; the oracle-run count is the checksum, so a silently skipped
    oracle fails the artifact comparison.
    """
    from repro.fuzz import run_fuzz

    report = run_fuzz(
        seed=7,
        cases=_FUZZ_CASES,
        oracle_filter=[
            "ap.vs-apkeep", "apkeep.incremental-vs-batch", "te.bounds",
        ],
        minimize=False,
    )
    if not report.ok:
        raise AssertionError("fuzz bench sweep found failures:\n"
                             + report.render())
    return {
        "cases": report.cases_run,
        "oracle_runs": report.oracle_runs,
        "checksum": report.oracle_runs,
    }


# ----------------------------------------------------------------------
# serve: service-tier throughput
# ----------------------------------------------------------------------
#: Jobs per timed pool iteration: enough to amortise dispatch overhead,
#: small enough that the catalogue still smoke-runs in seconds.
_SERVE_JOBS = 8


def _serve_job_specs():
    from repro.serve import JobSpec

    # CPU-bound spin probes with distinct seeds: no store/memo layer
    # can collapse the batch, and the GIL serializes the in-process
    # pool while spawn workers run truly parallel -- the property the
    # CI pair comparison asserts on a multi-core runner.
    return [
        JobSpec("probe", {"action": "spin"}, seed=index)
        for index in range(_SERVE_JOBS)
    ]


def _serve_batch_checksum(outcomes) -> str:
    import hashlib

    digest = hashlib.blake2b(digest_size=8)
    for outcome in outcomes:
        digest.update(outcome.payload["digest"].encode())
    return digest.hexdigest()


@benchmark(
    "serve.pool.inprocess", layer="serve",
    description=f"{_SERVE_JOBS}-job batch through the in-process pool",
    tags=("serve-pair",),
)
def bench_serve_pool_inprocess() -> Dict[str, object]:
    """Baseline of the CI speedup pair: thread-isolated execution.

    Ordered batch execution on the in-process (watchdog-thread) pool --
    no process boundary, no pickling.  Compared against
    ``serve.pool.multiprocess`` on a multi-core runner, this is the
    side the spawn pool must beat for CPU-bound job mixes.
    """
    from repro.serve import run_jobs

    outcomes = run_jobs(_serve_job_specs(), workers=2, mode="inprocess")
    if not all(outcome.ok for outcome in outcomes):
        raise AssertionError("serve bench batch had failures")
    return {"jobs": len(outcomes),
            "checksum": _serve_batch_checksum(outcomes)}


@benchmark(
    "serve.pool.multiprocess", layer="serve",
    description=f"{_SERVE_JOBS}-job batch through the spawn worker pool",
    setup=lambda: __import__("repro.serve", fromlist=["shared_pool"])
    .shared_pool(workers=2).start(),
    tags=("serve-pair",),
)
def bench_serve_pool_multiprocess() -> Dict[str, object]:
    """The other side of the pair: spawned worker processes.

    Uses the process-wide shared pool (started untimed in ``setup``) so
    iterations time job dispatch + execution + result transport, not
    interpreter start.  The same ordered batch as the in-process
    variant; artifact comparison holds the two checksums equal.
    """
    from repro.serve import run_jobs, shared_pool

    pool = shared_pool(workers=2)
    outcomes = run_jobs(_serve_job_specs(), pool=pool)
    if not all(outcome.ok for outcome in outcomes):
        raise AssertionError("serve bench batch had failures")
    return {"jobs": len(outcomes),
            "checksum": _serve_batch_checksum(outcomes)}


@benchmark(
    "serve.http.roundtrip", layer="serve",
    description="submit -> wait -> result over live HTTP, one probe job",
)
def bench_serve_http_roundtrip() -> Dict[str, object]:
    """Full client-observed service latency for one trivial job.

    One in-process daemon is kept on the function object across
    iterations (a daemon per iteration would time socket binding, not
    the service), so the timed body is exactly the client round trip
    the ``repro submit --wait`` flow performs.
    """
    from repro.serve import ReproDaemon, ServeClient

    daemon = getattr(bench_serve_http_roundtrip, "_daemon", None)
    if daemon is None:
        daemon = ReproDaemon(mode="inprocess", workers=1)
        daemon.start()
        bench_serve_http_roundtrip._daemon = daemon
    client = ServeClient(daemon.url)
    seed = getattr(bench_serve_http_roundtrip, "_seed", 0)
    bench_serve_http_roundtrip._seed = seed + 1
    record = client.submit("probe", {"action": "ok"}, seed=seed)
    final = client.wait(record["id"], timeout=30.0)
    if final["state"] != "completed":
        raise AssertionError(f"roundtrip job failed: {final}")
    payload = client.result(final["id"])["payload"]
    return {"jobs": 1, "checksum": int(payload["ok"])}


# ----------------------------------------------------------------------
# Shard layer: partitioned data-plane verification
# ----------------------------------------------------------------------
#: Reachability sources the shard verify pair answers for.
_SHARD_SOURCES = 4

#: Updates per streaming-burst iteration (insert/remove pairs, so the
#: data plane returns to its initial state after every iteration).
_SHARD_BURST = 24


@lru_cache(maxsize=None)
def _shard_bench_dataset():
    """The verify-pair input: a predicate-dense random data plane.

    Random overlapping rules (unlike shortest-path FIBs) make the
    atomic-predicate computation superlinear in predicate count, which
    is exactly the regime where partitioning pays: each shard refines
    only its own predicates, so sharded wins even before process
    parallelism kicks in.
    """
    from repro.netmodel.datasets import random_dataset

    return random_dataset(
        num_nodes=64, rules_per_device=300, seed=7, acl_fraction=0.25,
        name="bench-shard",
    )


def _shard_sources() -> List[str]:
    return sorted(_shard_bench_dataset().devices)[:_SHARD_SOURCES]


def _shard_doc_checksum(document) -> str:
    import hashlib
    import json

    return hashlib.blake2b(
        json.dumps(document, sort_keys=True).encode(), digest_size=8
    ).hexdigest()


@benchmark(
    "shard.verify.whole", layer="shard",
    description="unsharded APVerifier: build + reachability/blackhole "
                "documents, 64-device random data plane",
    tags=("shard-pair",),
)
def bench_shard_verify_whole() -> Dict[str, object]:
    """Baseline of the sharded-beats-whole pair: one engine, one thread.

    Times the full unsharded answer -- predicate extraction, atomic
    predicates, reachability for :data:`_SHARD_SOURCES` sources, and
    blackholes -- through the same canonical-interval export the
    sharded side stitches, so the pair's checksums must be equal.
    """
    from repro.shard import whole_reference_document

    dataset = _shard_bench_dataset()
    document = whole_reference_document(dataset, sources=_shard_sources())
    return {
        "rules": dataset.total_rules,
        "checksum": _shard_doc_checksum(document),
    }


@benchmark(
    "shard.verify.sharded", layer="shard",
    description="3-shard ShardVerifier through spawn workers, same "
                "documents as shard.verify.whole",
    setup=lambda: __import__("repro.serve", fromlist=["shared_pool"])
    .shared_pool(workers=2).start(),
    tags=("shard-pair",),
)
def bench_shard_verify_sharded() -> Dict[str, object]:
    """The other side of the pair: shard-local engines, spawn fan-out.

    Each worker builds one shard's artifact in its own BDD node table
    (the pool is started untimed in ``setup``); the parent stitches the
    interval artifacts.  On a multi-core runner this must beat
    ``shard.verify.whole`` -- the CI shard-smoke job asserts it -- and
    its checksum must equal the whole side's byte for byte.
    """
    from repro.serve import shared_pool
    from repro.shard import ShardVerifier

    dataset = _shard_bench_dataset()
    verifier = ShardVerifier(
        dataset, shards=3, mode="process", pool=shared_pool(workers=2)
    )
    document = verifier.comparison_document(_shard_sources())
    return {
        "rules": dataset.total_rules,
        "checksum": _shard_doc_checksum(document),
    }


@benchmark(
    "shard.stream.burst", layer="shard",
    description=f"{_SHARD_BURST}-update streaming burst, per-update "
                "re-verification latency (p95 in meta)",
)
def bench_shard_stream_burst() -> Dict[str, object]:
    """Bounded-latency incremental path: one rule-change burst.

    A :class:`repro.shard.StreamingVerifier` is kept on the function
    object (building per-shard APKeep state is setup, not the measured
    path); each iteration applies insert/remove pairs that cancel, so
    every burst starts from the identical data plane.  ``p95_ms`` is
    the per-update end-to-end re-verification latency the CI streaming
    check bounds.
    """
    from repro.netmodel.datasets import random_dataset
    from repro.netmodel.headerspace import HEADER_BITS, Prefix
    from repro.netmodel.rules import ForwardingRule
    from repro.shard import StreamingVerifier

    streamer = getattr(bench_shard_stream_burst, "_streamer", None)
    if streamer is None:
        dataset = random_dataset(
            num_nodes=10, rules_per_device=60, seed=11, acl_fraction=0.3,
            name="bench-stream",
        )
        streamer = StreamingVerifier(dataset, shards=2)
        bench_shard_stream_burst._streamer = streamer

    nodes = sorted(streamer.dataset.devices)
    burst = []
    for k in range(_SHARD_BURST // 2):
        node = nodes[k % len(nodes)]
        port = streamer.dataset.topology.successors(node)[0]
        prefix = Prefix((k << (HEADER_BITS - 8)) & 0xFF00, 8)
        rule = ForwardingRule(prefix, port, priority=90 + k)
        burst.append(("insert", node, rule))
        burst.append(("remove", node, rule))
    report = streamer.apply_burst(burst)
    return {
        "updates": report["burst"],
        "p95_ms": round(report["p95"] * 1e3, 3),
    }


@lru_cache(maxsize=None)
def _shard_large_dataset():
    from repro.netmodel.datasets import build_large_dataset

    return build_large_dataset("Airtel", target_rules=100_000)


def _shard_store_verify(variant: str) -> Dict[str, object]:
    """One 100k-rule ShardVerifier build against the variant's store."""
    from repro.shard import ShardVerifier

    dataset = _shard_large_dataset()
    verifier = ShardVerifier(
        dataset, shards=2, store=_bench_store(variant), mode="serial"
    )
    return {
        "rules": dataset.total_rules,
        "store_hits": verifier.store_hits,
        "atoms": sum(a["atoms"] for a in verifier.artifacts),
    }


@benchmark(
    "shard.build.cold", layer="shard",
    description="2-shard artifact build, empty store: full BDD work + "
                "write-through, 100k-rule large preset",
    pre_iteration=lambda: _bench_store("shard-cold").clear(),
    tags=("store-cold",),
    repeat=2,
)
def bench_shard_build_cold() -> Dict[str, object]:
    """The store's write path at scale: per-shard BDD builds persisted."""
    return _shard_store_verify("shard-cold")


@benchmark(
    "shard.build.warm", layer="shard",
    description="2-shard artifact load, populated store: no BDD engine "
                "touched, 100k-rule large preset",
    setup=lambda: _shard_store_verify("shard-warm"),
    tags=("store-warm",),
)
def bench_shard_build_warm() -> Dict[str, object]:
    """The read path the ``shard/1`` key family buys: a warm store turns
    re-verification into artifact decode + stitching."""
    return _shard_store_verify("shard-warm")
