"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the library's main flows so a downstream user can
explore the reproduction without writing code:

* ``experiment``   -- run participants A-D and print Figures 4-5;
* ``participant``  -- run one participant (optionally changing the
  prompting style) and print the component log;
* ``study``        -- print the Figure 1-2 statistics;
* ``verify``       -- verify a data plane with AP and APKeep, optionally
  injecting an anomaly first, padding FIBs (``--rules-per-device``),
  partitioning across shard-local BDD engines (``--shards N``), or
  replaying a rule-change burst through the streaming verifier
  (``--stream``);
* ``te``           -- solve a TE instance with any registry solver
  (``--solver list`` shows them), optionally sweeping demand scales
  in parallel (``--sweep`` / ``--workers``) with an injected LP
  backend (``--lp-backend``, including the reduced-core ``decomposed``
  tier) and warm-started sweep points (``--warm-start``);
* ``motivating``   -- replay the rock-paper-scissors example and play it;
* ``transcript``   -- run a participant session and dump the markdown
  conversation log;
* ``analyze``      -- comparative discrepancy analysis of a reproduced
  system against its reference prototype;
* ``paperdoc``     -- render a paper's structured document;
* ``trace-view``   -- render a ``--trace`` JSONL file as a span tree;
* ``bench``        -- run the performance benchmark harness
  (``--filter``/``--repeat``/``--save``/``--baseline``), list the
  workload catalogue (``--list``), or diff two saved artifacts
  (``--compare``) with regression gating; ``--baseline`` with no path
  (or ``--compare`` with one) auto-discovers the newest committed
  ``BENCH_*.json``;
* ``store``        -- inspect and maintain a persistent artifact store
  (``ls``/``stats``/``verify``/``gc``/``clear``);
* ``fuzz``         -- the standing differential-correctness gate:
  ``fuzz run`` sweeps seeded cases through the oracle registry
  (``--oracle list`` shows it) with per-case watchdog time-boxing and
  failure minimization, ``fuzz ls`` lists stored failure artifacts,
  and ``fuzz repro <key>`` (or ``--seed/--case/--oracle``) replays a
  failure live;
* ``obs``          -- live telemetry utilities (``obs serve`` runs the
  ``/metrics`` exposition endpoint standalone);
* ``profile-view`` -- top-N rollup of a ``--profile`` collapsed-stacks
  file;
* ``serve``        -- run the long-lived reproduction service: an HTTP
  daemon with an admission-controlled job queue fanning out to a
  multi-process worker pool (``--workers``/``--mode``/
  ``--queue-limit``/``--job-budget``); with ``--store DIR`` repeat
  submissions are answered from the artifact store at admission;
* ``submit``       -- submit one job (``campaign``/``solve``/
  ``verify``/``probe``) to a running service and optionally ``--wait``
  for its result;
* ``jobs``         -- list a running service's jobs, or show one job's
  record/result (``--result``) or the daemon ``--stats``;
* ``loadgen``      -- hammer a running service with N deterministic
  jobs at C-way client concurrency and report jobs/sec plus p50/p95/p99
  latency.

Every command accepts the global flags ``--trace FILE`` (record obs
spans; ``.json`` gets Chrome trace_event format, anything else JSON
lines), ``--metrics`` (print the metrics registry after the run),
``--serve-metrics PORT`` (serve live Prometheus ``/metrics`` + JSON
``/snapshot`` with campaign progress and ETA for the duration of the
command), and ``--profile OUT`` (sample thread stacks and write
flamegraph collapsed stacks to OUT),
plus the resilience flags ``--fault-plan SPEC`` (install a seeded
fault-injection plan for the duration of the command, e.g.
``--fault-plan rate=0.2,seed=7``), ``--retries N`` (max attempts for
the LLM retry policy in fail-soft runs) and ``--on-error
{raise,collect}`` (fan-out failure policy for sweeps and campaigns).

``--store DIR`` (also global) installs a persistent artifact store for
the duration of the command: tunnel-cache entries are written through
to disk (a second process starts warm), campaign runs are checkpointed
(``campaign --resume`` skips the completed ones), and the ``store``
subcommand manages the same directory.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _observability_flags() -> argparse.ArgumentParser:
    """Shared ``--trace`` / ``--metrics`` flags, valid before or after the
    subcommand.

    ``SUPPRESS`` keeps a flag given *before* the subcommand from being
    clobbered by the subparser's default when it is absent *after* it;
    read the values with ``getattr(args, ..., fallback)``.
    """
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--trace", metavar="FILE", default=argparse.SUPPRESS,
        help="record obs spans to FILE (.json = Chrome trace, else JSONL)",
    )
    common.add_argument(
        "--metrics", action="store_true", default=argparse.SUPPRESS,
        help="print the metrics registry after the command",
    )
    common.add_argument(
        "--fault-plan", metavar="SPEC", default=argparse.SUPPRESS,
        help="install a fault-injection plan for this command "
             "(e.g. 'rate=0.2,seed=7,sites=llm.chat+lp.solve')",
    )
    common.add_argument(
        "--retries", type=int, metavar="N", default=argparse.SUPPRESS,
        help="max attempts for the LLM retry policy (campaign runs)",
    )
    common.add_argument(
        "--on-error", choices=["raise", "collect"], default=argparse.SUPPRESS,
        help="fan-out failure policy for --sweep and campaign runs "
             "(collect = fail-soft with structured failure records)",
    )
    common.add_argument(
        "--store", metavar="DIR", default=argparse.SUPPRESS,
        help="persistent artifact store directory: tunnel-cache entries "
             "and campaign checkpoints survive the process",
    )
    common.add_argument(
        "--serve-metrics", type=int, metavar="PORT", default=argparse.SUPPRESS,
        help="serve live telemetry on PORT for the duration of the "
             "command (/metrics Prometheus text, /snapshot JSON with "
             "progress+ETA, /health); 0 picks a free port",
    )
    common.add_argument(
        "--profile", metavar="OUT", default=argparse.SUPPRESS,
        help="sample thread stacks during the command and write "
             "flamegraph collapsed stacks to OUT "
             "(view with 'repro profile-view OUT')",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    common = _observability_flags()
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Toward Reproducing Network Research Results "
            "Using Large Language Models' (HotNets 2023)."
        ),
        parents=[common],
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_parser(name, **kwargs):
        return subparsers.add_parser(name, parents=[common], **kwargs)

    add_parser("experiment", help="run participants A-D")

    campaign = add_parser(
        "campaign", help="batch-reproduce several papers"
    )
    campaign.add_argument(
        "papers", nargs="+",
        choices=["ncflow", "arrow", "apkeep", "ap", "rps"],
    )
    campaign.add_argument(
        "--styles", nargs="+",
        choices=["monolithic", "modular-text", "modular-pseudocode"],
        default=["modular-pseudocode"],
    )
    campaign.add_argument(
        "--workers", type=int, default=1,
        help="worker threads for the (paper, style) runs",
    )
    campaign.add_argument(
        "--resume", action="store_true",
        help="skip runs already checkpointed in the --store directory "
             "and execute only the missing ones",
    )

    participant = add_parser("participant", help="run one participant")
    participant.add_argument("name", choices=["A", "B", "C", "D"])
    participant.add_argument(
        "--style",
        choices=["monolithic", "modular-text", "modular-pseudocode"],
        default=None,
        help="override the prompting style",
    )

    add_parser("study", help="print the Figure 1-2 statistics")

    verify = add_parser("verify", help="verify a data plane")
    verify.add_argument("dataset", nargs="?", default="Internet2")
    verify.add_argument(
        "--inject", choices=["loop", "blackhole"], default=None
    )
    verify.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="partition the data plane into N shards and verify each "
             "with its own BDD engine, stitching the results "
             "(1 = classic whole-network path)",
    )
    verify.add_argument(
        "--stream", action="store_true",
        help="with --shards > 1: feed a deterministic rule-change burst "
             "through the streaming verifier and report per-update "
             "re-verification latency",
    )
    verify.add_argument(
        "--rules-per-device", type=int, default=None, metavar="N",
        help="pad every FIB to at least N rules (semantically inert "
             "route splitting; scales raw rule counts for shard runs)",
    )

    te = add_parser("te", help="solve a TE instance")
    te.add_argument("instance", nargs="?", default="Colt")
    te.add_argument(
        "--solver", default="ncflow", metavar="NAME",
        help="a repro.te.registry solver name, or 'list' to show them",
    )
    te.add_argument("--commodities", type=int, default=300)
    te.add_argument("--load", type=float, default=0.1,
                    help="total demand as a fraction of total capacity")
    te.add_argument(
        "--lp-backend",
        choices=["fast", "slow", "fallback", "decomposed"], default=None,
        help="inject an LP backend; 'fallback' chains fast then slow, "
             "'decomposed' solves a reduced core model and prices it to "
             "the full optimum (default: each solver's own default)",
    )
    te.add_argument(
        "--sweep", metavar="SCALES", default=None,
        help="comma-separated demand scales; runs a scale sweep after the "
             "base solve (e.g. --sweep 0.5,1.0,2.0)",
    )
    te.add_argument(
        "--workers", type=int, default=1,
        help="worker threads for --sweep points",
    )
    te.add_argument(
        "--warm-start", action="store_true",
        help="carry an LP solve session along each worker's chunk of "
             "--sweep points (warm-capable solvers only; see "
             "'--solver list' for the 'warm' capability tag)",
    )

    add_parser("motivating", help="replay the motivating example")

    transcript = add_parser(
        "transcript", help="dump a participant's conversation log"
    )
    transcript.add_argument("name", choices=["A", "B", "C", "D"])
    transcript.add_argument("--out", default=None, help="write to a file")
    transcript.add_argument(
        "--format", choices=["markdown", "json", "summary"], default="markdown"
    )

    analyze = add_parser(
        "analyze", help="discrepancy analysis vs the reference prototype"
    )
    analyze.add_argument("system", choices=["ncflow", "arrow", "apkeep", "ap"])

    paperdoc = add_parser(
        "paperdoc", help="render a paper's structured document"
    )
    paperdoc.add_argument(
        "key", choices=["ncflow", "arrow", "apkeep", "ap", "rps"]
    )
    paperdoc.add_argument(
        "--lint", action="store_true",
        help="flag missing details instead of rendering",
    )

    export = add_parser(
        "export", help="write every figure/experiment series as CSV"
    )
    export.add_argument("--out", default="results", help="output directory")

    diff = add_parser(
        "diff", help="differential verification between two snapshots"
    )
    diff.add_argument("dataset", nargs="?", default="Internet2")
    diff.add_argument(
        "--inject", choices=["loop", "blackhole"], default="blackhole",
        help="perturbation applied to the second snapshot",
    )

    trace_view = add_parser(
        "trace-view", help="render a recorded JSONL trace as a span tree"
    )
    trace_view.add_argument("file", help="JSONL file written by --trace")
    trace_view.add_argument(
        "--no-meta", action="store_true",
        help="hide span metadata (names and times only)",
    )
    trace_view.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="instead of the tree, show the N slowest span names "
             "(count / total / self / %% of wall time)",
    )

    obs_cmd = add_parser(
        "obs", help="live telemetry utilities"
    )
    obs_cmd.add_argument(
        "action", choices=["serve"],
        help="serve = run the /metrics exposition endpoint until "
             "--duration elapses (or Ctrl-C)",
    )
    obs_cmd.add_argument(
        "--port", type=int, default=9109, metavar="PORT",
        help="port to bind (default 9109; 0 picks a free port)",
    )
    obs_cmd.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="stop after SECONDS (default: serve until interrupted)",
    )

    profile_view = add_parser(
        "profile-view", help="summarise a collapsed-stacks profile"
    )
    profile_view.add_argument(
        "file", help="collapsed-stacks file written by --profile",
    )
    profile_view.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="number of frames to show (default 10)",
    )

    bench = add_parser(
        "bench", help="run the performance benchmark harness"
    )
    bench.add_argument(
        "--list", action="store_true", dest="list_benchmarks",
        help="list the workload catalogue and exit",
    )
    bench.add_argument(
        "--filter", metavar="EXPR", default=None,
        help="comma-separated needles matched against benchmark "
             "name/layer/tags (e.g. 'bdd', 'te-warm', 'pf4')",
    )
    bench.add_argument(
        "--repeat", type=int, default=None, metavar="N",
        help="timed iterations per benchmark (default: each spec's own)",
    )
    bench.add_argument(
        "--warmup", type=int, default=1, metavar="N",
        help="untimed warmup iterations per benchmark (default 1)",
    )
    bench.add_argument(
        "--save", nargs="?", const="", default=None, metavar="PATH",
        help="write a BENCH_<git-sha>.json artifact "
             "(PATH omitted = default name in the current directory)",
    )
    bench.add_argument(
        "--baseline", nargs="?", const="", metavar="ARTIFACT", default=None,
        help="after running, compare against a saved artifact and exit "
             "nonzero on regressions (no path: the newest BENCH_*.json "
             "in the current directory)",
    )
    bench.add_argument(
        "--compare", nargs="+", metavar="ARTIFACT", default=None,
        help="compare two saved artifacts without running anything "
             "(one path: it is CURRENT, the baseline is the newest "
             "BENCH_*.json in the current directory)",
    )
    bench.add_argument(
        "--threshold", type=float, default=1.5, metavar="RATIO",
        help="slowdown ratio that fails the gate (default 1.5)",
    )
    bench.add_argument(
        "--min-seconds", type=float, default=0.002, metavar="S",
        help="ignore benchmarks faster than this on both sides "
             "(default 0.002)",
    )
    bench.add_argument(
        "--stat", choices=["min", "median", "mean"], default="median",
        help="statistic the comparison ratio uses (default median)",
    )

    store = add_parser(
        "store", help="inspect and maintain a persistent artifact store"
    )
    store.add_argument(
        "action", choices=["ls", "stats", "verify", "gc", "clear"],
        help="ls = list entries, stats = counters and size, verify = "
             "integrity-check every entry, gc = evict LRU entries over "
             "the byte budget, clear = remove everything",
    )
    store.add_argument(
        "path", nargs="?", default=None,
        help="store directory (defaults to the global --store flag)",
    )
    store.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="byte budget for gc (default 256 MiB)",
    )
    store.add_argument(
        "--repair", action="store_true",
        help="with verify: delete the entries that fail the check",
    )

    fuzz = add_parser(
        "fuzz", help="differential fuzzing: the standing correctness gate"
    )
    fuzz.add_argument(
        "action", choices=["run", "ls", "repro"],
        help="run = time-boxed oracle sweep, ls = list stored failure "
             "artifacts, repro = replay one failure (by stored key, or "
             "by --seed/--case/--oracle without a store)",
    )
    fuzz.add_argument(
        "key", nargs="?", default=None,
        help="artifact key for 'repro' (as printed by 'fuzz ls')",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0,
        help="schedule seed: every case replays from (seed, index) "
             "(default 0)",
    )
    fuzz.add_argument(
        "--cases", type=int, default=None, metavar="N",
        help="fixed case window (default: 20 unless --budget-seconds "
             "bounds the sweep)",
    )
    fuzz.add_argument(
        "--budget-seconds", type=float, default=None, metavar="S",
        help="time-box the sweep: stop scheduling new batches after S "
             "seconds",
    )
    fuzz.add_argument(
        "--oracle", default=None, metavar="NAMES",
        help="comma-separated oracle names to run, or 'list' to show "
             "the registry (default: every registered oracle)",
    )
    fuzz.add_argument(
        "--workers", type=int, default=1,
        help="worker threads for the (oracle, case) fan-out",
    )
    fuzz.add_argument(
        "--case-timeout", type=float, default=None, metavar="S",
        help="per-case watchdog timeout in seconds (default 30; "
             "0 disables)",
    )
    fuzz.add_argument(
        "--case", type=int, default=None, dest="case_index", metavar="I",
        help="with 'repro' and no key: the case index to regenerate",
    )
    fuzz.add_argument(
        "--no-minimize", action="store_true",
        help="skip failure minimization after the sweep",
    )
    fuzz.add_argument(
        "--plant-defect", action="store_true",
        help="register the planted lying-warm-backend oracle before the "
             "sweep (self-test: the gate must catch it)",
    )

    serve = add_parser(
        "serve", help="run the long-lived reproduction service"
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8642, metavar="PORT",
        help="port to bind (default 8642; 0 picks a free port)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker pool size (default 2)",
    )
    serve.add_argument(
        "--mode", choices=["process", "inprocess"], default="process",
        help="worker isolation: 'process' = spawned worker processes "
             "(a crashed job cannot take the daemon down), 'inprocess' "
             "= watchdog threads (fast start, shared interpreter)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="admission control: reject submissions once N jobs are "
             "queued (HTTP 429; default 64)",
    )
    serve.add_argument(
        "--job-budget", type=float, default=None, metavar="S",
        help="default per-job wall-clock budget in seconds, applied to "
             "jobs submitted without one (over-budget jobs are killed)",
    )
    serve.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="stop after SECONDS (default: serve until SIGTERM/Ctrl-C)",
    )

    submit = add_parser(
        "submit", help="submit a job to a running service"
    )
    submit.add_argument(
        "kind", choices=["campaign", "solve", "verify", "probe"],
        help="job kind",
    )
    submit.add_argument(
        "--url", default="http://127.0.0.1:8642", metavar="URL",
        help="service base URL (default http://127.0.0.1:8642)",
    )
    submit.add_argument(
        "--param", action="append", default=[], metavar="K=V",
        dest="params",
        help="job parameter (repeatable); V is parsed as JSON when "
             "possible, and comma-splits into a list otherwise "
             "(e.g. --param papers=rps,apkeep --param commodities=30)",
    )
    submit.add_argument(
        "--seed", type=int, default=0,
        help="job seed (part of the store key; default 0)",
    )
    submit.add_argument(
        "--budget-seconds", type=float, default=None, metavar="S",
        help="per-job wall-clock budget (overrides the daemon default)",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job is terminal and print its result",
    )
    submit.add_argument(
        "--timeout", type=float, default=300.0, metavar="S",
        help="how long --wait polls before giving up (default 300)",
    )

    jobs_cmd = add_parser(
        "jobs", help="list jobs on a running service"
    )
    jobs_cmd.add_argument(
        "job_id", nargs="?", type=int, default=None,
        help="show one job's record instead of the listing",
    )
    jobs_cmd.add_argument(
        "--url", default="http://127.0.0.1:8642", metavar="URL",
        help="service base URL (default http://127.0.0.1:8642)",
    )
    jobs_cmd.add_argument(
        "--result", action="store_true",
        help="with a job id: fetch the completed job's payload",
    )
    jobs_cmd.add_argument(
        "--stats", action="store_true",
        help="print the daemon's /stats document instead of the listing",
    )

    loadgen = add_parser(
        "loadgen", help="throughput/latency load run against a service"
    )
    loadgen.add_argument(
        "--url", default="http://127.0.0.1:8642", metavar="URL",
        help="service base URL (default http://127.0.0.1:8642)",
    )
    loadgen.add_argument(
        "--jobs", type=int, default=50, metavar="N",
        help="jobs to submit (default 50)",
    )
    loadgen.add_argument(
        "--concurrency", type=int, default=8, metavar="C",
        help="client submission threads (default 8)",
    )
    loadgen.add_argument(
        "--kind", default="mix",
        choices=["mix", "probe", "solve", "verify", "campaign"],
        help="workload shape (default 'mix': solve/verify/probe cycle "
             "with deliberate repeats, the store-hit workload)",
    )
    loadgen.add_argument(
        "--seed", type=int, default=0,
        help="base seed for the deterministic job specs (default 0)",
    )
    loadgen.add_argument(
        "--timeout", type=float, default=120.0, metavar="S",
        help="per-job submit-to-terminal deadline (default 120)",
    )
    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def cmd_experiment(args, out) -> int:
    from repro.experiments import figure4_rows, figure5_rows, run_experiment

    result = run_experiment()
    out.write("Figure 4 (prompts / words):\n")
    for participant, system, prompts, words in figure4_rows(result):
        out.write(f"  {participant} {system:<8} {prompts:>4} {words:>6}\n")
    out.write("Figure 5 (LoC reproduced / reference):\n")
    for participant, system, reproduced, reference, ratio in figure5_rows(result):
        out.write(
            f"  {participant} {system:<8} {reproduced:>5} / {reference:>5} "
            f"({ratio * 100:.0f}%)\n"
        )
    out.write(f"all succeeded: {result.all_succeeded}\n")
    return 0 if result.all_succeeded else 1


def cmd_campaign(args, out) -> int:
    from repro import store as store_mod
    from repro.core.prompts import PromptStyle
    from repro.experiments import run_campaign
    from repro.resilience import RetryPolicy

    default_store = store_mod.get_default()
    if args.resume and default_store is None:
        out.write("error: --resume needs a --store DIR to resume from\n")
        return 2
    checkpoint = (
        store_mod.CampaignCheckpoint(default_store)
        if default_store is not None else None
    )
    retries = getattr(args, "retries", None)
    result = run_campaign(
        args.papers,
        styles=[PromptStyle(style) for style in args.styles],
        workers=args.workers,
        on_error=getattr(args, "on_error", "collect"),
        retry=RetryPolicy(max_attempts=retries) if retries else None,
        checkpoint=checkpoint,
        resume=args.resume,
    )
    out.write(result.render() + "\n")
    return 0 if result.num_succeeded == result.num_runs else 1


def cmd_participant(args, out) -> int:
    from repro.core.prompts import PromptStyle
    from repro.experiments import run_participant

    style = PromptStyle(args.style) if args.style else None
    report = run_participant(args.name, style=style)
    out.write(report.summary_row() + "\n")
    for outcome in report.components:
        out.write(
            f"  {outcome.name:<16} revisions={outcome.revisions} "
            f"debug={outcome.debug_rounds} loc={outcome.final_loc} "
            f"{'ok' if outcome.passed else 'FAILED'}\n"
        )
    for key, value in sorted(report.validation_details.items()):
        out.write(f"  {key} = {value}\n")
    return 0 if report.succeeded else 1


def cmd_study(args, out) -> int:
    from repro.study import build_corpus, comparison_stats, opensource_stats

    corpus = build_corpus()
    open_stats = opensource_stats(corpus)
    comp_stats = comparison_stats(corpus)
    out.write(f"papers: {len(corpus)}\n")
    out.write(
        f"open source: SIGCOMM {open_stats.venue_fraction('SIGCOMM') * 100:.1f}%  "
        f"NSDI {open_stats.venue_fraction('NSDI') * 100:.1f}%  "
        f"combined {open_stats.combined_fraction * 100:.1f}%\n"
    )
    out.write(
        f"compare >=2: {comp_stats.frac_compared_ge2 * 100:.2f}%  "
        f"manual mean|>=1: {comp_stats.mean_manual_given_any:.2f}  "
        f"manual >=1: {comp_stats.frac_manual_ge1 * 100:.2f}%  "
        f"manual >=2: {comp_stats.frac_manual_ge2 * 100:.2f}%\n"
    )
    return 0


def cmd_verify(args, out) -> int:
    from repro.ap import APVerifier
    from repro.apkeep import APKeepVerifier
    from repro.netmodel.datasets import (
        build_verification_dataset,
        inject_blackhole,
        inject_loop,
    )

    dataset = build_verification_dataset(
        args.dataset, rules_per_device=args.rules_per_device
    )
    note = ""
    if args.inject == "loop":
        dataset, where = inject_loop(dataset, seed=3)
        note = f" (loop injected at {where})"
    elif args.inject == "blackhole":
        dataset, where = inject_blackhole(dataset, seed=3)
        note = f" (blackhole injected at {where})"
    out.write(
        f"{dataset.name}{note}: {dataset.topology.num_nodes} devices, "
        f"{dataset.total_rules} rules\n"
    )
    if args.shards > 1:
        return _cmd_verify_sharded(args, out, dataset)
    ap = APVerifier(dataset)
    apkeep = APKeepVerifier(dataset)
    loops = ap.find_loops()
    blackholes = ap.find_blackholes(scope=ap.allocated_atoms())
    out.write(
        f"AP: {ap.num_atoms} atoms in {ap.predicate_seconds:.3f}s; "
        f"loops={len(loops)} blackholes={len(blackholes)}\n"
    )
    out.write(
        f"APKeep: {apkeep.num_atoms_minimal} atoms (minimal) in "
        f"{apkeep.build_seconds:.3f}s over {len(apkeep.updates)} updates; "
        f"agrees with AP: {apkeep.num_atoms_minimal == ap.num_atoms}\n"
    )
    for atom, cycle in [(r.atom, r.cycle) for r in loops][:5]:
        out.write(f"  loop: atom {atom} via {' -> '.join(cycle)}\n")
    for report in blackholes[:5]:
        out.write(f"  blackhole: {report.device} atoms {sorted(report.atoms)}\n")
    return 0


def _cmd_verify_sharded(args, out, dataset) -> int:
    """The ``repro verify --shards N [--stream]`` path."""
    from repro.netmodel.headerspace import HEADER_BITS, Prefix
    from repro.netmodel.rules import ForwardingRule
    from repro.shard import ShardVerifier, StreamingVerifier
    from repro.store import get_default

    verifier = ShardVerifier(
        dataset, shards=args.shards, mode="serial", store=get_default()
    )
    plan = verifier.plan
    out.write(
        f"shards: {plan.num_shards} ({plan.strategy}); "
        f"{len(plan.boundary)} of {len(plan.links)} directed links "
        f"cross shards ({plan.boundary_fraction * 100:.0f}%)\n"
    )
    for index, artifact in enumerate(verifier.artifacts):
        engine = artifact["engine"]
        out.write(
            f"  shard {index}: {len(artifact['devices'])} devices, "
            f"{artifact['atoms']} atoms, {engine['num_nodes']} BDD nodes, "
            f"built in {artifact['build_seconds']:.3f}s\n"
        )
    blackholes = verifier.blackholes()
    out.write(
        f"stitched: blackholes at {len(blackholes)} devices; "
        f"build {verifier.build_seconds:.3f}s, "
        f"store hits {verifier.store_hits}\n"
    )
    if not args.stream:
        return 0

    streamer = StreamingVerifier(dataset, shards=args.shards)
    nodes = sorted(dataset.devices)
    burst = []
    for k in range(10):
        node = nodes[k % len(nodes)]
        neighbors = dataset.topology.successors(node)
        if not neighbors:
            continue
        rule = ForwardingRule(
            Prefix((k << (HEADER_BITS - 8)) & 0xFF00, 8),
            neighbors[0], priority=90 + k,
        )
        burst.append(("insert", node, rule))
        burst.append(("remove", node, rule))
    report = streamer.apply_burst(burst)
    out.write(
        f"stream: {report['burst']} updates, latency p50 "
        f"{report['p50'] * 1e3:.2f}ms p95 {report['p95'] * 1e3:.2f}ms "
        f"max {report['max'] * 1e3:.2f}ms\n"
    )
    return 0


def cmd_te(args, out) -> int:
    from repro.netmodel.instances import make_te_instance
    from repro.te import registry
    from repro.te.demandscale import scale_sweep

    if args.solver == "list":
        out.write(registry.render_table() + "\n")
        return 0
    try:
        solver = registry.make_solver(args.solver, backend=args.lp_backend)
    except registry.UnknownSolverError as exc:
        out.write(f"error: {exc}\n")
        return 2
    instance = make_te_instance(
        args.instance,
        max_commodities=args.commodities,
        total_demand_fraction=args.load,
    )
    solution = solver.solve(instance.topology, instance.traffic)
    out.write(
        f"{args.instance} ({instance.topology.num_nodes} nodes, "
        f"{instance.num_commodities} commodities, "
        f"{instance.traffic.total_demand:.0f} Mbps demand)\n"
    )
    if solver.capabilities.objective == "min-mlu":
        out.write(
            f"{solution.solver}: MLU {solution.objective:.3f} "
            f"in {solution.solve_seconds:.2f}s "
            f"[{solution.lp_count} LPs, status {solution.status}]\n"
        )
    else:
        out.write(
            f"{solution.solver}: {solution.objective:.1f} Mbps "
            f"({solution.satisfied_fraction(instance.traffic.total_demand) * 100:.1f}% "
            f"of demand) in {solution.solve_seconds:.2f}s "
            f"[{solution.lp_count} LPs, status {solution.status}]\n"
        )
    if args.sweep:
        from repro.parallel import TaskFailure

        scales = [float(part) for part in args.sweep.split(",") if part.strip()]
        # Warm sweeps re-resolve the solver by name per worker chunk
        # so each chunk carries its own LP session.
        sweep_solver = args.solver if args.warm_start else solver
        points = scale_sweep(
            instance.topology, instance.traffic, sweep_solver, scales,
            workers=args.workers,
            backend=args.lp_backend if args.warm_start else None,
            on_error=getattr(args, "on_error", "raise"),
            warm_start=args.warm_start,
        )
        for scale, point in zip(scales, points):
            if isinstance(point, TaskFailure):
                out.write(
                    f"  scale {scale:g}: FAILED {point.error}: {point.message}\n"
                )
                continue
            out.write(
                f"  scale {point.scale:g}: objective {point.objective:.1f} "
                f"({point.satisfied_fraction * 100:.1f}% of "
                f"{point.total_demand:.0f} Mbps)\n"
            )
    return 0 if solution.ok else 1


def cmd_motivating(args, out) -> int:
    from repro.core.assembly import assemble_module
    from repro.motivating import play_scripted_game, run_motivating_session

    result = run_motivating_session()
    out.write(
        f"{result.num_prompts} prompts, {result.total_words} words, "
        f"{result.total_loc} LoC (paper: 4 / 159 / 93)\n"
    )
    module = assemble_module(result.artifacts, "rps_cli")
    import contextlib
    import io

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        outcome = play_scripted_game(module)
    out.write(f"game verdicts: {outcome.results} (consistent: {outcome.consistent})\n")
    return 0


def cmd_transcript(args, out) -> int:
    from repro.core import transcript as transcript_mod
    from repro.core.knowledge import get_knowledge
    from repro.core.simulated import SimulatedLLM
    from repro.experiments import PARTICIPANTS, run_participant

    profile = PARTICIPANTS[args.name]
    llm = SimulatedLLM({profile.paper_key: get_knowledge(profile.paper_key)})
    # Re-run the session through the shared LLM so we hold its session.
    from repro.core.knowledge import (
        get_component_tests,
        get_logic_notes,
        get_paper_spec,
    )
    from repro.core.pipeline import PipelineConfig, ReproductionPipeline
    from repro.core.validation import get_validator

    pipeline = ReproductionPipeline(
        llm,
        get_paper_spec(profile.paper_key),
        component_tests=get_component_tests(profile.paper_key),
        logic_notes=get_logic_notes(profile.paper_key),
        validator=get_validator(profile.paper_key),
        participant=args.name,
        config=PipelineConfig(style=profile.style),
    )
    pipeline.run()
    if args.format == "markdown":
        text = transcript_mod.to_markdown(pipeline.session)
    elif args.format == "json":
        text = transcript_mod.to_json(pipeline.session)
    else:
        text = transcript_mod.summarize(pipeline.session)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        out.write(f"wrote {args.out}\n")
    else:
        out.write(text + "\n")
    return 0


def cmd_analyze(args, out) -> int:
    from repro.core.discrepancy import analyze
    from repro.core.knowledge import get_knowledge, get_paper_spec
    from repro.core.assembly import assemble_module
    from repro.core.llm import CodeArtifact

    knowledge = get_knowledge(args.system)
    artifacts = [
        CodeArtifact(c.name, "python", knowledge.components[c.name].final_source, 9)
        for c in get_paper_spec(args.system).components
    ]
    module = assemble_module(artifacts, f"analyzed_{args.system}")
    report = analyze(args.system, module)
    out.write(report.render() + "\n")
    return 0


def cmd_paperdoc(args, out) -> int:
    from repro.core.knowledge import get_paper_spec
    from repro.core.paperdoc import lint_spec, render_paperdoc

    spec = get_paper_spec(args.key)
    if args.lint:
        warnings = lint_spec(spec)
        if not warnings:
            out.write("no missing details flagged\n")
        for warning in warnings:
            out.write(f"warning: {warning}\n")
        return 0
    out.write(render_paperdoc(spec))
    return 0


def cmd_export(args, out) -> int:
    from repro.reporting import export_all

    files = export_all(args.out)
    out.write(f"wrote {len(files)} files to {args.out}/:\n")
    for name in files:
        out.write(f"  {name}\n")
    return 0


def cmd_diff(args, out) -> int:
    from repro.ap.diff import diff_snapshots
    from repro.netmodel.datasets import (
        build_verification_dataset,
        inject_blackhole,
        inject_loop,
    )

    before = build_verification_dataset(args.dataset)
    if args.inject == "loop":
        after, where = inject_loop(before, seed=3)
    else:
        after, where = inject_blackhole(before, seed=3)
    after.name = f"{before.name}+{args.inject}"
    report = diff_snapshots(before, after)
    out.write(f"perturbation at {where}\n")
    out.write(report.render() + "\n")
    return 0


def cmd_trace_view(args, out) -> int:
    from repro.obs import export

    try:
        spans, metrics, events = export.read_trace(args.file)
    except OSError as exc:
        out.write(f"error: cannot read {args.file}: {exc.strerror}\n")
        return 1
    except ValueError as exc:
        out.write(f"error: {exc}\n")
        return 1
    if args.top is not None:
        out.write(export.render_top_spans(spans, top=args.top) + "\n")
    else:
        out.write(export.render_span_tree(spans, limit_meta=args.no_meta) + "\n")
    if events:
        out.write(export.render_events(events) + "\n")
    if metrics:
        out.write(export.render_metrics(metrics) + "\n")
        resilience = {
            name: snap.get("value", 0)
            for name, snap in sorted(metrics.items())
            if name.startswith((
                "retries", "llm.retries", "llm.giveups", "breaker.open",
                "faults.injected", "lp.fallback", "parallel.task_failures",
                "pipeline.llm_failures",
            ))
        }
        if resilience:
            out.write(
                "resilience: "
                + " ".join(f"{k}={v:g}" for k, v in resilience.items())
                + "\n"
            )
    return 0


def cmd_bench(args, out) -> int:
    from repro import bench

    thresholds = bench.Thresholds(
        ratio=args.threshold, min_seconds=args.min_seconds, stat=args.stat
    )

    def gate(baseline, current) -> int:
        report = bench.compare_artifacts(baseline, current, thresholds)
        out.write(report.render() + "\n")
        return 0 if report.ok else 1

    if args.compare:
        if len(args.compare) > 2:
            out.write("error: --compare takes at most two artifacts\n")
            return 2
        try:
            if len(args.compare) == 1:
                baseline_path = bench.find_latest_artifact()
                out.write(f"baseline: {baseline_path}\n")
                current_path = args.compare[0]
            else:
                baseline_path, current_path = args.compare
            baseline = bench.read_artifact(baseline_path)
            current = bench.read_artifact(current_path)
        except (OSError, bench.ArtifactError) as exc:
            out.write(f"error: {exc}\n")
            return 2
        return gate(baseline, current)

    bench.discover()
    specs = bench.select(args.filter)
    if args.list_benchmarks:
        out.write(bench.render_table(specs) + "\n")
        return 0
    if not specs:
        out.write(
            f"error: no benchmarks match {args.filter!r} "
            f"(try 'repro bench --list')\n"
        )
        return 2
    results = bench.run_benchmarks(
        specs, repeat=args.repeat, warmup=args.warmup
    )
    out.write(bench.render_results(results) + "\n")
    profile = {
        "repeat": args.repeat,
        "warmup": args.warmup,
        "filter": args.filter,
    }
    if args.save is not None:
        path = args.save or bench.default_artifact_path()
        written = bench.write_artifact(path, results, profile=profile)
        out.write(f"artifact: wrote {len(results)} benchmarks to {written}\n")
    if args.baseline is not None:
        try:
            baseline_path = args.baseline or bench.find_latest_artifact()
            if not args.baseline:
                out.write(f"baseline: {baseline_path}\n")
            baseline = bench.read_artifact(baseline_path)
        except (OSError, bench.ArtifactError) as exc:
            out.write(f"error: {exc}\n")
            return 2
        current = bench.build_artifact(results, profile=profile)
        return gate(baseline, current)
    return 0


def cmd_obs(args, out) -> int:
    import time

    from repro import obs

    try:
        server = obs.MetricsServer(port=args.port).start()
    except OSError as exc:
        out.write(f"error: cannot bind port {args.port}: {exc}\n")
        return 2
    # The server's own port, as self-telemetry: makes a bare registry
    # scrape nonempty so 'curl /metrics | grep obs_server' has a line.
    obs.metrics.gauge("obs.server.port").set(server.port)
    out.write(
        f"serving {server.url}/metrics "
        f"(also /snapshot, /health); "
        + (f"stopping after {args.duration:g}s\n" if args.duration is not None
           else "Ctrl-C to stop\n")
    )
    if hasattr(out, "flush"):
        out.flush()
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    out.write("stopped\n")
    return 0


def cmd_profile_view(args, out) -> int:
    from repro.obs import profile

    try:
        counts = profile.read_collapsed(args.file)
    except OSError as exc:
        out.write(f"error: cannot read {args.file}: {exc.strerror}\n")
        return 1
    except ValueError as exc:
        out.write(f"error: {exc}\n")
        return 1
    out.write(profile.render_top(counts, top=args.top) + "\n")
    return 0


def cmd_store(args, out) -> int:
    import datetime

    from repro import store as store_mod

    if args.path is not None:
        target = store_mod.ArtifactStore(args.path)
    else:
        target = store_mod.get_default()
    if target is None:
        out.write(
            "error: no store directory; pass one as an argument "
            "(repro store stats .repro-store) or via --store DIR\n"
        )
        return 2
    if args.action == "ls":
        entries = target.entries()
        if not entries:
            out.write(f"{target.root}: empty\n")
            return 0
        out.write(f"{'key':<58} {'bytes':>8}  last used\n")
        for entry in entries:
            when = datetime.datetime.fromtimestamp(
                entry.last_used_unix
            ).strftime("%Y-%m-%d %H:%M:%S")
            out.write(f"{entry.key:<58} {entry.size_bytes:>8}  {when}\n")
        out.write(f"{len(entries)} entries, {target.total_bytes} bytes\n")
        return 0
    if args.action == "stats":
        for name, value in sorted(target.stats().items()):
            out.write(f"{name:<12} {value}\n")
        return 0
    if args.action == "verify":
        bad = target.verify(repair=args.repair)
        if not bad:
            out.write(f"{target.root}: all entries verify\n")
            return 0
        for name in bad:
            out.write(
                f"corrupt: {name}{' (removed)' if args.repair else ''}\n"
            )
        out.write(
            f"{len(bad)} corrupt entr{'y' if len(bad) == 1 else 'ies'}"
            f"{'' if args.repair else ' (re-run with --repair to remove)'}\n"
        )
        return 1
    if args.action == "gc":
        from repro.store import DEFAULT_GC_BYTES

        budget = args.max_bytes if args.max_bytes is not None else DEFAULT_GC_BYTES
        evicted = target.gc(budget)
        out.write(
            f"evicted {len(evicted)} entries; "
            f"{target.total_bytes} bytes in {budget} budget\n"
        )
        return 0
    removed = target.clear()
    out.write(f"removed {removed} entries from {target.root}\n")
    return 0


def cmd_fuzz(args, out) -> int:
    from repro import fuzz
    from repro import store as store_mod

    target = store_mod.get_default()
    if args.action == "ls":
        if target is None:
            out.write("error: 'fuzz ls' needs a --store DIR to list\n")
            return 2
        entries = fuzz.list_failures(target)
        if not entries:
            out.write(f"{target.root}: no fuzz artifacts\n")
            return 0
        for key, payload in entries:
            out.write(
                f"{key}  [{payload['failure']}] {payload['error']}: "
                f"{payload['message']}\n"
            )
        out.write(f"{len(entries)} fuzz artifacts\n")
        return 0

    if args.action == "repro":
        timeout = (
            args.case_timeout if args.case_timeout is not None
            else fuzz.runner.DEFAULT_CASE_TIMEOUT
        )
        try:
            if args.key is not None:
                if target is None:
                    out.write(
                        "error: replaying a stored key needs --store DIR\n"
                    )
                    return 2
                outcome = fuzz.reproduce(target, args.key,
                                         case_timeout=timeout)
            elif args.case_index is not None and args.oracle:
                outcome = fuzz.reproduce_live(
                    args.seed, args.case_index, args.oracle,
                    case_timeout=timeout,
                )
            else:
                out.write(
                    "error: 'fuzz repro' needs a stored key, or "
                    "--seed/--case/--oracle for a live replay\n"
                )
                return 2
        except KeyError as exc:
            out.write(f"error: {exc.args[0]}\n")
            return 2
        except fuzz.UnknownOracleError as exc:
            out.write(f"error: {exc.args[0]}\n")
            return 2
        out.write(
            f"{'reproduced' if outcome.reproduced else 'NOT reproduced'} "
            f"[{outcome.failure}] {outcome.message}\n"
        )
        return 0 if outcome.reproduced else 1

    # action == "run"
    if args.oracle == "list":
        out.write(fuzz.render_table() + "\n")
        return 0
    if args.plant_defect:
        fuzz.register_planted_defect(replace=True)
    oracle_filter = None
    if args.oracle:
        names = [part.strip() for part in args.oracle.split(",")
                 if part.strip()]
        try:
            oracle_filter = [fuzz.get_spec(name) for name in names]
        except fuzz.UnknownOracleError as exc:
            out.write(f"error: {exc.args[0]}\n")
            return 2
    timeout = (
        args.case_timeout if args.case_timeout is not None
        else fuzz.runner.DEFAULT_CASE_TIMEOUT
    )
    report = fuzz.run_fuzz(
        seed=args.seed,
        cases=args.cases,
        budget_seconds=args.budget_seconds,
        oracle_filter=oracle_filter,
        workers=args.workers,
        case_timeout=timeout if timeout > 0 else None,
        minimize=not args.no_minimize,
        store=target,
    )
    out.write(report.render() + "\n")
    return 0 if report.ok else 1


def cmd_serve(args, out) -> int:
    import signal
    import time

    from repro import store as store_mod
    from repro.serve import ReproDaemon

    daemon = ReproDaemon(
        host=args.host,
        port=args.port,
        workers=args.workers,
        mode=args.mode,
        queue_limit=args.queue_limit,
        default_budget=args.job_budget,
        store=store_mod.get_default(),
    )
    try:
        daemon.start()
    except OSError as exc:
        out.write(f"error: cannot bind {args.host}:{args.port}: {exc}\n")
        return 2
    try:
        # SIGTERM triggers the same clean stop as POST /shutdown; the
        # handler is optional (main-thread only) so tests can call
        # cmd_serve from worker threads.
        signal.signal(
            signal.SIGTERM,
            lambda signum, frame: daemon.request_shutdown(),
        )
    except ValueError:
        pass
    store = store_mod.get_default()
    out.write(
        f"serving {daemon.url} ({args.mode}, {args.workers} workers, "
        f"queue limit {args.queue_limit}"
        + (f", store {store.root}" if store is not None else "")
        + ")\n"
        + (f"stopping after {args.duration:g}s\n" if args.duration is not None
           else "Ctrl-C (or SIGTERM, or POST /shutdown) to stop\n")
    )
    if hasattr(out, "flush"):
        out.flush()
    deadline = (
        time.monotonic() + args.duration if args.duration is not None
        else None
    )
    try:
        while not daemon.shutdown_requested.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                break
            daemon.shutdown_requested.wait(timeout=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        daemon.stop()
    out.write("stopped\n")
    return 0


def _parse_job_params(pairs):
    """``--param K=V`` pairs to a params dict.

    Values parse as JSON when possible (numbers, booleans, quoted
    strings, ``[...]`` lists); otherwise a comma-separated value
    becomes a list of strings and anything else stays a string.
    """
    import json as json_mod

    params = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"--param needs K=V, got {pair!r}")
        try:
            value = json_mod.loads(raw)
        except ValueError:
            value = (
                [part.strip() for part in raw.split(",") if part.strip()]
                if "," in raw else raw
            )
        params[key] = value
    return params


def cmd_submit(args, out) -> int:
    import json as json_mod
    import urllib.error

    from repro.serve import JobTimeoutError, ServeAPIError, ServeClient

    try:
        params = _parse_job_params(args.params)
    except ValueError as exc:
        out.write(f"error: {exc}\n")
        return 2
    client = ServeClient(args.url)
    try:
        record = client.submit(
            args.kind, params, seed=args.seed,
            budget_seconds=args.budget_seconds,
        )
    except ServeAPIError as exc:
        out.write(f"error: {json_mod.dumps(exc.payload)}\n")
        return 1
    except urllib.error.URLError as exc:
        out.write(f"error: cannot reach {args.url}: {exc.reason}\n")
        return 2
    out.write(
        f"job {record['id']}: {record['kind']} {record['state']}"
        + (" (cached)" if record.get("cached") else "")
        + "\n"
    )
    if not args.wait:
        return 0
    if hasattr(out, "flush"):
        out.flush()
    try:
        final = (
            record if record["state"] in ("completed", "failed")
            else client.wait(record["id"], timeout=args.timeout)
        )
    except JobTimeoutError as exc:
        out.write(f"error: {exc}\n")
        return 1
    if final["state"] != "completed":
        out.write(
            f"job {final['id']}: FAILED [{final.get('failure_kind')}] "
            f"{final.get('error')}: {final.get('message')}\n"
        )
        return 1
    payload = client.result(final["id"])["payload"]
    out.write(f"job {final['id']}: completed\n")
    out.write(json_mod.dumps(payload, indent=2, sort_keys=True) + "\n")
    return 0


def cmd_jobs(args, out) -> int:
    import json as json_mod
    import urllib.error

    from repro.serve import ServeAPIError, ServeClient

    client = ServeClient(args.url)
    try:
        if args.stats:
            out.write(json_mod.dumps(client.stats(), indent=2,
                                     sort_keys=True) + "\n")
            return 0
        if args.job_id is not None:
            doc = (
                client.result(args.job_id) if args.result
                else client.job(args.job_id)
            )
            out.write(json_mod.dumps(doc, indent=2, sort_keys=True) + "\n")
            return 0
        records = client.jobs()
    except ServeAPIError as exc:
        out.write(f"error: {json_mod.dumps(exc.payload)}\n")
        return 1
    except urllib.error.URLError as exc:
        out.write(f"error: cannot reach {args.url}: {exc.reason}\n")
        return 2
    if not records:
        out.write("no jobs\n")
        return 0
    out.write(f"{'id':>4} {'kind':<9} {'state':<10} "
              f"{'elapsed':>8}  detail\n")
    for record in records:
        elapsed = record.get("elapsed_seconds")
        detail = ""
        if record.get("cached"):
            detail = "cached"
        elif record["state"] == "failed":
            detail = (
                f"[{record.get('failure_kind')}] {record.get('message')}"
            )
        out.write(
            f"{record['id']:>4} {record['kind']:<9} {record['state']:<10} "
            f"{elapsed:>7.2f}s  {detail}\n"
            if elapsed is not None else
            f"{record['id']:>4} {record['kind']:<9} {record['state']:<10} "
            f"{'-':>8}  {detail}\n"
        )
    out.write(f"{len(records)} jobs\n")
    return 0


def cmd_loadgen(args, out) -> int:
    import urllib.error

    from repro.serve import run_loadgen
    from repro.serve.client import JobTimeoutError, ServeAPIError

    try:
        report = run_loadgen(
            args.url,
            jobs=args.jobs,
            concurrency=args.concurrency,
            kind=args.kind,
            seed=args.seed,
            timeout=args.timeout,
        )
    except urllib.error.URLError as exc:
        out.write(f"error: cannot reach {args.url}: {exc.reason}\n")
        return 2
    except (ServeAPIError, JobTimeoutError) as exc:
        out.write(f"error: {exc}\n")
        return 1
    out.write(report.render() + "\n")
    return 0 if report.ok and report.jobs_per_second > 0 else 1


_COMMANDS = {
    "experiment": cmd_experiment,
    "campaign": cmd_campaign,
    "participant": cmd_participant,
    "study": cmd_study,
    "verify": cmd_verify,
    "te": cmd_te,
    "motivating": cmd_motivating,
    "transcript": cmd_transcript,
    "analyze": cmd_analyze,
    "paperdoc": cmd_paperdoc,
    "export": cmd_export,
    "diff": cmd_diff,
    "trace-view": cmd_trace_view,
    "bench": cmd_bench,
    "obs": cmd_obs,
    "profile-view": cmd_profile_view,
    "store": cmd_store,
    "fuzz": cmd_fuzz,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "jobs": cmd_jobs,
    "loadgen": cmd_loadgen,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    from repro import obs
    from repro.resilience import FaultPlan, chaos

    from repro import store as store_mod

    args = build_parser().parse_args(argv)
    stream = out if out is not None else sys.stdout
    trace_path = getattr(args, "trace", None)
    show_metrics = getattr(args, "metrics", False)
    fault_spec = getattr(args, "fault_plan", None)
    store_dir = getattr(args, "store", None)
    serve_port = getattr(args, "serve_metrics", None)
    profile_path = getattr(args, "profile", None)
    obs.metrics.reset()
    obs.PROGRESS.reset()
    server = None
    if serve_port is not None:
        try:
            server = obs.MetricsServer(port=serve_port).start()
        except OSError as exc:
            stream.write(
                f"error: cannot bind metrics port {serve_port}: {exc}\n"
            )
            return 2
        stream.write(f"metrics: serving at {server.url}/metrics\n")
        if hasattr(stream, "flush"):
            stream.flush()
    profiler = obs.SamplingProfiler().start() if profile_path else None
    tracer = obs.Tracer() if trace_path else None
    previous = obs.set_tracer(tracer) if tracer else None
    installed_store = None
    previous_store = None
    if store_dir:
        installed_store = store_mod.ArtifactStore(store_dir)
        previous_store = store_mod.set_default(installed_store)
    try:
        if installed_store is not None:
            from repro.te.tunnelcache import TUNNEL_CACHE

            TUNNEL_CACHE.attach_store(installed_store)
        if fault_spec:
            try:
                plan = FaultPlan.parse(fault_spec)
            except ValueError as exc:
                stream.write(f"error: bad --fault-plan: {exc}\n")
                return 2
            stream.write(f"fault plan: {plan.describe()}\n")
            with chaos(plan):
                code = _COMMANDS[args.command](args, stream)
        else:
            code = _COMMANDS[args.command](args, stream)
    finally:
        if tracer is not None:
            obs.set_tracer(previous)
        if installed_store is not None:
            from repro.te.tunnelcache import TUNNEL_CACHE

            TUNNEL_CACHE.attach_store(None)
            store_mod.set_default(previous_store)
        if profiler is not None:
            profiler.stop()
        if server is not None:
            server.stop()
    if profiler is not None:
        stacks = profiler.write(profile_path)
        stream.write(
            f"profile: wrote {stacks} stacks "
            f"({profiler.samples} samples) to {profile_path}\n"
        )
    if tracer is not None:
        count = obs.export.write_trace(
            trace_path,
            tracer.finished_spans(),
            obs.metrics.snapshot(),
            obs.PROGRESS.events(),
        )
        stream.write(f"trace: wrote {count} spans to {trace_path}\n")
    if show_metrics:
        stream.write(obs.export.render_metrics(obs.metrics.snapshot()) + "\n")
    return code


if __name__ == "__main__":
    sys.exit(main())
