"""The paper's contribution: an LLM-assisted reproduction framework.

The framework implements the unified top-down prompt-engineering workflow
of section 4, hardened with the lessons of section 3.3:

1. describe the system's key components to the LLM;
2. describe how components interact and fix the interfaces;
3. per component, send a detailed modular prompt (pseudocode-based when
   the paper gives pseudocode) to generate the code;
4. test the component and drive the three debugging guidelines
   (error-message feedback, failing-test-case feedback, step-by-step
   logic feedback) until it passes;
5. repeat for every component;
6. assemble and test the complete system against a reference prototype.

Because this environment has no LLM API access, the
:class:`~repro.core.simulated.SimulatedLLM` stands in for ChatGPT: a
deterministic model of an LLM code assistant whose behaviour (monolithic
prompts fail, modular prompts succeed, seeded first-draft defects are
fixed by matching feedback) is calibrated to the paper's experiment.  Any
:class:`~repro.core.llm.LLMClient` implementation -- including a real API
client -- can be plugged into the pipeline instead.
"""

from repro.core.paper import ComponentSpec, PaperSpec, PseudocodeBlock
from repro.core.prompts import Prompt, PromptBuilder, PromptStyle
from repro.core.llm import ChatSession, CodeArtifact, LLMClient, LLMResponse
from repro.core.simulated import SimulatedLLM
from repro.core.pipeline import PipelineConfig, ReproductionPipeline
from repro.core.metrics import ReproductionReport, count_loc
from repro.core.assembly import assemble_module
from repro.core.discrepancy import DiscrepancyReport, analyze
from repro.core.paperdoc import parse_paperdoc, render_paperdoc

__all__ = [
    "ChatSession",
    "CodeArtifact",
    "ComponentSpec",
    "DiscrepancyReport",
    "LLMClient",
    "LLMResponse",
    "PaperSpec",
    "PipelineConfig",
    "Prompt",
    "PromptBuilder",
    "PromptStyle",
    "PseudocodeBlock",
    "ReproductionPipeline",
    "ReproductionReport",
    "SimulatedLLM",
    "analyze",
    "assemble_module",
    "count_loc",
    "parse_paperdoc",
    "render_paperdoc",
]
