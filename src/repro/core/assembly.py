"""Assembling generated code artifacts into an importable module.

Step 6 of the framework: once every component passes its tests, the
artifacts are concatenated in dependency order and executed in a fresh
module namespace.  Generated code may import the substrate libraries a
student would have had available (the BDD engines standing in for
JDD/JavaBDD, the LP backends standing in for Gurobi/PuLP, networkx,
numpy) -- but never the reference implementations of the systems being
reproduced; :data:`FORBIDDEN_IMPORTS` is enforced at assembly time.
"""

from __future__ import annotations

import types
from typing import Sequence

from repro.core.llm import CodeArtifact

#: Generated code importing the reference implementation of a reproduced
#: system would be cheating, the same way a participant was not allowed
#: to copy the open-source prototype.
FORBIDDEN_IMPORTS = (
    "repro.te.ncflow",
    "repro.te.arrow",
    "repro.ap",
    "repro.apkeep",
    "repro.experiments",
)


class AssemblyError(RuntimeError):
    """Raised when artifacts cannot be combined into a working module."""


def check_imports(source: str) -> None:
    """Reject sources that import a reference system implementation."""
    for line in source.splitlines():
        stripped = line.strip()
        if not (stripped.startswith("import ") or stripped.startswith("from ")):
            continue
        for forbidden in FORBIDDEN_IMPORTS:
            if forbidden in stripped:
                raise AssemblyError(
                    f"generated code imports the reference implementation: "
                    f"{stripped!r}"
                )


def assemble_module(
    artifacts: Sequence[CodeArtifact],
    module_name: str = "reproduced",
) -> types.ModuleType:
    """Execute the artifacts, in order, inside one fresh module.

    Raises :class:`AssemblyError` on forbidden imports or on any
    exception raised while executing the code (with the failing
    component named).
    """
    module = types.ModuleType(module_name)
    module.__dict__["__name__"] = module_name
    for artifact in artifacts:
        check_imports(artifact.source)
        try:
            exec(compile(artifact.source, f"<{module_name}:{artifact.component}>", "exec"),
                 module.__dict__)
        except AssemblyError:
            raise
        except Exception as exc:
            raise AssemblyError(
                f"component {artifact.component!r} failed to execute: {exc!r}"
            ) from exc
    return module


def run_component_in_module(
    artifact: CodeArtifact,
    dependencies: Sequence[CodeArtifact],
    module_name: str = "component_under_test",
) -> types.ModuleType:
    """Execute one artifact plus its dependencies for component testing."""
    return assemble_module(list(dependencies) + [artifact], module_name)
