"""The three debugging guidelines of section 3.3, as a feedback policy.

Given a component-test failure, pick which guideline to apply:

1. compiler / runtime errors -> send the error message verbatim
   (``DEBUG_ERROR``); many such bugs are data-type errors;
2. wrong output (an ``AssertionError`` from the participant's test) ->
   send the failing test case (``DEBUG_TESTCASE``);
3. if the test-case feedback did not fix it, the bug is complex -> spell
   out the correct logic step by step (``DEBUG_LOGIC``).
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Dict

from repro.core.prompts import Prompt, PromptBuilder


@dataclass
class DebugPolicy:
    """Chooses and builds the next debugging prompt for a component."""

    builder: PromptBuilder
    logic_notes: Dict[str, str] = field(default_factory=dict)
    #: per-component count of test-case feedback already sent
    _testcase_rounds: Dict[str, int] = field(default_factory=dict)

    def next_prompt(self, component: str, failure: BaseException) -> Prompt:
        """The guideline-appropriate prompt for this failure."""
        if not isinstance(failure, AssertionError):
            message = f"{type(failure).__name__}: {failure}"
            return self.builder.debug_error(component, message)
        if self._testcase_rounds.get(component, 0) < 1:
            self._testcase_rounds[component] = (
                self._testcase_rounds.get(component, 0) + 1
            )
            return self.builder.debug_testcase(component, str(failure))
        note = self.logic_notes.get(
            component,
            "re-derive the algorithm from the paper and follow it exactly.",
        )
        return self.builder.debug_logic(component, note)

    def reset(self, component: str) -> None:
        self._testcase_rounds.pop(component, None)


def describe_failure(failure: BaseException) -> str:
    """Short single-line failure description for reports."""
    text = "".join(
        traceback.format_exception_only(type(failure), failure)
    ).strip()
    return text.splitlines()[-1] if text else repr(failure)
