"""Comparative analysis of reproduced vs reference prototypes.

Section 4 of the paper proposes identifying missing details and
vulnerabilities in publications by *comparatively analysing* an
LLM-reproduced prototype against the open-source one.  This module
mechanises what participants B and D did by hand: run both prototypes
over a grid of instances, measure objective/result/latency deltas, and
classify anything that crosses a threshold into a typed
:class:`Discrepancy` with the evidence attached.

The per-system analyzers mirror the paper's findings:

* ARROW  -> an ``objective-gap`` finding (the paper-code inconsistency);
* AP     -> two ``latency-gap`` findings (BDD library; path enumeration);
* NCFlow -> a ``latency-gap`` finding (LP toolchain) and, on some
  instances, a small ``objective-gap``;
* APKeep -> a clean report.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


class Severity(enum.Enum):
    INFO = "info"
    WARNING = "warning"
    FINDING = "finding"


@dataclass(frozen=True)
class Discrepancy:
    """One classified difference between reproduction and reference."""

    kind: str  # "objective-gap" | "latency-gap" | "count-mismatch" | "result-mismatch"
    subject: str  # instance / dataset the evidence comes from
    measured: float  # the gap or ratio observed
    threshold: float  # the trigger level
    severity: Severity
    explanation: str

    def __str__(self) -> str:
        return (
            f"[{self.severity.value}] {self.kind} on {self.subject}: "
            f"{self.measured:.3g} (threshold {self.threshold:.3g}) — "
            f"{self.explanation}"
        )


@dataclass
class DiscrepancyReport:
    """All discrepancies found for one reproduced system."""

    paper_key: str
    discrepancies: List[Discrepancy] = field(default_factory=list)
    instances_analyzed: int = 0

    @property
    def findings(self) -> List[Discrepancy]:
        return [d for d in self.discrepancies if d.severity is Severity.FINDING]

    @property
    def clean(self) -> bool:
        return not self.findings

    def kinds(self) -> List[str]:
        return sorted({d.kind for d in self.findings})

    def render(self) -> str:
        lines = [f"Discrepancy report: {self.paper_key} "
                 f"({self.instances_analyzed} instances analyzed)"]
        if not self.discrepancies:
            lines.append("  no discrepancies found")
        for discrepancy in self.discrepancies:
            lines.append(f"  {discrepancy}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Thresholds (tunable per analysis)
# ----------------------------------------------------------------------
OBJECTIVE_GAP_THRESHOLD = 0.05  # 5% objective difference is a finding
LATENCY_RATIO_THRESHOLD = 3.0  # 3x slowdown is a finding
LATENCY_RATIO_WARNING = 1.5


def _latency_discrepancy(subject, ratio, explanation) -> Optional[Discrepancy]:
    if ratio >= LATENCY_RATIO_THRESHOLD:
        return Discrepancy(
            "latency-gap", subject, ratio, LATENCY_RATIO_THRESHOLD,
            Severity.FINDING, explanation,
        )
    if ratio >= LATENCY_RATIO_WARNING:
        return Discrepancy(
            "latency-gap", subject, ratio, LATENCY_RATIO_WARNING,
            Severity.WARNING, explanation,
        )
    return None


# ----------------------------------------------------------------------
# ARROW (participant B's finding)
# ----------------------------------------------------------------------
def analyze_arrow(reproduced_module, instance_names: Optional[List[str]] = None) -> DiscrepancyReport:
    from repro.netmodel.instances import make_te_instance
    from repro.te import registry
    from repro.te.arrow import single_fiber_scenarios

    names = instance_names or ["IbmBackbone", "B4"]
    report = DiscrepancyReport("arrow")
    for name in names:
        instance = make_te_instance(name, max_commodities=120)
        scenarios = single_fiber_scenarios(instance.topology, limit=12)
        reference = registry.solve(
            "arrow-code", instance.topology, instance.traffic,
            scenarios=scenarios,
        )
        reproduced = reproduced_module.solve_arrow(
            instance.topology, instance.traffic
        )
        report.instances_analyzed += 1
        gap = (reference.objective - reproduced) / reference.objective
        if gap > OBJECTIVE_GAP_THRESHOLD:
            report.discrepancies.append(
                Discrepancy(
                    "objective-gap", name, gap, OBJECTIVE_GAP_THRESHOLD,
                    Severity.FINDING,
                    "reproduction (paper-faithful) admits less flow than the "
                    "open-source prototype; likely a paper-code inconsistency "
                    "(e.g. parameters the prototype treats as decision "
                    "variables, or a differing restorable-tunnel definition)",
                )
            )
        elif gap > 0.01:
            report.discrepancies.append(
                Discrepancy(
                    "objective-gap", name, gap, 0.01, Severity.WARNING,
                    "small objective shortfall against the prototype",
                )
            )
    return report


# ----------------------------------------------------------------------
# AP (participant D's findings)
# ----------------------------------------------------------------------
def analyze_ap(reproduced_module, dataset_names: Optional[List[str]] = None) -> DiscrepancyReport:
    from repro.ap import APVerifier
    from repro.netmodel.datasets import build_verification_dataset

    names = dataset_names or ["Internet2", "Stanford"]
    report = DiscrepancyReport("ap")
    for name in names:
        dataset = build_verification_dataset(name)
        reference = APVerifier(dataset)
        start = time.perf_counter()
        state = reproduced_module.build_verifier(dataset)
        build_seconds = time.perf_counter() - start
        report.instances_analyzed += 1

        if reproduced_module.count_atoms(state) != reference.num_atoms:
            report.discrepancies.append(
                Discrepancy(
                    "count-mismatch", name,
                    float(reproduced_module.count_atoms(state)),
                    float(reference.num_atoms), Severity.FINDING,
                    "atomic predicate counts differ; the predicate "
                    "extraction or refinement deviates from the paper",
                )
            )
            continue

        build_note = _latency_discrepancy(
            name, build_seconds / max(reference.predicate_seconds, 1e-9),
            "predicate computation much slower than the prototype; check "
            "the BDD library choice (the prototype uses JDD)",
        )
        if build_note is not None:
            report.discrepancies.append(build_note)

        nodes = dataset.topology.nodes
        src, dst = nodes[0], nodes[-1]
        start = time.perf_counter()
        want = reference.reachable_atoms(src, dst)
        reference_seconds = max(time.perf_counter() - start, 1e-9)
        start = time.perf_counter()
        got = reproduced_module.reachable(state, src, dst)
        reproduced_seconds = time.perf_counter() - start
        want_headers = reference.atomics.satcount(want.atoms)
        got_headers = reproduced_module.atoms_satcount(state, got)
        if want_headers != got_headers:
            report.discrepancies.append(
                Discrepancy(
                    "result-mismatch", f"{name}:{src}->{dst}",
                    float(got_headers), float(want_headers), Severity.FINDING,
                    "reachability answers differ from the prototype",
                )
            )
        query_note = _latency_discrepancy(
            name, reproduced_seconds / reference_seconds,
            "reachability query orders of magnitude slower; the paper only "
            "gives the per-path algorithm — the prototype uses a selective "
            "BFS, not path enumeration (a missing detail in the paper)",
        )
        if query_note is not None:
            report.discrepancies.append(query_note)
    return report


# ----------------------------------------------------------------------
# NCFlow (participant A's findings)
# ----------------------------------------------------------------------
def analyze_ncflow(reproduced_module, instance_names: Optional[List[str]] = None) -> DiscrepancyReport:
    from repro.netmodel.instances import make_te_instance
    from repro.te import registry

    names = instance_names or ["Uninett2010", "Colt", "Kdl"]
    report = DiscrepancyReport("ncflow")
    for name in names:
        instance = make_te_instance(
            name, max_commodities=300, total_demand_fraction=0.1
        )
        start = time.perf_counter()
        reference = registry.solve("ncflow", instance.topology, instance.traffic)
        reference_seconds = max(time.perf_counter() - start, 1e-9)
        start = time.perf_counter()
        reproduced = reproduced_module.solve_ncflow(
            instance.topology, instance.traffic
        )
        reproduced_seconds = time.perf_counter() - start
        report.instances_analyzed += 1

        gap = abs(reference.objective - reproduced) / reference.objective
        if gap > OBJECTIVE_GAP_THRESHOLD:
            report.discrepancies.append(
                Discrepancy(
                    "objective-gap", name, gap, OBJECTIVE_GAP_THRESHOLD,
                    Severity.FINDING,
                    "objective differs from the prototype beyond solver "
                    "noise; check partition search and iteration count",
                )
            )
        elif gap > 0.005:
            report.discrepancies.append(
                Discrepancy(
                    "objective-gap", name, gap, 0.005, Severity.INFO,
                    "small objective difference (partition/iteration detail)",
                )
            )
        latency_note = _latency_discrepancy(
            name, reproduced_seconds / reference_seconds,
            "end-to-end latency gap; the prototype calls Gurobi in-process "
            "while the reproduction round-trips LP text (PuLP-style)",
        )
        if latency_note is not None:
            report.discrepancies.append(latency_note)
    return report


# ----------------------------------------------------------------------
# APKeep (participant C: clean)
# ----------------------------------------------------------------------
def analyze_apkeep(reproduced_module, dataset_names: Optional[List[str]] = None) -> DiscrepancyReport:
    from repro.apkeep import APKeepVerifier
    from repro.netmodel.datasets import build_verification_dataset

    names = dataset_names or ["Internet2", "Stanford"]
    report = DiscrepancyReport("apkeep")
    for name in names:
        dataset = build_verification_dataset(name)
        start = time.perf_counter()
        reference = APKeepVerifier(dataset)
        reference_seconds = max(time.perf_counter() - start, 1e-9)
        start = time.perf_counter()
        state = reproduced_module.build_network(dataset)
        reproduced_seconds = time.perf_counter() - start
        report.instances_analyzed += 1

        if reproduced_module.count_atoms(state) != reference.num_atoms_minimal:
            report.discrepancies.append(
                Discrepancy(
                    "count-mismatch", name,
                    float(reproduced_module.count_atoms(state)),
                    float(reference.num_atoms_minimal), Severity.FINDING,
                    "atomic predicate counts differ",
                )
            )
        latency_note = _latency_discrepancy(
            name, reproduced_seconds / reference_seconds,
            "incremental update latency gap",
        )
        if latency_note is not None:
            report.discrepancies.append(latency_note)
    return report


ANALYZERS: Dict[str, Callable] = {
    "arrow": analyze_arrow,
    "ap": analyze_ap,
    "ncflow": analyze_ncflow,
    "apkeep": analyze_apkeep,
}


def analyze(paper_key: str, reproduced_module) -> DiscrepancyReport:
    """Run the comparative analysis for one reproduced system."""
    if paper_key not in ANALYZERS:
        raise KeyError(
            f"no analyzer for {paper_key!r}; known: {sorted(ANALYZERS)}"
        )
    return ANALYZERS[paper_key](reproduced_module)
