"""Per-paper knowledge bases for the simulated LLM.

Each module defines, for one paper:

* ``PAPER`` -- the :class:`~repro.core.paper.PaperSpec` a participant
  distils from the publication;
* ``KNOWLEDGE`` -- the :class:`~repro.core.simulated.PaperKnowledge`
  holding the code the simulated LLM generates (final sources plus the
  seeded first-draft defects);
* ``COMPONENT_TESTS`` -- the small-scale tests the participant writes
  per component (callables taking the assembled module, raising on
  failure);
* ``LOGIC_NOTES`` -- the step-by-step correct-logic text used by the
  third debugging guideline.

The generated sources may import the substrate libraries a student had
(BDD engines, LP backends, networkx, the dataset loaders) but never the
reference implementations of the systems being reproduced -- the
assembler enforces that.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.paper import PaperSpec
from repro.core.simulated import PaperKnowledge

_REGISTRY: Dict[str, str] = {
    "ap": "repro.core.knowledge.ap_kb",
    "apkeep": "repro.core.knowledge.apkeep_kb",
    "ncflow": "repro.core.knowledge.ncflow_kb",
    "arrow": "repro.core.knowledge.arrow_kb",
    "rps": "repro.core.knowledge.rps_kb",
}


def _load(key: str):
    import importlib

    if key not in _REGISTRY:
        raise KeyError(f"no knowledge base for {key!r}; known: {sorted(_REGISTRY)}")
    return importlib.import_module(_REGISTRY[key])


def paper_keys():
    """All paper keys with a knowledge base."""
    return sorted(_REGISTRY)


def get_paper_spec(key: str) -> PaperSpec:
    return _load(key).PAPER


def get_knowledge(key: str) -> PaperKnowledge:
    return _load(key).KNOWLEDGE


def get_component_tests(key: str) -> Dict[str, Callable]:
    return _load(key).COMPONENT_TESTS


def get_logic_notes(key: str) -> Dict[str, str]:
    return _load(key).LOGIC_NOTES


def all_knowledge() -> Dict[str, PaperKnowledge]:
    return {key: get_knowledge(key) for key in paper_keys()}
