"""Knowledge base: AP (Atomic Predicates verifier, participant D).

The generated prototype mirrors participant D's documented choices:

* it links against the *JavaBDD-profile* engine (D picked JavaBDD, which
  the paper blames for a 20x predicate-computation slowdown versus the
  JDD-based open-source prototype);
* reachability enumerates all simple paths and intersects port labels
  along each (the paper only describes the per-path algorithm; D, not
  spotting the exponential blow-up, used it as a building block over all
  paths -- the root cause of the up-to-10^4x verification slowdown).

Seeded defects: an off-by-one BDD variable index (fixed by sending the
runtime error), missing priority shadowing in predicate extraction
(fixed by a failing test case), and a first-path-only reachability bug
(fixed by a step-by-step logic prompt).
"""

from __future__ import annotations

from repro.core.paper import ComponentSpec, PaperSpec, PseudocodeBlock
from repro.core.prompts import PromptKind
from repro.core.simulated import ComponentKnowledge, Defect, PaperKnowledge

PAPER = PaperSpec(
    key="ap",
    title="Real-Time Verification of Network Properties Using Atomic Predicates",
    venue="ToN",
    year=2016,
    system_summary=(
        "A data plane verifier that converts forwarding and ACL predicates "
        "into a minimal set of atomic predicates so reachability queries "
        "become integer-set operations."
    ),
    components=(
        ComponentSpec(
            name="bdd_setup",
            description=(
                "Wrap a BDD library so destination prefixes become packet-set "
                "BDDs over the header bits."
            ),
            interfaces=(
                "make_engine() -> engine",
                "prefix_bdd(engine, prefix) -> bdd",
            ),
        ),
        ComponentSpec(
            name="predicates",
            description=(
                "Extract, per device, the forwarding predicate of each port "
                "(applying priority shadowing) and the ACL permit predicate."
            ),
            interfaces=(
                "port_predicates(engine, device) -> {port: bdd}",
                "acl_predicate(engine, device) -> bdd",
            ),
            depends_on=("bdd_setup",),
        ),
        ComponentSpec(
            name="atomic",
            description=(
                "Compute the atomic predicates of a predicate list by "
                "iterative refinement, and map predicates to atom-id sets."
            ),
            pseudocode=PseudocodeBlock(
                name="Atomic predicates refinement",
                text=(
                    "atoms <- {true}\n"
                    "for each predicate P:\n"
                    "    for each atom a in atoms:\n"
                    "        split a into a AND P and a AND NOT P\n"
                    "        keep the non-empty parts\n"
                ),
            ),
            interfaces=(
                "atomic_predicates(engine, predicates) -> [bdd]",
                "atoms_of(engine, atoms, predicate) -> frozenset[int]",
            ),
            depends_on=("bdd_setup", "predicates"),
        ),
        ComponentSpec(
            name="reachability",
            description=(
                "Build the verifier state for a dataset and answer "
                "reachability queries: given a path, a packet set reaches the "
                "destination if it survives every port label and ACL along "
                "the path; collect the surviving sets over paths from source "
                "to destination."
            ),
            pseudocode=PseudocodeBlock(
                name="Per-path reachability",
                text=(
                    "atoms <- all atoms admitted at src\n"
                    "for each hop (u, v) on the path:\n"
                    "    atoms <- atoms AND label(u, v) AND acl(v)\n"
                    "    if atoms is empty: stop\n"
                    "the surviving atoms reach dst along this path\n"
                ),
            ),
            interfaces=(
                "build_verifier(dataset) -> state",
                "reachable(state, src, dst, max_paths=None) -> frozenset[int]",
                "count_atoms(state) -> int",
                "find_blackholes(state) -> list",
            ),
            depends_on=("bdd_setup", "predicates", "atomic"),
        ),
    ),
    data_format_notes=(
        "Datasets are VerificationDataset objects: a topology plus per-device "
        "FIBs of (prefix, port, priority) rules and optional first-match ACLs."
    ),
)


_BDD_SETUP_SOURCE = '''\
"""BDD setup: the reproduction links against the JavaBDD library."""

from repro.bdd.engine import JavaBDDEngine, BDD_FALSE, BDD_TRUE
from repro.netmodel.headerspace import HEADER_BITS


def make_engine():
    return JavaBDDEngine(HEADER_BITS)


def prefix_bdd(engine, prefix):
    literals = []
    for bit in range(prefix.length):
        shift = HEADER_BITS - 1 - bit
        literals.append((bit, bool((prefix.value >> shift) & 1)))
    node = engine.cube(literals)
    engine.ref(node)
    return node
'''


_PREDICATES_SOURCE = '''\
"""Predicate extraction with priority shadowing."""


def port_predicates(engine, device):
    predicates = {}
    remaining = BDD_TRUE
    for rule in device.rules:
        match = prefix_bdd(engine, rule.prefix)
        effective = engine.and_(match, remaining)
        if effective != BDD_FALSE:
            previous = predicates.get(rule.port, BDD_FALSE)
            merged = engine.or_(previous, effective)
            engine.ref(merged)
            engine.deref(previous)
            predicates[rule.port] = merged
        remaining = engine.diff(remaining, match)
        engine.deref(match)
    if remaining != BDD_FALSE:
        previous = predicates.get("drop", BDD_FALSE)
        predicates["drop"] = engine.or_(previous, remaining)
    return predicates


def acl_predicate(engine, device):
    if not device.has_acl:
        return BDD_TRUE
    permitted = BDD_FALSE
    remaining = BDD_TRUE
    for acl_rule in device.acl:
        match = prefix_bdd(engine, acl_rule.prefix)
        effective = engine.and_(match, remaining)
        if acl_rule.action.value == "permit":
            permitted = engine.or_(permitted, effective)
        remaining = engine.diff(remaining, match)
        engine.deref(match)
    return engine.or_(permitted, remaining)
'''


_ATOMIC_SOURCE = '''\
"""Atomic predicates by iterative refinement."""


def atomic_predicates(engine, predicates):
    atoms = [BDD_TRUE]
    seen = set()
    for predicate in predicates:
        if predicate in (BDD_TRUE, BDD_FALSE) or predicate in seen:
            continue
        seen.add(predicate)
        refined = []
        for atom in atoms:
            inside = engine.and_(atom, predicate)
            outside = engine.diff(atom, predicate)
            if inside != BDD_FALSE and outside != BDD_FALSE:
                engine.ref(inside)
                engine.ref(outside)
                refined.append(inside)
                refined.append(outside)
                engine.deref(atom)
            else:
                refined.append(atom)
        atoms = refined
    return atoms


def atoms_of(engine, atoms, predicate):
    if predicate == BDD_TRUE:
        return frozenset(range(len(atoms)))
    if predicate == BDD_FALSE:
        return frozenset()
    member = set()
    for index, atom in enumerate(atoms):
        if engine.diff(atom, predicate) == BDD_FALSE:
            member.add(index)
    return frozenset(member)
'''


_REACHABILITY_SOURCE = '''\
"""Verifier assembly and path-enumeration reachability."""

import networkx


def build_verifier(dataset):
    engine = make_engine()
    port_bdds = {}
    acl_bdds = {}
    for name in sorted(dataset.devices):
        device = dataset.devices[name]
        for port, bdd in sorted(port_predicates(engine, device).items()):
            port_bdds[(name, port)] = bdd
        acl_bdds[name] = acl_predicate(engine, device)
    predicate_list = list(port_bdds.values()) + [
        bdd for bdd in acl_bdds.values() if bdd != BDD_TRUE
    ]
    atoms = atomic_predicates(engine, predicate_list)
    labels = {
        key: atoms_of(engine, atoms, bdd) for key, bdd in port_bdds.items()
    }
    acl_atoms = {
        name: atoms_of(engine, atoms, bdd) for name, bdd in acl_bdds.items()
    }
    return {
        "engine": engine,
        "dataset": dataset,
        "atoms": atoms,
        "labels": labels,
        "acl_atoms": acl_atoms,
    }


def count_atoms(state):
    return len(state["atoms"])


def reachable(state, src, dst, max_paths=None):
    dataset = state["dataset"]
    labels = state["labels"]
    acl_atoms = state["acl_atoms"]
    start_atoms = acl_atoms[src]
    if src == dst:
        return frozenset(start_atoms)
    graph = dataset.topology.to_networkx()
    arrived = set()
    explored = 0
    for path in networkx.all_simple_paths(graph, src, dst):
        explored += 1
        atoms = set(start_atoms)
        for hop, nxt in zip(path, path[1:]):
            atoms &= labels.get((hop, nxt), frozenset())
            atoms &= acl_atoms.get(nxt, frozenset())
            if not atoms:
                break
        arrived.update(atoms)
        if max_paths is not None and explored >= max_paths:
            break
    return frozenset(arrived)


def find_blackholes(state):
    dataset = state["dataset"]
    labels = state["labels"]
    acl_atoms = state["acl_atoms"]
    reports = []
    for name in sorted(dataset.devices):
        dropped = labels.get((name, "drop"), frozenset()) & acl_atoms[name]
        if dropped:
            reports.append((name, frozenset(dropped)))
    return reports


def next_port_table(state):
    dataset = state["dataset"]
    labels = state["labels"]
    table = {}
    for (device, port), atoms in labels.items():
        per_device = table.setdefault(device, {})
        for atom in atoms:
            per_device[atom] = port
    for device in dataset.topology.nodes:
        table.setdefault(device, {})
    return table


def find_loops(state):
    dataset = state["dataset"]
    acl_atoms = state["acl_atoms"]
    table = next_port_table(state)
    loops = []
    for atom in range(len(state["atoms"])):
        marks = {}
        for start in dataset.topology.nodes:
            if atom not in acl_atoms[start] or marks.get(start):
                continue
            path = []
            device = start
            while True:
                mark = marks.get(device)
                if mark == 2:
                    break
                if mark == 1:
                    loops.append((atom, tuple(path[path.index(device):])))
                    break
                marks[device] = 1
                path.append(device)
                port = table[device].get(atom, "drop")
                if port in ("drop", "self"):
                    break
                if atom not in acl_atoms.get(port, frozenset()):
                    break
                device = port
            for visited in path:
                marks[visited] = 2
    return loops


def verify_all_pairs(state, max_paths=None):
    dataset = state["dataset"]
    results = {}
    for src in dataset.topology.nodes:
        for dst in dataset.topology.nodes:
            if src == dst:
                continue
            results[(src, dst)] = reachable(
                state, src, dst, max_paths=max_paths
            )
    return results


def atoms_satcount(state, atom_ids):
    engine = state["engine"]
    atoms = state["atoms"]
    return sum(engine.satcount(atoms[index]) for index in atom_ids)


def verification_summary(state):
    loops = find_loops(state)
    blackholes = find_blackholes(state)
    return {
        "atoms": count_atoms(state),
        "loops": len(loops),
        "blackhole_devices": len(blackholes),
        "loop_free": not loops,
        "blackhole_free": not blackholes,
    }


def predicate_stats(state):
    engine = state["engine"]
    labels = state["labels"]
    per_device = {}
    for (device, port), atoms in labels.items():
        entry = per_device.setdefault(
            device, {"ports": 0, "atoms": 0, "headers": 0}
        )
        entry["ports"] += 1
        entry["atoms"] += len(atoms)
        entry["headers"] += atoms_satcount(state, atoms)
    return {
        "devices": len(per_device),
        "atoms": count_atoms(state),
        "bdd_nodes": engine.num_nodes,
        "bdd_operations": engine.op_count,
        "per_device": per_device,
    }


def print_report(state, stream=None):
    import sys

    out = stream if stream is not None else sys.stdout
    summary = verification_summary(state)
    stats = predicate_stats(state)
    out.write("=== AP verification report ===\\n")
    out.write("dataset: %s\\n" % state["dataset"].name)
    out.write("atomic predicates: %d\\n" % summary["atoms"])
    out.write("BDD nodes: %d\\n" % stats["bdd_nodes"])
    out.write("BDD operations: %d\\n" % stats["bdd_operations"])
    out.write("loop-free: %s\\n" % summary["loop_free"])
    out.write("blackhole-free: %s\\n" % summary["blackhole_free"])
    for device in sorted(stats["per_device"]):
        entry = stats["per_device"][device]
        out.write(
            "  %s: %d ports, %d atom labels\\n"
            % (device, entry["ports"], entry["atoms"])
        )
'''


KNOWLEDGE = PaperKnowledge(
    paper_key="ap",
    components={
        "bdd_setup": ComponentKnowledge(
            component="bdd_setup",
            final_source=_BDD_SETUP_SOURCE,
            defects=(
                Defect(
                    kind=PromptKind.DEBUG_ERROR,
                    description=(
                        "the literal used variable index bit+1, walking past "
                        "the last header bit."
                    ),
                    broken="literals.append((bit + 1, bool((prefix.value >> shift) & 1)))",
                    fixed="literals.append((bit, bool((prefix.value >> shift) & 1)))",
                    error_hint="out of [0,",
                ),
            ),
        ),
        "predicates": ComponentKnowledge(
            component="predicates",
            final_source=_PREDICATES_SOURCE,
            defects=(
                Defect(
                    kind=PromptKind.DEBUG_TESTCASE,
                    description=(
                        "the port predicate accumulated the raw match instead "
                        "of the shadowed effective set, so overlapping rules "
                        "were double-counted."
                    ),
                    broken="merged = engine.or_(previous, match)",
                    fixed="merged = engine.or_(previous, effective)",
                    error_hint="port predicates must be disjoint",
                ),
            ),
        ),
        "atomic": ComponentKnowledge(
            component="atomic",
            final_source=_ATOMIC_SOURCE,
            defects=(),
        ),
        "reachability": ComponentKnowledge(
            component="reachability",
            final_source=_REACHABILITY_SOURCE,
            defects=(
                Defect(
                    kind=PromptKind.DEBUG_TESTCASE,
                    description=(
                        "count_atoms excluded the last atom (a classic "
                        "off-by-one); the count no longer matched the "
                        "prototype."
                    ),
                    broken="def count_atoms(state):\n    return len(state[\"atoms\"]) - 1",
                    fixed="def count_atoms(state):\n    return len(state[\"atoms\"])",
                    error_hint="atom count differs",
                ),
                Defect(
                    kind=PromptKind.DEBUG_LOGIC,
                    description=(
                        "the query returned after the first enumerated path; "
                        "atoms surviving on later paths were dropped."
                    ),
                    broken=(
                        "            if not atoms:\n"
                        "                break\n"
                        "        return frozenset(atoms)\n"
                        "        arrived.update(atoms)"
                    ),
                    fixed=(
                        "            if not atoms:\n"
                        "                break\n"
                        "        arrived.update(atoms)"
                    ),
                    error_hint="only the first path",
                ),
            ),
            text_style_defect=Defect(
                kind=PromptKind.DEBUG_ERROR,
                description=(
                    "without the pseudocode the reply modelled the working "
                    "packet set as a list, which set intersection rejects."
                ),
                broken="        atoms = list(start_atoms)",
                fixed="        atoms = set(start_atoms)",
                error_hint="unsupported operand type",
            ),
        ),
    },
    overview_reply=(
        "Atomic Predicates verifier: encode predicates as BDDs, refine them "
        "into atoms, then answer reachability on integer sets. Ready to "
        "implement component by component."
    ),
)


def _tiny_dataset():
    from repro.netmodel.datasets import build_verification_dataset

    return build_verification_dataset("Internet2")


def _test_bdd_setup(module):
    from repro.netmodel.headerspace import HEADER_BITS, Prefix

    engine = module.make_engine()
    full = module.prefix_bdd(engine, Prefix.host(5))
    assert engine.satcount(full) == 1, "host prefix must match one header"
    half = module.prefix_bdd(engine, Prefix(0, 1))
    assert engine.satcount(half) == 1 << (HEADER_BITS - 1)


def _test_predicates(module):
    from repro.netmodel.headerspace import Prefix
    from repro.netmodel.rules import Device, ForwardingRule
    from repro.bdd.engine import BDD_FALSE

    engine = module.make_engine()
    device = Device("r1")
    device.add_rule(ForwardingRule.lpm(Prefix(0, 1), "a"))
    device.add_rule(ForwardingRule.lpm(Prefix(0, 2), "b"))  # overlaps, longer
    predicates = module.port_predicates(engine, device)
    inter = engine.and_(predicates["a"], predicates["b"])
    assert inter == BDD_FALSE, "port predicates must be disjoint"


def _test_atomic(module):
    from repro.netmodel.headerspace import Prefix

    engine = module.make_engine()
    p1 = module.prefix_bdd(engine, Prefix(0, 1))
    p2 = module.prefix_bdd(engine, Prefix(0, 2))
    atoms = module.atomic_predicates(engine, [p1, p2])
    assert len(atoms) == 3, f"expected 3 atoms, got {len(atoms)}"
    member = module.atoms_of(engine, atoms, p2)
    assert len(member) == 1


def _test_reachability(module):
    dataset = _tiny_dataset()
    state = module.build_verifier(dataset)
    from repro.ap import APVerifier

    reference = APVerifier(dataset)
    assert module.count_atoms(state) == reference.num_atoms, (
        "atom count differs from the open-source prototype"
    )
    nodes = dataset.topology.nodes
    checked = 0
    for src in nodes[:3]:
        for dst in nodes[-3:]:
            if src == dst:
                continue
            got = module.reachable(state, src, dst)
            want = reference.reachable_atoms(src, dst).atoms
            got_sat = sum(
                state["engine"].satcount(state["atoms"][a]) for a in got
            )
            want_sat = reference.atomics.satcount(want)
            assert got_sat == want_sat, (
                f"reachability differs on {src}->{dst}: the reproduction "
                "returned only the first path's result"
            )
            checked += 1
    assert checked > 0


COMPONENT_TESTS = {
    "bdd_setup": _test_bdd_setup,
    "predicates": _test_predicates,
    "atomic": _test_atomic,
    "reachability": _test_reachability,
}

LOGIC_NOTES = {
    "reachability": (
        "(1) enumerate every simple path from src to dst; (2) for each "
        "path start from the atoms admitted at src; (3) intersect with the "
        "port label of every hop and the ACL of every next device; (4) "
        "union the survivors of ALL paths, not just the first, and return "
        "that union."
    ),
}
