"""Knowledge base: APKeep (participant C).

The generated prototype mirrors participant C's session: it links against
the JDD-profile BDD engine (same library family as the non-author
open-source prototype, hence the comparable latency the paper reports)
and implements Algorithm 1 (``IdentifyChangesInsert``) from the paper's
pseudocode -- the very listing the HotNets paper reprints in Figure 6.

Seeded defects: an off-by-one BDD variable index (runtime error), a
missing hit-subtraction in Algorithm 1 (failing test case: rule hits must
partition the header space), and a split that forgets to propagate the
new atom to the other elements' port maps (complex logic bug).
"""

from __future__ import annotations

from repro.core.paper import ComponentSpec, PaperSpec, PseudocodeBlock
from repro.core.prompts import PromptKind
from repro.core.simulated import ComponentKnowledge, Defect, PaperKnowledge

ALGORITHM_1 = PseudocodeBlock(
    name="Algorithm 1: IdentifyChangesInsert(r, R)",
    text=(
        "Input: r: the newly inserted rule; R: existing rules\n"
        "Output: C: the set of changes due to the insertion of r\n"
        "r.hit <- r.match\n"
        "foreach r' in R do\n"
        "    if r'.prio > r.prio and r'.hit AND r.hit != empty then\n"
        "        r.hit <- r.hit AND NOT r'.hit\n"
        "    if r'.prio < r.prio and r'.hit AND r.hit != empty then\n"
        "        if r'.port != r.port then\n"
        "            C <- C + {(r.hit AND r'.hit, r'.port, r.port)}\n"
        "        r'.hit <- r'.hit AND NOT r.hit\n"
        "Insert r into R\n"
        "return C\n"
    ),
)

PAPER = PaperSpec(
    key="apkeep",
    title="APKeep: Realtime Verification for Real Networks",
    venue="NSDI",
    year=2020,
    system_summary=(
        "An incremental data plane verifier: maintain a network-wide "
        "port-predicate map of atomic predicates and absorb each rule "
        "update by computing its behaviour changes and transferring atoms "
        "between ports."
    ),
    components=(
        ComponentSpec(
            name="bdd_setup",
            description=(
                "Wrap the JDD BDD library so destination prefixes become "
                "packet-set BDDs over the header bits."
            ),
            interfaces=(
                "make_engine() -> engine",
                "prefix_bdd(engine, prefix) -> bdd",
            ),
        ),
        ComponentSpec(
            name="element_update",
            description=(
                "Model a forwarding element with per-rule hit BDDs and "
                "implement rule insertion: identify the behaviour changes "
                "caused by the new rule while keeping every rule's hit "
                "equal to its match minus higher-priority hits."
            ),
            pseudocode=ALGORITHM_1,
            interfaces=(
                "new_element(name, default_port) -> element",
                "insert_rule(engine, element, rule) -> [(bdd, from, to)]",
            ),
            depends_on=("bdd_setup",),
        ),
        ComponentSpec(
            name="ppm_update",
            description=(
                "Maintain the port-predicate map: a global set of atoms and "
                "per-element port membership. Apply a change by moving the "
                "overlapping atoms between the two ports, splitting atoms "
                "that only partially overlap -- and registering every new "
                "atom with every element."
            ),
            interfaces=(
                "new_ppm(engine) -> ppm",
                "register_element(ppm, name, default_port)",
                "apply_changes(ppm, element_name, changes)",
            ),
            depends_on=("bdd_setup", "element_update"),
        ),
        ComponentSpec(
            name="property_check",
            description=(
                "Build the verifier over a dataset by replaying every FIB "
                "rule and ACL entry as an incremental insertion, then check "
                "properties: count the (merged) atomic predicates, find "
                "forwarding loops and blackholes."
            ),
            interfaces=(
                "build_network(dataset) -> state",
                "count_atoms(state) -> int",
                "find_loops(state) -> list",
                "find_blackholes(state) -> list",
            ),
            depends_on=("bdd_setup", "element_update", "ppm_update"),
        ),
    ),
    data_format_notes=(
        "Datasets are VerificationDataset objects: a topology plus per-device "
        "FIBs of (prefix, port, priority) rules and optional first-match ACLs."
    ),
)


_BDD_SETUP_SOURCE = '''\
"""BDD setup: the reproduction links against the JDD library."""

from repro.bdd.engine import JDDEngine, BDD_FALSE, BDD_TRUE
from repro.netmodel.headerspace import HEADER_BITS


def make_engine():
    return JDDEngine(HEADER_BITS)


def prefix_bdd(engine, prefix):
    literals = []
    for bit in range(prefix.length):
        shift = HEADER_BITS - 1 - bit
        literals.append((bit, bool((prefix.value >> shift) & 1)))
    node = engine.cube(literals)
    engine.ref(node)
    return node
'''


_ELEMENT_UPDATE_SOURCE = '''\
"""Forwarding elements with per-rule hit BDDs (Algorithm 1)."""


def new_element(name, default_port):
    return {
        "name": name,
        "default_port": default_port,
        "default_hit": BDD_TRUE,
        "rules": [],
        "seq": 0,
    }


def insert_rule(engine, element, rule):
    match = prefix_bdd(engine, rule.prefix)
    hit = match
    changes = []
    for existing in element["rules"]:
        wins = (
            existing["priority"] > rule.priority
            or existing["priority"] == rule.priority
        )
        if wins:
            inter = engine.and_(hit, existing["hit"])
            if inter != BDD_FALSE:
                hit = engine.diff(hit, existing["hit"])
                if hit == BDD_FALSE:
                    break
        else:
            inter = engine.and_(hit, existing["hit"])
            if inter != BDD_FALSE:
                if existing["port"] != rule.port:
                    changes.append((inter, existing["port"], rule.port))
                existing["hit"] = engine.diff(existing["hit"], hit)
    if hit != BDD_FALSE:
        inter = engine.and_(hit, element["default_hit"])
        if inter != BDD_FALSE:
            if element["default_port"] != rule.port:
                changes.append((inter, element["default_port"], rule.port))
            element["default_hit"] = engine.diff(element["default_hit"], hit)
    element["rules"].append(
        {
            "prefix": rule.prefix,
            "port": rule.port,
            "priority": rule.priority,
            "match": match,
            "hit": hit,
            "seq": element["seq"],
        }
    )
    element["seq"] += 1
    return changes


def element_partition_ok(engine, element):
    union = element["default_hit"]
    for entry in element["rules"]:
        if engine.and_(union, entry["hit"]) != BDD_FALSE:
            return False
        union = engine.or_(union, entry["hit"])
    return union == BDD_TRUE


def remove_rule(engine, element, rule):
    target = None
    for entry in element["rules"]:
        if (
            entry["prefix"] == rule.prefix
            and entry["port"] == rule.port
            and entry["priority"] == rule.priority
        ):
            target = entry
            break
    if target is None:
        raise KeyError("rule not installed on element " + element["name"])
    element["rules"].remove(target)
    changes = []
    remaining = target["hit"]
    if remaining == BDD_FALSE:
        return changes
    ordered = sorted(
        element["rules"], key=lambda e: (-e["priority"], e["seq"])
    )
    for entry in ordered:
        inter = engine.and_(remaining, entry["match"])
        if inter == BDD_FALSE:
            continue
        entry["hit"] = engine.or_(entry["hit"], inter)
        if entry["port"] != target["port"]:
            changes.append((inter, target["port"], entry["port"]))
        remaining = engine.diff(remaining, entry["match"])
        if remaining == BDD_FALSE:
            break
    if remaining != BDD_FALSE:
        element["default_hit"] = engine.or_(element["default_hit"], remaining)
        if element["default_port"] != target["port"]:
            changes.append((remaining, target["port"], element["default_port"]))
    return changes
'''


_PPM_UPDATE_SOURCE = '''\
"""The port-predicate map: global atoms plus per-element port sets."""


def new_ppm(engine):
    return {
        "engine": engine,
        "atoms": {0: BDD_TRUE},
        "next_id": 1,
        "ports": {},
        "locations": {0: {}},
    }


def register_element(ppm, name, default_port):
    ppm["ports"][name] = {default_port: set(ppm["atoms"])}
    for atom_id in ppm["atoms"]:
        ppm["locations"][atom_id][name] = default_port


def _ensure_port(ppm, element_name, port):
    ppm["ports"][element_name].setdefault(port, set())


def _move(ppm, atom_id, element_name, from_port, to_port):
    ppm["ports"][element_name][from_port].discard(atom_id)
    ppm["ports"][element_name][to_port].add(atom_id)
    ppm["locations"][atom_id][element_name] = to_port


def _split(ppm, atom_id, inside_bdd):
    engine = ppm["engine"]
    outside = engine.diff(ppm["atoms"][atom_id], inside_bdd)
    new_id = ppm["next_id"]
    ppm["next_id"] += 1
    ppm["atoms"][atom_id] = outside
    ppm["atoms"][new_id] = inside_bdd
    ppm["locations"][new_id] = dict(ppm["locations"][atom_id])
    for element_name, port in ppm["locations"][new_id].items():
        ppm["ports"][element_name][port].add(new_id)
    return new_id


def apply_changes(ppm, element_name, changes):
    engine = ppm["engine"]
    for bdd, from_port, to_port in changes:
        _ensure_port(ppm, element_name, from_port)
        _ensure_port(ppm, element_name, to_port)
        moving = []
        splitting = []
        for atom_id in ppm["ports"][element_name][from_port]:
            atom_bdd = ppm["atoms"][atom_id]
            inter = engine.and_(atom_bdd, bdd)
            if inter == BDD_FALSE:
                continue
            if inter == atom_bdd:
                moving.append(atom_id)
            else:
                splitting.append((atom_id, inter))
        for atom_id in moving:
            _move(ppm, atom_id, element_name, from_port, to_port)
        for atom_id, inter in splitting:
            new_id = _split(ppm, atom_id, inter)
            _move(ppm, new_id, element_name, from_port, to_port)


def ppm_partition_ok(ppm, element_name):
    seen = set()
    for atoms in ppm["ports"][element_name].values():
        if atoms & seen:
            return False
        seen |= atoms
    return seen == set(ppm["atoms"])
'''


_PROPERTY_CHECK_SOURCE = '''\
"""Build the network incrementally and check properties."""


def build_network(dataset):
    engine = make_engine()
    ppm = new_ppm(engine)
    elements = {}
    acl_elements = {}
    for name in sorted(dataset.devices):
        element = new_element(name, "drop")
        elements[name] = element
        register_element(ppm, name, "drop")
        if dataset.devices[name].has_acl:
            acl = new_element("acl:" + name, "permit")
            acl_elements[name] = acl
            register_element(ppm, "acl:" + name, "permit")
    for name in sorted(dataset.devices):
        device = dataset.devices[name]
        for rule in device.rules:
            changes = insert_rule(engine, elements[name], rule)
            apply_changes(ppm, name, changes)
        for acl_rule in device.acl:
            port = "permit" if acl_rule.action.value == "permit" else "deny"
            pseudo = _AclRuleView(acl_rule.prefix, port, acl_rule.priority)
            changes = insert_rule(engine, acl_elements[name], pseudo)
            apply_changes(ppm, "acl:" + name, changes)
    return {
        "engine": engine,
        "dataset": dataset,
        "ppm": ppm,
        "elements": elements,
        "acl_elements": acl_elements,
    }


class _AclRuleView:
    def __init__(self, prefix, port, priority):
        self.prefix = prefix
        self.port = port
        self.priority = priority


def count_atoms(state):
    ppm = state["ppm"]
    profiles = set()
    for atom_id in ppm["atoms"]:
        profiles.add(tuple(sorted(ppm["locations"][atom_id].items())))
    return len(profiles)


def _acl_atoms(state):
    ppm = state["ppm"]
    all_atoms = frozenset(ppm["atoms"])
    admitted = {}
    for name in state["elements"]:
        if name in state["acl_elements"]:
            admitted[name] = frozenset(ppm["ports"]["acl:" + name]["permit"])
        else:
            admitted[name] = all_atoms
    return admitted


def find_loops(state):
    ppm = state["ppm"]
    dataset = state["dataset"]
    admitted = _acl_atoms(state)
    next_port = {}
    for name in state["elements"]:
        table = {}
        for port, atoms in ppm["ports"][name].items():
            for atom_id in atoms:
                table[atom_id] = port
        next_port[name] = table
    loops = []
    for atom_id in sorted(ppm["atoms"]):
        state_of = {}
        for start in dataset.topology.nodes:
            if atom_id not in admitted[start] or state_of.get(start):
                continue
            path = []
            device = start
            while True:
                mark = state_of.get(device)
                if mark == 2:
                    break
                if mark == 1:
                    cycle = tuple(path[path.index(device):])
                    loops.append((atom_id, cycle))
                    break
                state_of[device] = 1
                path.append(device)
                port = next_port[device].get(atom_id, "drop")
                if port in ("drop", "self"):
                    break
                if atom_id not in admitted.get(port, frozenset()):
                    break
                device = port
            for visited in path:
                state_of[visited] = 2
    return loops


def find_blackholes(state):
    ppm = state["ppm"]
    admitted = _acl_atoms(state)
    reports = []
    for name in sorted(state["elements"]):
        dropped = set(ppm["ports"][name].get("drop", set())) & set(admitted[name])
        if dropped:
            reports.append((name, frozenset(dropped)))
    return reports


def update_rule(state, device, rule, operation):
    ppm = state["ppm"]
    element = state["elements"][device]
    if operation == "insert":
        changes = insert_rule(ppm["engine"], element, rule)
    elif operation == "remove":
        changes = remove_rule(ppm["engine"], element, rule)
    else:
        raise ValueError("operation must be insert or remove")
    apply_changes(ppm, device, changes)
    return changes


def merge_equivalent_atoms(state):
    ppm = state["ppm"]
    engine = ppm["engine"]
    by_profile = {}
    for atom_id in sorted(ppm["atoms"]):
        profile = tuple(sorted(ppm["locations"][atom_id].items()))
        by_profile.setdefault(profile, []).append(atom_id)
    merged = 0
    for group in by_profile.values():
        if len(group) < 2:
            continue
        keeper = group[0]
        union = ppm["atoms"][keeper]
        for atom_id in group[1:]:
            union = engine.or_(union, ppm["atoms"][atom_id])
            for element_name, port in ppm["locations"][atom_id].items():
                ppm["ports"][element_name][port].discard(atom_id)
            del ppm["atoms"][atom_id]
            del ppm["locations"][atom_id]
            merged += 1
        ppm["atoms"][keeper] = union
    return merged


def reachable(state, src, dst):
    ppm = state["ppm"]
    dataset = state["dataset"]
    admitted = _acl_atoms(state)
    labels = {}
    for name in state["elements"]:
        for port, atoms in ppm["ports"][name].items():
            labels[(name, port)] = frozenset(atoms)
    if src == dst:
        return frozenset(admitted[src])
    seen = {}
    arrived = set()
    queue = [(src, set(admitted[src]))]
    while queue:
        device, atoms = queue.pop(0)
        fresh = atoms - seen.setdefault(device, set())
        if not fresh:
            continue
        seen[device].update(fresh)
        if device == dst:
            arrived.update(fresh)
            continue
        for neighbor in dataset.topology.successors(device):
            label = labels.get((device, neighbor), frozenset())
            moving = fresh & label & admitted.get(neighbor, frozenset())
            if moving:
                queue.append((neighbor, moving))
    return frozenset(arrived)
'''


KNOWLEDGE = PaperKnowledge(
    paper_key="apkeep",
    components={
        "bdd_setup": ComponentKnowledge(
            component="bdd_setup",
            final_source=_BDD_SETUP_SOURCE,
            defects=(
                Defect(
                    kind=PromptKind.DEBUG_ERROR,
                    description=(
                        "the prefix loop iterated one bit too far; on a "
                        "full-length prefix the shift went negative."
                    ),
                    broken="for bit in range(prefix.length + 1):",
                    fixed="for bit in range(prefix.length):",
                    error_hint="negative shift count",
                ),
            ),
        ),
        "element_update": ComponentKnowledge(
            component="element_update",
            final_source=_ELEMENT_UPDATE_SOURCE,
            defects=(
                Defect(
                    kind=PromptKind.DEBUG_TESTCASE,
                    description=(
                        "the lower-priority branch never subtracted the new "
                        "rule's hit from the shadowed rule, so two rules "
                        "claimed the same packets."
                    ),
                    broken=(
                        "                if existing[\"port\"] != rule.port:\n"
                        "                    changes.append((inter, existing[\"port\"], rule.port))\n"
                        "                existing[\"hit\"] = existing[\"hit\"]"
                    ),
                    fixed=(
                        "                if existing[\"port\"] != rule.port:\n"
                        "                    changes.append((inter, existing[\"port\"], rule.port))\n"
                        "                existing[\"hit\"] = engine.diff(existing[\"hit\"], hit)"
                    ),
                    error_hint="hits must partition",
                ),
            ),
            text_style_defect=Defect(
                kind=PromptKind.DEBUG_ERROR,
                description=(
                    "without the pseudocode the reply modelled rules as "
                    "tuples and indexed them positionally."
                ),
                broken="    for existing in element[\"rules\"][0:]:\n        wins = (\n            existing.priority > rule.priority",
                fixed="    for existing in element[\"rules\"]:\n        wins = (\n            existing[\"priority\"] > rule.priority",
                error_hint="'dict' object has no attribute",
            ),
        ),
        "ppm_update": ComponentKnowledge(
            component="ppm_update",
            final_source=_PPM_UPDATE_SOURCE,
            defects=(
                Defect(
                    kind=PromptKind.DEBUG_LOGIC,
                    description=(
                        "a split atom was only registered with the element "
                        "being updated; every other element's port map must "
                        "also learn the new atom."
                    ),
                    broken=(
                        "    ppm[\"locations\"][new_id] = dict(ppm[\"locations\"][atom_id])\n"
                        "    for element_name, port in list(ppm[\"locations\"][new_id].items())[:0]:\n"
                        "        ppm[\"ports\"][element_name][port].add(new_id)"
                    ),
                    fixed=(
                        "    ppm[\"locations\"][new_id] = dict(ppm[\"locations\"][atom_id])\n"
                        "    for element_name, port in ppm[\"locations\"][new_id].items():\n"
                        "        ppm[\"ports\"][element_name][port].add(new_id)"
                    ),
                    error_hint="PPM ports must partition",
                ),
            ),
        ),
        "property_check": ComponentKnowledge(
            component="property_check",
            final_source=_PROPERTY_CHECK_SOURCE,
            defects=(
                Defect(
                    kind=PromptKind.DEBUG_ERROR,
                    description=(
                        "the replay loop called device.rules as a method; "
                        "it is a property."
                    ),
                    broken="        for rule in device.rules():",
                    fixed="        for rule in device.rules:",
                    error_hint="not callable",
                ),
            ),
        ),
    },
    overview_reply=(
        "APKeep maintains a port-predicate map and absorbs each rule update "
        "incrementally via its change set. Ready to implement component by "
        "component."
    ),
)


def _test_bdd_setup(module):
    from repro.netmodel.headerspace import HEADER_BITS, Prefix

    engine = module.make_engine()
    node = module.prefix_bdd(engine, Prefix.host(3))
    assert engine.satcount(node) == 1
    node = module.prefix_bdd(engine, Prefix(0, 2))
    assert engine.satcount(node) == 1 << (HEADER_BITS - 2)


def _test_element_update(module):
    from repro.netmodel.headerspace import Prefix
    from repro.netmodel.rules import ForwardingRule

    engine = module.make_engine()
    element = module.new_element("r1", "drop")
    module.insert_rule(engine, element, ForwardingRule.lpm(Prefix(0, 1), "a"))
    module.insert_rule(engine, element, ForwardingRule.lpm(Prefix(0, 2), "b"))
    module.insert_rule(engine, element, ForwardingRule.lpm(Prefix(0, 3), "a"))
    assert module.element_partition_ok(engine, element), (
        "rule hits must partition the header space"
    )


def _test_ppm_update(module):
    from repro.netmodel.headerspace import Prefix
    from repro.netmodel.rules import ForwardingRule

    engine = module.make_engine()
    ppm = module.new_ppm(engine)
    module.register_element(ppm, "r1", "drop")
    module.register_element(ppm, "r2", "drop")
    e1 = module.new_element("r1", "drop")
    e2 = module.new_element("r2", "drop")
    changes = module.insert_rule(engine, e1, ForwardingRule.lpm(Prefix(0, 1), "a"))
    module.apply_changes(ppm, "r1", changes)
    changes = module.insert_rule(engine, e2, ForwardingRule.lpm(Prefix(0, 2), "b"))
    module.apply_changes(ppm, "r2", changes)
    assert module.ppm_partition_ok(ppm, "r1"), (
        "PPM ports must partition the atom space on every element"
    )
    assert module.ppm_partition_ok(ppm, "r2"), (
        "PPM ports must partition the atom space on every element"
    )


def _test_property_check(module):
    from repro.apkeep import APKeepVerifier
    from repro.netmodel.datasets import build_verification_dataset, inject_loop

    dataset = build_verification_dataset("Internet2")
    state = module.build_network(dataset)
    reference = APKeepVerifier(dataset)
    assert module.count_atoms(state) == reference.num_atoms_minimal, (
        "atom count differs from the open-source prototype"
    )
    assert not module.find_loops(state), "clean dataset must be loop-free"
    looped, _ = inject_loop(dataset, seed=3)
    state2 = module.build_network(looped)
    assert module.find_loops(state2), "injected loop must be detected"


COMPONENT_TESTS = {
    "bdd_setup": _test_bdd_setup,
    "element_update": _test_element_update,
    "ppm_update": _test_ppm_update,
    "property_check": _test_property_check,
}

LOGIC_NOTES = {
    "ppm_update": (
        "(1) when an atom only partially overlaps a change, split it into "
        "inside and outside parts; (2) the outside part keeps the old atom "
        "id, the inside part gets a fresh id; (3) the fresh id must be "
        "added to the SAME port as the old atom on EVERY element (copy the "
        "old atom's locations), only then (4) move the fresh id between "
        "the two ports of the element being updated."
    ),
}
