"""Knowledge base: ARROW (participant B).

The generated prototype is faithful to the *paper text*, which is exactly
why its objective diverges from the open-source prototype by up to ~30%:
the paper presents restoration capacities as predefined parameters on
designated links and defines a restorable tunnel accordingly, while the
open-source implementation makes restoration a per-scenario decision
variable and keeps every tunnel alive.  The validator records that gap
(``open_source_gap``) rather than failing on it -- participant B's
finding, not a reproduction bug.

Seeded defects: demands iterated as a dict (unpack error), full-capacity
restoration instead of the designated fraction (failing test case), and a
flipped satisfaction constraint in the LP (complex logic bug that
silently admits unroutable demand).
"""

from __future__ import annotations

from repro.core.paper import ComponentSpec, PaperSpec, PseudocodeBlock
from repro.core.prompts import PromptKind
from repro.core.simulated import ComponentKnowledge, Defect, PaperKnowledge

PAPER = PaperSpec(
    key="arrow",
    title="ARROW: Restoration-Aware Traffic Engineering",
    venue="SIGCOMM",
    year=2021,
    system_summary=(
        "A TE system that plans tunnel flows to stay feasible under every "
        "fiber-cut scenario, counting the IP capacity that optical "
        "restoration brings back on the cut fiber."
    ),
    components=(
        ComponentSpec(
            name="tunnels",
            description=(
                "Compute up to K loop-free shortest tunnels per commodity "
                "over the IP topology."
            ),
            interfaces=(
                "build_tunnels(topology, traffic) -> {(src, dst): [paths]}",
            ),
        ),
        ComponentSpec(
            name="scenarios",
            description=(
                "Enumerate the failure scenarios: no-failure plus one "
                "scenario per (subsampled) fiber."
            ),
            interfaces=("build_scenarios(topology) -> [frozenset fibers]",),
        ),
        ComponentSpec(
            name="restoration",
            description=(
                "Per the paper: for each fiber, half of its links (a fixed, "
                "pre-designated set) can be restored at a fixed fraction of "
                "their capacity; a tunnel crossing the cut fiber survives "
                "only if all its cut links are designated."
            ),
            interfaces=(
                "designated_links(topology, fiber) -> set",
                "restored_capacity(capacity) -> float",
            ),
            depends_on=("scenarios",),
        ),
        ComponentSpec(
            name="lp_formulation",
            description=(
                "The robust LP: per-commodity admitted flow bounded by "
                "demand; per scenario, surviving tunnels must carry at "
                "least the admitted flow and per-link tunnel flow must fit "
                "the scenario's (restored) capacity; maximise total "
                "admitted flow."
            ),
            pseudocode=PseudocodeBlock(
                name="Restoration-aware TE LP",
                text=(
                    "maximize sum_k f_k, with f_k <= demand_k\n"
                    "for each scenario q:\n"
                    "    for each commodity k: sum of y[t, q] over surviving "
                    "tunnels t of k >= f_k\n"
                    "    for each link l: sum of y[t, q] over surviving "
                    "tunnels through l <= capacity_q(l)\n"
                    "capacity_q(l) = c_l if l survives, else the restored "
                    "fraction on designated links, else 0\n"
                ),
            ),
            interfaces=("solve_arrow(topology, traffic) -> objective",),
            depends_on=("tunnels", "scenarios", "restoration"),
        ),
    ),
    data_format_notes=(
        "TE instances are a Topology whose bidirectional links carry "
        "fiber_id tags, plus a TrafficMatrix of (src, dst) -> Mbps demands."
    ),
)


_TUNNELS_SOURCE = '''\
"""K-shortest tunnels per commodity."""

import networkx

NUM_TUNNELS = 3


def build_tunnels(topology, traffic):
    graph = topology.to_networkx()
    tunnels = {}
    for src, dst, demand in traffic.commodities():
        try:
            generator = networkx.shortest_simple_paths(graph, src, dst)
        except (networkx.NetworkXNoPath, networkx.NodeNotFound):
            continue
        paths = []
        try:
            for path in generator:
                paths.append(path)
                if len(paths) >= NUM_TUNNELS:
                    break
        except networkx.NetworkXNoPath:
            pass
        if paths:
            tunnels[(src, dst)] = paths
    return tunnels


def tunnel_stats(tunnels):
    total = 0
    hop_sum = 0
    shortest = None
    longest = 0
    for paths in tunnels.values():
        for path in paths:
            hops = len(path) - 1
            total += 1
            hop_sum += hops
            longest = max(longest, hops)
            if shortest is None or hops < shortest:
                shortest = hops
    return {
        "tunnels": total,
        "mean_hops": hop_sum / total if total else 0.0,
        "min_hops": shortest or 0,
        "max_hops": longest,
    }
'''


_SCENARIOS_SOURCE = '''\
"""Failure scenarios: no-failure plus one per subsampled fiber."""

SCENARIO_LIMIT = 12


def build_scenarios(topology):
    fibers = topology.fibers()
    if SCENARIO_LIMIT is not None and SCENARIO_LIMIT < len(fibers):
        stride = max(1, len(fibers) // SCENARIO_LIMIT)
        fibers = fibers[::stride][:SCENARIO_LIMIT]
    scenarios = [frozenset()]
    for fiber in fibers:
        scenarios.append(frozenset([fiber]))
    return scenarios
'''


_RESTORATION_SOURCE = '''\
"""Predefined restoration, as the paper describes it."""

import math

RESTORE_FRACTION = 0.5


def designated_links(topology, fiber):
    links = sorted(
        (link.src, link.dst) for link in topology.links_on_fiber(fiber)
    )
    keep = math.ceil(len(links) / 2)
    return set(links[:keep])


def restored_capacity(capacity):
    return RESTORE_FRACTION * capacity


def restoration_summary(topology):
    summary = {}
    for fiber in topology.fibers():
        designated = designated_links(topology, fiber)
        total = 0.0
        restored = 0.0
        for link in topology.links_on_fiber(fiber):
            total += link.capacity
            if (link.src, link.dst) in designated:
                restored += restored_capacity(link.capacity)
        summary[fiber] = {
            "links": len(topology.links_on_fiber(fiber)),
            "designated": len(designated),
            "capacity": total,
            "restorable_capacity": restored,
        }
    return summary
'''


_LP_SOURCE = '''\
"""The restoration-aware robust LP (paper-faithful variant)."""

from repro.lp.backends import FastLPBackend
from repro.lp.model import LinExpr, Model


def tunnel_links(path):
    return list(zip(path, path[1:]))


def tunnel_survives(topology, cut_fibers, path, designated):
    if not cut_fibers:
        return True
    for link_src, link_dst in tunnel_links(path):
        if topology.fiber_of(link_src, link_dst) in cut_fibers:
            if (link_src, link_dst) not in designated:
                return False
    return True


def solve_arrow(topology, traffic):
    tunnels = build_tunnels(topology, traffic)
    scenarios = build_scenarios(topology)
    model = Model("arrow")
    admitted = {}
    for key in sorted(tunnels):
        admitted[key] = model.add_var(upper=traffic.demand(key[0], key[1]))
    for scenario_id, cut_fibers in enumerate(scenarios):
        designated = set()
        for fiber in cut_fibers:
            designated |= designated_links(topology, fiber)
        link_usage = {}
        for key in sorted(tunnels):
            alive = []
            for path in tunnels[key]:
                if not tunnel_survives(topology, cut_fibers, path, designated):
                    continue
                var = model.add_var()
                alive.append(var)
                for link in tunnel_links(path):
                    expr = link_usage.setdefault(link, LinExpr())
                    expr += var
            model.add_constraint(LinExpr.sum_of(alive) >= admitted[key])
        for (link_src, link_dst), usage in sorted(link_usage.items()):
            capacity = topology.capacity(link_src, link_dst)
            if topology.fiber_of(link_src, link_dst) in cut_fibers:
                if (link_src, link_dst) in designated:
                    capacity = restored_capacity(capacity)
                else:
                    capacity = 0.0
            model.add_constraint(usage <= capacity)
    model.maximize(LinExpr.sum_of(admitted.values()))
    result = model.solve(backend=FastLPBackend())
    return result.objective if result.ok else 0.0


def solve_arrow_detailed(topology, traffic):
    tunnels = build_tunnels(topology, traffic)
    scenarios = build_scenarios(topology)
    model = Model("arrow-detailed")
    admitted = {}
    for key in sorted(tunnels):
        admitted[key] = model.add_var(upper=traffic.demand(key[0], key[1]))
    tunnel_vars = {}
    for scenario_id, cut_fibers in enumerate(scenarios):
        designated = set()
        for fiber in cut_fibers:
            designated |= designated_links(topology, fiber)
        link_usage = {}
        for key in sorted(tunnels):
            alive = []
            for index, path in enumerate(tunnels[key]):
                if not tunnel_survives(topology, cut_fibers, path, designated):
                    continue
                var = model.add_var()
                alive.append(var)
                tunnel_vars[(scenario_id, key, index)] = var
                for link in tunnel_links(path):
                    expr = link_usage.setdefault(link, LinExpr())
                    expr += var
            model.add_constraint(LinExpr.sum_of(alive) >= admitted[key])
        for (link_src, link_dst), usage in sorted(link_usage.items()):
            capacity = topology.capacity(link_src, link_dst)
            if topology.fiber_of(link_src, link_dst) in cut_fibers:
                if (link_src, link_dst) in designated:
                    capacity = restored_capacity(capacity)
                else:
                    capacity = 0.0
            model.add_constraint(usage <= capacity)
    model.maximize(LinExpr.sum_of(admitted.values()))
    result = model.solve(backend=FastLPBackend())
    if not result.ok:
        return {
            "objective": 0.0,
            "admitted": {},
            "satisfied_fraction": 0.0,
            "tunnel_flows": {},
        }
    flows = {}
    for key in sorted(tunnels):
        flows[key] = result.value_of(admitted[key])
    tunnel_flows = {}
    for (scenario_id, key, index), var in tunnel_vars.items():
        value = result.value_of(var)
        if value > 1e-9:
            tunnel_flows[(scenario_id, key, index)] = value
    total_demand = sum(
        traffic.demand(src, dst) for src, dst in tunnels
    )
    fraction = result.objective / total_demand if total_demand else 0.0
    return {
        "objective": result.objective,
        "admitted": flows,
        "satisfied_fraction": fraction,
        "tunnel_flows": tunnel_flows,
    }


def max_link_utilization(topology, tunnel_flows, tunnels, scenario_id=0):
    usage = {}
    for (sid, key, index), value in tunnel_flows.items():
        if sid != scenario_id:
            continue
        for link in tunnel_links(tunnels[key][index]):
            usage[link] = usage.get(link, 0.0) + value
    worst = 0.0
    for (link_src, link_dst), used in usage.items():
        capacity = topology.capacity(link_src, link_dst)
        if capacity > 0:
            worst = max(worst, used / capacity)
    return worst
'''


KNOWLEDGE = PaperKnowledge(
    paper_key="arrow",
    components={
        "tunnels": ComponentKnowledge(
            component="tunnels",
            final_source=_TUNNELS_SOURCE,
            defects=(
                Defect(
                    kind=PromptKind.DEBUG_ERROR,
                    description=(
                        "the demand loop iterated the demands dict directly, "
                        "unpacking two-element keys into three names."
                    ),
                    broken="for src, dst, demand in traffic.demands:",
                    fixed="for src, dst, demand in traffic.commodities():",
                    error_hint="not enough values to unpack",
                ),
            ),
        ),
        "scenarios": ComponentKnowledge(
            component="scenarios",
            final_source=_SCENARIOS_SOURCE,
            defects=(),
        ),
        "restoration": ComponentKnowledge(
            component="restoration",
            final_source=_RESTORATION_SOURCE,
            defects=(
                Defect(
                    kind=PromptKind.DEBUG_TESTCASE,
                    description=(
                        "restoration returned the full link capacity; the "
                        "paper restores only a fraction of it."
                    ),
                    broken="    return 1.0 * capacity",
                    fixed="    return RESTORE_FRACTION * capacity",
                    error_hint="restored capacity",
                ),
            ),
        ),
        "lp_formulation": ComponentKnowledge(
            component="lp_formulation",
            final_source=_LP_SOURCE,
            defects=(
                Defect(
                    kind=PromptKind.DEBUG_LOGIC,
                    description=(
                        "the satisfaction constraint was written as 'alive "
                        "tunnel flow at most the admitted flow', which lets "
                        "the LP admit demand no tunnel can carry; it must be "
                        "at least the admitted flow."
                    ),
                    broken="model.add_constraint(LinExpr.sum_of(alive) <= admitted[key])",
                    fixed="model.add_constraint(LinExpr.sum_of(alive) >= admitted[key])",
                    error_hint="admits unroutable demand",
                ),
            ),
            text_style_defect=Defect(
                kind=PromptKind.DEBUG_ERROR,
                description=(
                    "without the pseudocode the reply indexed the traffic "
                    "matrix like a dict of dicts."
                ),
                broken="admitted[key] = model.add_var(upper=traffic[key[0]][key[1]])",
                fixed="admitted[key] = model.add_var(upper=traffic.demand(key[0], key[1]))",
                error_hint="not subscriptable",
            ),
        ),
    },
    overview_reply=(
        "ARROW plans tunnel flows that stay feasible under fiber cuts, "
        "counting optically restored capacity. Ready to implement component "
        "by component."
    ),
)


def _test_tunnels(module):
    from repro.netmodel.instances import make_te_instance

    instance = make_te_instance("B4", max_commodities=20)
    tunnels = module.build_tunnels(instance.topology, instance.traffic)
    assert tunnels, "no tunnels built"
    for (src, dst), paths in tunnels.items():
        assert 1 <= len(paths) <= 3
        for path in paths:
            assert path[0] == src and path[-1] == dst


def _test_scenarios(module):
    from repro.netmodel.instances import make_te_instance

    instance = make_te_instance("B4", max_commodities=20)
    scenarios = module.build_scenarios(instance.topology)
    assert scenarios[0] == frozenset(), "first scenario must be no-failure"
    assert len(scenarios) <= 13
    assert all(len(s) == 1 for s in scenarios[1:])


def _test_restoration(module):
    from repro.netmodel.instances import make_te_instance

    instance = make_te_instance("B4", max_commodities=20)
    fiber = instance.topology.fibers()[0]
    designated = module.designated_links(instance.topology, fiber)
    on_fiber = instance.topology.links_on_fiber(fiber)
    assert 0 < len(designated) <= len(on_fiber)
    restored = module.restored_capacity(1000.0)
    assert abs(restored - 500.0) < 1e-9, (
        f"restored capacity must be half the link capacity, got {restored}"
    )


def _test_lp_formulation(module):
    from repro.netmodel.topology import Topology
    from repro.netmodel.traffic import TrafficMatrix

    # One commodity, one path, on a single fiber with NO designated
    # survival for the second direction: cutting the only fiber must
    # zero the admitted flow.
    topo = Topology("line")
    for node in ("a", "b"):
        topo.add_node(node)
    topo.add_bidi_link("a", "b", 100.0)
    traffic = TrafficMatrix({("a", "b"): 50.0})
    objective = module.solve_arrow(topo, traffic)
    # a->b is the designated half of the fiber, so restoration keeps half
    # the capacity: the admitted flow survives at 50 (demand-bound).
    assert objective <= 50.0 + 1e-6, (
        f"LP admits unroutable demand: {objective}"
    )
    # Now demand above the restored capacity: the cut scenario binds.
    traffic = TrafficMatrix({("a", "b"): 90.0})
    objective = module.solve_arrow(topo, traffic)
    assert objective <= 50.0 + 1e-6, (
        f"LP admits unroutable demand: objective {objective} exceeds the "
        "restored capacity 50"
    )


COMPONENT_TESTS = {
    "tunnels": _test_tunnels,
    "scenarios": _test_scenarios,
    "restoration": _test_restoration,
    "lp_formulation": _test_lp_formulation,
}

LOGIC_NOTES = {
    "lp_formulation": (
        "(1) f_k is the flow the commodity is promised in EVERY scenario; "
        "(2) in each scenario the surviving tunnels together must carry at "
        "least f_k, so the constraint is sum of y[t, q] >= f_k; (3) "
        "writing <= lets the LP set y to zero and still admit f_k, which "
        "is wrong."
    ),
}
