"""Knowledge base: NCFlow (participant A).

The generated prototype mirrors participant A's session: the same
contract-and-decompose algorithm as the open-source prototype, but the
LPs go through the *PuLP-style* slow backend (serialise to LP text, round
trip, dual simplex) -- the paper blames exactly this toolchain choice for
the up-to-111x end-to-end latency gap -- and the partition comes from
label propagation rather than the prototype's tuned partitioner, which is
where the small objective differences (max 3.51% in the paper) come from.

Seeded defects: a demand dict passed where a float bound belongs (runtime
type error), communities returned unmerged (failing test case), and a
``max`` where the segment-combination ``min`` belongs (complex logic bug
that silently *overestimates* the objective -- caught by comparing
against the optimal baseline, which is how A validated).
"""

from __future__ import annotations

from repro.core.paper import ComponentSpec, PaperSpec, PseudocodeBlock
from repro.core.prompts import PromptKind
from repro.core.simulated import ComponentKnowledge, Defect, PaperKnowledge

PAPER = PaperSpec(
    key="ncflow",
    title="Contracting Wide-area Network Topologies to Solve Flow Problems Quickly",
    venue="NSDI",
    year=2021,
    system_summary=(
        "A TE solver that partitions the WAN into clusters, solves a max "
        "flow on the contracted graph and small per-cluster flow problems, "
        "and combines them into an always-feasible end-to-end allocation."
    ),
    components=(
        ComponentSpec(
            name="lp_utils",
            description=(
                "A path-formulation max-flow LP helper on top of the PuLP "
                "toolchain: given link capacities, per-commodity candidate "
                "paths and demands, maximise total routed flow."
            ),
            interfaces=(
                "solve_path_lp(link_capacity, commodity_paths, demands)"
                " -> (objective, {key: [flow per path]})",
            ),
        ),
        ComponentSpec(
            name="partition",
            description=(
                "Partition the nodes into about sqrt(n) connected clusters "
                "using label-propagation communities, splitting disconnected "
                "communities and merging adjacent small ones."
            ),
            interfaces=("partition_nodes(topology, k=None) -> {node: cid}",),
        ),
        ComponentSpec(
            name="contraction",
            description=(
                "Contract the WAN: aggregate inter-cluster link capacity per "
                "ordered cluster pair and remember the physical border links."
            ),
            interfaces=(
                "contract(topology, cluster_of) -> (agg_capacity, border_links)",
            ),
            depends_on=("partition",),
        ),
        ComponentSpec(
            name="decomposition",
            description=(
                "The full solver: bundle demands per cluster pair, solve the "
                "contracted max flow (R1), allocate bundle flow onto border "
                "links in proportion to capacity, route each cluster's "
                "transit segments and intra-cluster demands in a per-cluster "
                "LP (R2), and combine each bundle path at the minimum "
                "fraction achieved along its clusters; repeat once on the "
                "residual capacity."
            ),
            pseudocode=PseudocodeBlock(
                name="NCFlow decomposition",
                text=(
                    "partition nodes into clusters\n"
                    "for iteration in 1..2:\n"
                    "    contract the (residual) WAN\n"
                    "    R1: max flow over the contracted graph\n"
                    "    allocate contracted-edge flow to border links "
                    "proportionally to capacity\n"
                    "    R2: per cluster, route transit segments (a single "
                    "scale variable each) and intra demands\n"
                    "    realized(bundle path) = R1 flow * MIN cluster "
                    "fraction\n"
                    "    subtract used capacity and satisfied demand\n"
                    "return total realized flow\n"
                ),
            ),
            interfaces=(
                "solve_ncflow(topology, traffic) -> objective",
            ),
            depends_on=("lp_utils", "partition", "contraction"),
        ),
    ),
    data_format_notes=(
        "TE instances are a Topology (directed capacitated links) plus a "
        "TrafficMatrix mapping (src, dst) node pairs to Mbps demands."
    ),
)


_LP_UTILS_SOURCE = '''\
"""Path-formulation max-flow LP on the PuLP-style toolchain."""

from repro.lp.backends import SlowLPBackend
from repro.lp.model import LinExpr, Model


def solve_path_lp(link_capacity, commodity_paths, demands):
    model = Model("maxflow")
    usage = {}
    path_vars = {}
    for key in sorted(commodity_paths):
        commodity_vars = []
        for path in commodity_paths[key]:
            var = model.add_var(upper=demands[key])
            commodity_vars.append(var)
            for hop_a, hop_b in zip(path, path[1:]):
                expr = usage.setdefault((hop_a, hop_b), LinExpr())
                expr += var
        path_vars[key] = commodity_vars
        model.add_constraint(LinExpr.sum_of(commodity_vars) <= demands[key])
    for edge in sorted(usage):
        model.add_constraint(usage[edge] <= link_capacity[edge])
    model.maximize(
        LinExpr.sum_of(v for vs in path_vars.values() for v in vs)
    )
    result = model.solve(backend=SlowLPBackend())
    if not result.ok:
        return 0.0, {key: [0.0] * len(vs) for key, vs in path_vars.items()}
    flows = {
        key: [result.value_of(v) for v in vs]
        for key, vs in path_vars.items()
    }
    return result.objective, flows
'''


_PARTITION_SOURCE = '''\
"""Label-propagation partitioning into connected clusters."""

import math

import networkx


def partition_nodes(topology, k=None):
    undirected = topology.to_networkx().to_undirected()
    target = k or max(2, int(round(math.sqrt(topology.num_nodes))))
    communities = list(
        networkx.algorithms.community.asyn_lpa_communities(undirected, seed=7)
    )
    groups = []
    for community in communities:
        sub = undirected.subgraph(community)
        for component in networkx.connected_components(sub):
            groups.append(set(component))
    groups = merge_adjacent(groups, undirected, target)
    return groups_to_clusters(groups)


def modularity_partition_nodes(topology, k=None):
    undirected = topology.to_networkx().to_undirected()
    target = k or max(2, int(round(math.sqrt(topology.num_nodes))))
    communities = list(
        networkx.algorithms.community.greedy_modularity_communities(
            undirected, cutoff=min(target, topology.num_nodes)
        )
    )
    groups = []
    for community in communities:
        sub = undirected.subgraph(community)
        for component in networkx.connected_components(sub):
            groups.append(set(component))
    groups = merge_adjacent(groups, undirected, target)
    return groups_to_clusters(groups)


def partition_candidates(topology, k=None):
    return [
        modularity_partition_nodes(topology, k),
        partition_nodes(topology, k),
    ]


def groups_to_clusters(groups):
    cluster_of = {}
    for cid, group in enumerate(sorted(groups, key=lambda g: sorted(g)[0])):
        for node in group:
            cluster_of[node] = cid
    return cluster_of


def merge_adjacent(groups, undirected, target):
    while len(groups) > target:
        groups.sort(key=lambda g: (len(g), sorted(g)[0]))
        smallest = groups.pop(0)
        best_index, best_weight = 0, -1
        for index, other in enumerate(groups):
            weight = sum(
                1 for u in smallest for v in undirected.neighbors(u) if v in other
            )
            if weight > best_weight:
                best_index, best_weight = index, weight
        groups[best_index] = groups[best_index] | smallest
    return groups
'''


_CONTRACTION_SOURCE = '''\
"""Topology contraction: aggregated capacities plus border links."""


def contract(topology, cluster_of):
    agg_capacity = {}
    border_links = {}
    for link in topology.links():
        cluster_a = cluster_of[link.src]
        cluster_b = cluster_of[link.dst]
        if cluster_a == cluster_b:
            continue
        key = (cluster_a, cluster_b)
        agg_capacity[key] = agg_capacity.get(key, 0.0) + link.capacity
        border_links.setdefault(key, []).append(
            (link.src, link.dst, link.capacity)
        )
    return agg_capacity, border_links
'''

_CONTRACTION_DEFECT = Defect(
    kind=PromptKind.DEBUG_ERROR,
    description=(
        "the aggregate accumulator indexed a key that does not exist "
        "yet on the first crossing link."
    ),
    broken="        agg_capacity[key] = agg_capacity[key] + link.capacity",
    fixed="        agg_capacity[key] = agg_capacity.get(key, 0.0) + link.capacity",
    error_hint="KeyError",
)


_DECOMPOSITION_SOURCE = '''\
"""The contract-and-decompose solver."""

import networkx

from repro.lp.backends import SlowLPBackend
from repro.lp.model import LinExpr, Model

NUM_PATHS = 4
NUM_ITERATIONS = 2
EPS = 1e-6


def cluster_paths(agg_capacity, src, dst, k):
    graph = networkx.DiGraph()
    for (cluster_a, cluster_b), capacity in agg_capacity.items():
        graph.add_edge(cluster_a, cluster_b, capacity=capacity)
    if src not in graph or dst not in graph:
        return []
    try:
        generator = networkx.shortest_simple_paths(graph, src, dst)
    except networkx.NetworkXNoPath:
        return []
    paths = []
    try:
        for path in generator:
            paths.append(path)
            if len(paths) >= k:
                break
    except networkx.NetworkXNoPath:
        pass
    return paths


def solve_r1(agg_capacity, bundle_demand):
    commodity_paths = {}
    demands = {}
    for bundle in sorted(bundle_demand):
        paths = cluster_paths(agg_capacity, bundle[0], bundle[1], NUM_PATHS)
        if paths:
            commodity_paths[bundle] = paths
            demands[bundle] = bundle_demand[bundle]
    objective, flows = solve_path_lp(agg_capacity, commodity_paths, demands)
    result = {}
    for bundle, paths in commodity_paths.items():
        for index, path in enumerate(paths):
            flow = flows[bundle][index]
            if flow > EPS:
                result[(bundle, index)] = (path, flow)
    return result


def border_allocation(border_links, cluster_a, cluster_b, flow):
    links = border_links[(cluster_a, cluster_b)]
    cap_sum = sum(capacity for _, _, capacity in links)
    exits, entries, usage = {}, {}, {}
    if cap_sum <= 0.0:
        return exits, entries, usage
    for link_src, link_dst, capacity in links:
        share = flow * capacity / cap_sum
        exits[link_src] = exits.get(link_src, 0.0) + share
        entries[link_dst] = entries.get(link_dst, 0.0) + share
        usage[(link_src, link_dst)] = share
    return exits, entries, usage


def solve_r2(members, capacity, segments, intra):
    model = Model("r2")
    edges = sorted(
        edge for edge in capacity
        if edge[0] in members and edge[1] in members
    )
    usage = {edge: LinExpr() for edge in edges}
    objective = LinExpr()
    phi_vars = []
    seg_flows = []
    for supply, sink, flow in segments:
        phi = model.add_var(upper=1.0)
        phi_vars.append(phi)
        flow_vars = {edge: model.add_var() for edge in edges}
        seg_flows.append(flow_vars)
        for edge, var in flow_vars.items():
            usage[edge] += var
        for node in sorted(members):
            balance = LinExpr()
            for edge in edges:
                if edge[1] == node:
                    balance += flow_vars[edge]
                elif edge[0] == node:
                    balance -= flow_vars[edge]
            net = supply.get(node, 0.0) - sink.get(node, 0.0)
            if net != 0.0:
                balance += net * phi
            model.add_constraint(balance.equals(0.0))
        objective += flow * phi
    intra_vars = []
    intra_flows = []
    for (src, dst), demand in intra:
        delivered = model.add_var(upper=demand)
        intra_vars.append(delivered)
        flow_vars = {edge: model.add_var() for edge in edges}
        intra_flows.append(flow_vars)
        for edge, var in flow_vars.items():
            usage[edge] += var
        for node in sorted(members):
            balance = LinExpr()
            for edge in edges:
                if edge[1] == node:
                    balance += flow_vars[edge]
                elif edge[0] == node:
                    balance -= flow_vars[edge]
            if node == src:
                balance += delivered
            elif node == dst:
                balance -= delivered
            model.add_constraint(balance.equals(0.0))
        objective += delivered
    for edge in edges:
        if usage[edge].coefs:
            model.add_constraint(usage[edge] <= capacity[edge])
    model.maximize(objective)
    result = model.solve(backend=SlowLPBackend())
    if not result.ok:
        return [0.0] * len(phi_vars), [0.0] * len(intra_vars), {}
    fractions = [result.value_of(phi) for phi in phi_vars]
    delivered = [result.value_of(var) for var in intra_vars]
    edge_usage = {}
    for flow_vars in seg_flows + intra_flows:
        for edge, var in flow_vars.items():
            value = result.value_of(var)
            if value > EPS:
                edge_usage[edge] = edge_usage.get(edge, 0.0) + value
    return fractions, delivered, edge_usage


def solve_ncflow(topology, traffic):
    best = 0.0
    for cluster_of in partition_candidates(topology):
        objective = solve_with_clusters(topology, traffic, cluster_of)
        if objective > best:
            best = objective
    return best


def solve_with_clusters(topology, traffic, cluster_of):
    clusters = sorted(set(cluster_of.values()))
    members_of = {
        cid: {node for node, c in cluster_of.items() if c == cid}
        for cid in clusters
    }
    capacity = {
        (link.src, link.dst): link.capacity for link in topology.links()
    }
    remaining = {
        (src, dst): amount
        for (src, dst), amount in traffic.demands.items()
        if amount > EPS
    }
    total_objective = 0.0
    for _ in range(NUM_ITERATIONS):
        bundle_demand = {}
        bundle_members = {}
        intra = {}
        for (src, dst), amount in sorted(remaining.items()):
            if amount <= EPS:
                continue
            key = (cluster_of[src], cluster_of[dst])
            if key[0] == key[1]:
                intra.setdefault(key[0], []).append(((src, dst), amount))
            else:
                bundle_demand[key] = bundle_demand.get(key, 0.0) + amount
                bundle_members.setdefault(key, []).append(((src, dst), amount))
        agg_capacity, border_links = contract_with_capacity(
            topology, cluster_of, capacity
        )
        r1_flows = solve_r1(agg_capacity, bundle_demand)

        segments = {cid: [] for cid in clusters}
        for (bundle, index), (path, flow) in sorted(r1_flows.items()):
            total = sum(amount for _, amount in bundle_members[bundle])
            allocations = [
                border_allocation(border_links, a, b, flow)
                for a, b in zip(path, path[1:])
            ]
            for position, cid in enumerate(path):
                if position == 0:
                    supply = {}
                    for (src, _), amount in bundle_members[bundle]:
                        supply[src] = supply.get(src, 0.0) + flow * amount / total
                else:
                    supply = dict(allocations[position - 1][1])
                if position == len(path) - 1:
                    sink = {}
                    for (_, dst), amount in bundle_members[bundle]:
                        sink[dst] = sink.get(dst, 0.0) + flow * amount / total
                else:
                    sink = dict(allocations[position][0])
                segments[cid].append(
                    ((bundle, index), supply, sink, flow)
                )

        fractions = {}
        cluster_results = []
        iteration_objective = 0.0
        for cid in clusters:
            cluster_segments = segments[cid]
            cluster_intra = intra.get(cid, [])
            if not cluster_segments and not cluster_intra:
                continue
            seg_input = [
                (supply, sink, flow)
                for _, supply, sink, flow in cluster_segments
            ]
            phi_values, delivered, edge_usage = solve_r2(
                members_of[cid], capacity, seg_input, cluster_intra
            )
            cluster_results.append(
                (cid, cluster_segments, phi_values, edge_usage)
            )
            for (key, _, _, _), phi in zip(cluster_segments, phi_values):
                fractions[key] = min(fractions.get(key, 1.0), phi)
            for ((src, dst), _), amount in zip(cluster_intra, delivered):
                iteration_objective += amount
                remaining[(src, dst)] = max(
                    0.0, remaining.get((src, dst), 0.0) - amount
                )

        # Subtract the full LP usage inside each cluster.  The realized
        # segment flows are at most what the LP routed, so this is
        # conservative and keeps every iteration feasible.
        for cid, cluster_segments, phi_values, edge_usage in cluster_results:
            for edge, used in edge_usage.items():
                capacity[edge] = max(0.0, capacity[edge] - used)

        for (bundle, index), (path, flow) in sorted(r1_flows.items()):
            fraction = fractions.get((bundle, index), 0.0)
            realized = flow * fraction
            if realized <= EPS:
                continue
            iteration_objective += realized
            total = bundle_demand[bundle]
            for (src, dst), amount in bundle_members[bundle]:
                share = realized * amount / total
                remaining[(src, dst)] = max(
                    0.0, remaining.get((src, dst), 0.0) - share
                )
            for hop_a, hop_b in zip(path, path[1:]):
                _, _, usage = border_allocation(
                    border_links, hop_a, hop_b, realized
                )
                for edge, used in usage.items():
                    capacity[edge] = max(0.0, capacity[edge] - used)

        total_objective += iteration_objective
        if iteration_objective <= EPS:
            break
    return total_objective


def contract_with_capacity(topology, cluster_of, capacity):
    agg_capacity = {}
    border_links = {}
    for (link_src, link_dst), cap in capacity.items():
        cluster_a = cluster_of[link_src]
        cluster_b = cluster_of[link_dst]
        if cluster_a == cluster_b:
            continue
        key = (cluster_a, cluster_b)
        agg_capacity[key] = agg_capacity.get(key, 0.0) + cap
        border_links.setdefault(key, []).append((link_src, link_dst, cap))
    return agg_capacity, border_links
'''


KNOWLEDGE = PaperKnowledge(
    paper_key="ncflow",
    components={
        "lp_utils": ComponentKnowledge(
            component="lp_utils",
            final_source=_LP_UTILS_SOURCE,
            defects=(
                Defect(
                    kind=PromptKind.DEBUG_ERROR,
                    description=(
                        "the variable bound received the whole demand dict "
                        "instead of the commodity's demand."
                    ),
                    broken="var = model.add_var(upper=demands)",
                    fixed="var = model.add_var(upper=demands[key])",
                    error_hint="not supported between instances",
                ),
            ),
        ),
        "partition": ComponentKnowledge(
            component="partition",
            final_source=_PARTITION_SOURCE,
            defects=(
                Defect(
                    kind=PromptKind.DEBUG_TESTCASE,
                    description=(
                        "the communities were returned as-is; they must be "
                        "merged down to the target cluster count."
                    ),
                    broken="groups = merge_adjacent(groups, undirected, len(groups))",
                    fixed="groups = merge_adjacent(groups, undirected, target)",
                    error_hint="too many clusters",
                ),
            ),
        ),
        "contraction": ComponentKnowledge(
            component="contraction",
            final_source=_CONTRACTION_SOURCE,
            defects=(_CONTRACTION_DEFECT,),
        ),
        "decomposition": ComponentKnowledge(
            component="decomposition",
            final_source=_DECOMPOSITION_SOURCE,
            defects=(
                Defect(
                    kind=PromptKind.DEBUG_LOGIC,
                    description=(
                        "segments were combined at the MAXIMUM fraction over "
                        "the clusters on the path; a bundle path is only as "
                        "wide as its narrowest segment, so it must be the "
                        "minimum."
                    ),
                    broken="fractions[key] = max(fractions.get(key, 1.0), phi)",
                    fixed="fractions[key] = min(fractions.get(key, 1.0), phi)",
                    error_hint="exceeds the optimal baseline",
                ),
            ),
            text_style_defect=Defect(
                kind=PromptKind.DEBUG_ERROR,
                description=(
                    "without the pseudocode the reply treated the traffic "
                    "matrix as a plain dict instead of using .demands."
                ),
                broken="        for (src, dst), amount in sorted(traffic.items()):",
                fixed="        for (src, dst), amount in sorted(remaining.items()):",
                error_hint="has no attribute 'items'",
            ),
        ),
    },
    overview_reply=(
        "NCFlow contracts the WAN into clusters and replaces one huge flow "
        "LP with small ones per cluster. Ready to implement component by "
        "component."
    ),
)


def _toy_topology():
    from repro.netmodel.topology import Topology

    topo = Topology("toy")
    for node in "abcdef":
        topo.add_node(node)
    topo.add_bidi_link("a", "b", 10.0)
    topo.add_bidi_link("b", "c", 10.0)
    topo.add_bidi_link("c", "d", 10.0)
    topo.add_bidi_link("d", "e", 10.0)
    topo.add_bidi_link("e", "f", 10.0)
    topo.add_bidi_link("f", "a", 10.0)
    topo.add_bidi_link("b", "e", 5.0)
    return topo


def _test_lp_utils(module):
    objective, flows = module.solve_path_lp(
        {("a", "b"): 10.0, ("b", "c"): 5.0},
        {("a", "c"): [["a", "b", "c"]]},
        {("a", "c"): 8.0},
    )
    assert abs(objective - 5.0) < 1e-6, f"expected 5.0, got {objective}"


def _test_partition(module):
    import math

    from repro.netmodel.topozoo import make_topology

    topology = make_topology("Kdl")
    cluster_of = module.partition_nodes(topology)
    target = max(2, int(round(math.sqrt(topology.num_nodes))))
    count = len(set(cluster_of.values()))
    assert count <= target, f"too many clusters: {count} > {target}"
    assert set(cluster_of) == set(topology.nodes)


def _test_contraction(module):
    topo = _toy_topology()
    cluster_of = {"a": 0, "b": 0, "c": 1, "d": 1, "e": 1, "f": 0}
    agg, border = module.contract(topo, cluster_of)
    # Crossing links are b->c (10), b->e (5) and f->e (10).
    assert agg[(0, 1)] == 25.0, f"aggregate capacity wrong: {agg}"
    assert len(border[(0, 1)]) == 3
    assert agg[(1, 0)] == 25.0


def _test_decomposition(module):
    from repro.netmodel.instances import make_te_instance
    from repro.te import solve_max_flow

    instance = make_te_instance(
        "Uninett2010", max_commodities=50, total_demand_fraction=0.2
    )
    objective = module.solve_ncflow(instance.topology, instance.traffic)
    optimal = solve_max_flow(instance.topology, instance.traffic)
    assert objective > 0, "no flow admitted"
    assert objective <= optimal.objective * 1.01, (
        f"objective {objective:.1f} exceeds the optimal baseline "
        f"{optimal.objective:.1f}"
    )


COMPONENT_TESTS = {
    "lp_utils": _test_lp_utils,
    "partition": _test_partition,
    "contraction": _test_contraction,
    "decomposition": _test_decomposition,
}

LOGIC_NOTES = {
    "decomposition": (
        "(1) every bundle path crosses several clusters; (2) each cluster "
        "routes a scaled copy of the planned border amounts and reports "
        "the fraction it achieved; (3) the path's end-to-end flow equals "
        "the R1 flow times the MINIMUM fraction over its clusters, because "
        "the narrowest segment limits the whole path; (4) use min, never "
        "max, when combining the fractions."
    ),
}
