"""Knowledge base: the rock-paper-scissors motivating example.

Two components (server, client) over loopback TCP sockets, mirroring the
paper's Figure 3 (which uses ``SOCK_STREAM`` despite the prose saying
UDP).  The client's first draft lacks input validation; the fourth prompt
of the motivating session adds it -- giving the paper's four-prompt
conversation shape with a correct 93-LoC program at the end.
"""

from __future__ import annotations

from repro.core.paper import ComponentSpec, PaperSpec
from repro.core.prompts import PromptKind
from repro.core.simulated import ComponentKnowledge, Defect, PaperKnowledge

PAPER = PaperSpec(
    key="rps",
    title="Rock-paper-scissors over sockets (motivating example)",
    venue="(none)",
    year=2023,
    system_summary=(
        "A server and a client that connect over loopback sockets and play "
        "rock-paper-scissors round by round until the client disconnects."
    ),
    components=(
        ComponentSpec(
            name="server",
            description=(
                "A socket server that accepts one client, picks its own move "
                "each round, judges the round and reports the result."
            ),
            interfaces=(
                "run_server(host, port, max_rounds=None, ready=None) -> [results]",
            ),
        ),
        ComponentSpec(
            name="client",
            description=(
                "A socket client that sends the player's moves (P/R/S, D to "
                "disconnect) and prints the server's verdicts."
            ),
            interfaces=(
                "run_client(host, port, moves=None) -> [results]",
                "validate_input(guess) -> str",
            ),
            depends_on=("server",),
        ),
    ),
    data_format_notes="Moves are single letters: P, R, S, or D to disconnect.",
)


_SERVER_SOURCE = '''\
"""Rock-paper-scissors server (TCP, as in the paper's Figure 3)."""

import socket

BEATS = {"R": "S", "P": "R", "S": "P"}
SERVER_MOVES = ["R", "P", "S"]


def judge(server_move, client_move):
    if server_move == client_move:
        return "tie"
    if BEATS[server_move] == client_move:
        return "server"
    return "client"


def run_server(host, port, max_rounds=None, ready=None):
    server_socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server_socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server_socket.bind((host, port))
    server_socket.listen(1)
    if ready is not None:
        ready(server_socket.getsockname()[1])
    print("Server is running...")
    results = []
    score = {"server": 0, "client": 0, "tie": 0}
    round_number = 0
    client_socket, addr = server_socket.accept()
    print("Connected to", addr)
    while True:
        client_message = client_socket.recv(1024).decode("utf-8")
        if not client_message or client_message == "D":
            print("Client disconnected.")
            break
        server_move = SERVER_MOVES[round_number % len(SERVER_MOVES)]
        round_number += 1
        result = judge(server_move, client_message)
        results.append(result)
        score[result] += 1
        print("Round", round_number, "server:", server_move,
              "client:", client_message, "->", result)
        reply = server_move + ":" + result
        client_socket.sendall(reply.encode("utf-8"))
        if max_rounds is not None and round_number >= max_rounds:
            break
    print("Final score:", score)
    client_socket.close()
    server_socket.close()
    return results


def main():
    host = "127.0.0.1"
    port = 12345
    print("Starting server on", host, "port", port)
    results = run_server(host, port)
    print("Game over after", len(results), "rounds.")


if __name__ == "__main__":
    main()
'''


_CLIENT_SOURCE = '''\
"""Rock-paper-scissors client."""

import socket

VALID_MOVES = ("P", "R", "S", "D")


def validate_input(guess):
    guess = guess.strip().upper()
    while guess not in VALID_MOVES:
        guess = input("Invalid move, enter P/R/S or D: ").strip().upper()
    return guess


def run_client(host, port, moves=None):
    client_socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    client_socket.connect((host, port))
    print("Connected to the server.")
    scripted = list(moves) if moves is not None else None
    results = []
    while True:
        if scripted is not None:
            if not scripted:
                break
            guess = scripted.pop(0)
        else:
            guess = input(
                "Enter your guess (P/R/S for paper/rock/scissors, "
                "or D to disconnect): "
            )
        guess = validate_input(guess)
        client_socket.sendall(guess.encode("utf-8"))
        if guess == "D":
            break
        reply = client_socket.recv(1024).decode("utf-8")
        if not reply:
            break
        server_move, result = reply.split(":")
        print("Server played", server_move, "->", result)
        results.append(result)
    client_socket.close()
    return results


def main():
    host = "127.0.0.1"
    port = 12345
    print("Connecting to", host, "port", port)
    results = run_client(host, port)
    print("You played", len(results), "rounds.")


if __name__ == "__main__":
    main()
'''


KNOWLEDGE = PaperKnowledge(
    paper_key="rps",
    components={
        "server": ComponentKnowledge(
            component="server",
            final_source=_SERVER_SOURCE,
            defects=(),
        ),
        "client": ComponentKnowledge(
            component="client",
            final_source=_CLIENT_SOURCE,
            defects=(
                Defect(
                    kind=PromptKind.DEBUG_TESTCASE,
                    description=(
                        "the client passed moves through unvalidated; "
                        "lowercase or padded input reached the server as-is."
                    ),
                    broken=(
                        "def validate_input(guess):\n"
                        "    return guess\n"
                        "    guess = guess.strip().upper()"
                    ),
                    fixed=(
                        "def validate_input(guess):\n"
                        "    guess = guess.strip().upper()"
                    ),
                    error_hint="validate",
                ),
            ),
        ),
    },
    overview_reply=(
        "A small client/server game over sockets; the server judges each "
        "round. Happy to write both programs."
    ),
)


def _test_server(module):
    assert module.judge("R", "R") == "tie"
    assert module.judge("R", "S") == "server"
    assert module.judge("R", "P") == "client"


def _test_client(module):
    assert module.validate_input(" p ") == "P", (
        "validate_input must strip and uppercase the move"
    )
    assert module.validate_input("D") == "D"


COMPONENT_TESTS = {
    "server": _test_server,
    "client": _test_client,
}

LOGIC_NOTES = {}
