"""LLM client abstraction: sessions, responses, code artifacts.

:class:`LLMClient` is the seam between the reproduction pipeline and any
language model.  The offline :class:`~repro.core.simulated.SimulatedLLM`
implements it; a thin wrapper over a real chat API could too -- the
pipeline only ever calls :meth:`LLMClient.chat`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.prompts import Prompt


@dataclass(frozen=True)
class CodeArtifact:
    """One generated piece of code."""

    component: str
    language: str
    source: str
    revision: int

    @property
    def loc(self) -> int:
        from repro.core.metrics import count_loc

        return count_loc(self.source)


@dataclass
class LLMResponse:
    """One assistant reply: prose plus zero or more code artifacts.

    ``truncated`` marks a reply that arrived cut short (a real API can
    set it from a stop reason; the fault injector sets it when chaos
    truncates a response).  :class:`~repro.resilience.ResilientLLMClient`
    degrades truncated replies into a re-prompt.
    """

    text: str
    artifacts: List[CodeArtifact] = field(default_factory=list)
    truncated: bool = False

    @property
    def has_code(self) -> bool:
        return bool(self.artifacts)


@dataclass
class TranscriptEntry:
    """One prompt/response exchange, timestamped for the session log."""

    prompt: Prompt
    response: LLMResponse
    timestamp: float


class ChatSession:
    """A conversation with an LLM: history plus Figure 4 counters."""

    def __init__(self, name: str = "session"):
        self.name = name
        self.transcript: List[TranscriptEntry] = []

    def record(self, prompt: Prompt, response: LLMResponse) -> None:
        self.transcript.append(
            TranscriptEntry(prompt, response, time.time())
        )

    @property
    def num_prompts(self) -> int:
        return len(self.transcript)

    @property
    def total_words(self) -> int:
        return sum(entry.prompt.word_count for entry in self.transcript)

    def prompts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.transcript:
            kind = entry.prompt.kind.value
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def latest_artifact(self, component: str) -> Optional[CodeArtifact]:
        for entry in reversed(self.transcript):
            for artifact in entry.response.artifacts:
                if artifact.component == component:
                    return artifact
        return None


class LLMClient:
    """Interface the pipeline talks to."""

    name = "abstract-llm"

    def chat(self, session: ChatSession, prompt: Prompt) -> LLMResponse:
        """Process ``prompt`` in ``session``; implementations must call
        :meth:`ChatSession.record` with the exchange before returning."""
        raise NotImplementedError
