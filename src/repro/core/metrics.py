"""Metrics: lines of code, prompt counts, reproduction reports.

Figure 4 of the paper counts prompts and words per participant; Figure 5
compares the LoC of reproduced prototypes against the open-source ones.
These helpers produce exactly those quantities.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Dict, List


def count_loc(source: str) -> int:
    """Non-blank, non-comment physical lines (the usual LoC convention)."""
    count = 0
    in_docstring = False
    delimiter = ""
    for raw_line in source.splitlines():
        line = raw_line.strip()
        if in_docstring:
            if delimiter in line:
                in_docstring = False
            continue
        if not line or line.startswith("#"):
            continue
        for quote in ('"""', "'''"):
            if line.startswith(quote):
                remainder = line[len(quote):]
                if quote not in remainder:
                    in_docstring = True
                    delimiter = quote
                break
        else:
            count += 1
    return count


def count_module_loc(module) -> int:
    """LoC of an importable module's source file."""
    source = inspect.getsource(module)
    return count_loc(source)


def count_package_loc(package) -> int:
    """Total LoC across a package's modules (non-recursive submodules).

    Used to size the "open-source prototype" (this repository's reference
    implementation) for the Figure 5 comparison.
    """
    import importlib
    import pkgutil

    total = count_module_loc(package)
    if hasattr(package, "__path__"):
        for info in pkgutil.iter_modules(package.__path__):
            module = importlib.import_module(f"{package.__name__}.{info.name}")
            if hasattr(module, "__path__"):
                total += count_package_loc(module)
            else:
                total += count_module_loc(module)
    return total


@dataclass
class ComponentOutcome:
    """Per-component record inside a reproduction report."""

    name: str
    revisions: int
    debug_rounds: int
    final_loc: int
    passed: bool


@dataclass
class ReproductionReport:
    """Everything the experiment measures about one reproduction run."""

    paper_key: str
    participant: str
    style: str
    num_prompts: int
    total_prompt_words: int
    components: List[ComponentOutcome] = field(default_factory=list)
    reproduced_loc: int = 0
    reference_loc: int = 0
    assembled: bool = False
    validation_passed: bool = False
    validation_details: Dict[str, object] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.assembled and self.validation_passed

    @property
    def loc_ratio(self) -> float:
        """Reproduced LoC as a fraction of the reference prototype LoC."""
        if self.reference_loc <= 0:
            return 0.0
        return self.reproduced_loc / self.reference_loc

    def summary_row(self) -> str:
        status = "ok" if self.succeeded else "FAILED"
        return (
            f"{self.paper_key:<8} {self.participant:<3} {self.style:<18} "
            f"prompts={self.num_prompts:<4} words={self.total_prompt_words:<6} "
            f"loc={self.reproduced_loc}/{self.reference_loc} "
            f"({self.loc_ratio * 100:.0f}%) {status}"
        )
