"""Metrics: lines of code, prompt counts, reproduction reports.

Figure 4 of the paper counts prompts and words per participant; Figure 5
compares the LoC of reproduced prototypes against the open-source ones.
These helpers produce exactly those quantities.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Dict, List


def count_loc(source: str) -> int:
    """Non-blank, non-comment physical lines (the usual LoC convention).

    Docstrings (triple-quoted strings that open with no code before them
    on the line) do not count; triple-quoted strings that are part of an
    expression (``x = '''...'''``) do.  Code sharing a line with a
    docstring delimiter -- ``\"\"\"one-liner\"\"\" code`` or a closing
    delimiter followed by a statement -- is counted.
    """
    count = 0
    in_string = False  # inside a triple-quoted string spanning lines
    delimiter = ""
    is_docstring = False  # the open string started with no code before it
    for raw_line in source.splitlines():
        line = raw_line.strip()
        pos = 0
        code_seen = False
        if in_string:
            idx = line.find(delimiter)
            if idx < 0:
                # Continuation lines of an expression string are code.
                if not is_docstring and line:
                    count += 1
                continue
            code_seen = not is_docstring
            pos = idx + len(delimiter)
            in_string = False
        while pos < len(line):
            char = line[pos]
            if char in " \t":
                pos += 1
                continue
            if char == "#":
                break
            triple = line[pos:pos + 3]
            if triple in ('"""', "'''"):
                end = line.find(triple, pos + 3)
                if end < 0:
                    in_string = True
                    delimiter = triple
                    is_docstring = not code_seen
                    break
                if code_seen:
                    pass  # expression string: the line already counts
                pos = end + 3
                continue
            if char in "\"'":
                # Ordinary string literal: skip so '#' or quotes inside
                # it are not misread.
                code_seen = True
                pos += 1
                while pos < len(line):
                    if line[pos] == "\\":
                        pos += 2
                        continue
                    if line[pos] == char:
                        pos += 1
                        break
                    pos += 1
                continue
            code_seen = True
            pos += 1
        if code_seen:
            count += 1
    return count


def count_module_loc(module) -> int:
    """LoC of an importable module's source file."""
    source = inspect.getsource(module)
    return count_loc(source)


def count_package_loc(package) -> int:
    """Total LoC across a package's modules (non-recursive submodules).

    Used to size the "open-source prototype" (this repository's reference
    implementation) for the Figure 5 comparison.
    """
    import importlib
    import pkgutil

    total = count_module_loc(package)
    if hasattr(package, "__path__"):
        for info in pkgutil.iter_modules(package.__path__):
            module = importlib.import_module(f"{package.__name__}.{info.name}")
            if hasattr(module, "__path__"):
                total += count_package_loc(module)
            else:
                total += count_module_loc(module)
    return total


@dataclass
class ComponentOutcome:
    """Per-component record inside a reproduction report."""

    name: str
    revisions: int
    debug_rounds: int
    final_loc: int
    passed: bool


@dataclass
class ReproductionReport:
    """Everything the experiment measures about one reproduction run."""

    paper_key: str
    participant: str
    style: str
    num_prompts: int
    total_prompt_words: int
    components: List[ComponentOutcome] = field(default_factory=list)
    reproduced_loc: int = 0
    reference_loc: int = 0
    assembled: bool = False
    validation_passed: bool = False
    validation_details: Dict[str, object] = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: Per-run telemetry (prompt counts, debug rounds, per-step seconds)
    #: recorded by the pipeline's obs spans, so reports and benchmarks
    #: can export measurements without re-timing anything.
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return self.assembled and self.validation_passed

    @property
    def loc_ratio(self) -> float:
        """Reproduced LoC as a fraction of the reference prototype LoC."""
        if self.reference_loc <= 0:
            return 0.0
        return self.reproduced_loc / self.reference_loc

    def summary_row(self) -> str:
        status = "ok" if self.succeeded else "FAILED"
        return (
            f"{self.paper_key:<8} {self.participant:<3} {self.style:<18} "
            f"prompts={self.num_prompts:<4} words={self.total_prompt_words:<6} "
            f"loc={self.reproduced_loc}/{self.reference_loc} "
            f"({self.loc_ratio * 100:.0f}%) {status}"
        )
