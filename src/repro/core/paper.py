"""Structured models of the papers being reproduced.

A :class:`PaperSpec` is what a participant distils out of a publication
before prompting: the component breakdown, each component's description,
its pseudocode if the paper gives any (the part "closest to the real
code", per lesson 2 of section 3.3), the interfaces between components,
and hints about input data formats (lesson 3: data preprocessing is
important to the system but absent from the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class PseudocodeBlock:
    """A pseudocode listing from the paper (e.g. APKeep's Algorithm 1)."""

    name: str
    text: str

    @property
    def num_lines(self) -> int:
        return len([line for line in self.text.splitlines() if line.strip()])


@dataclass(frozen=True)
class ComponentSpec:
    """One system component a participant asks the LLM to implement."""

    name: str
    description: str
    pseudocode: Optional[PseudocodeBlock] = None
    interfaces: tuple = ()
    depends_on: tuple = ()

    @property
    def has_pseudocode(self) -> bool:
        return self.pseudocode is not None


@dataclass(frozen=True)
class PaperSpec:
    """Everything the framework needs to know about one paper."""

    key: str
    title: str
    venue: str
    year: int
    system_summary: str
    components: tuple  # of ComponentSpec, in dependency order
    data_format_notes: str = ""
    language: str = "python"

    def component(self, name: str) -> ComponentSpec:
        for component in self.components:
            if component.name == name:
                return component
        raise KeyError(f"paper {self.key!r} has no component {name!r}")

    @property
    def component_names(self) -> List[str]:
        return [component.name for component in self.components]

    def validate_dependency_order(self) -> None:
        """Components must be listed after everything they depend on."""
        seen: set = set()
        for component in self.components:
            missing = [dep for dep in component.depends_on if dep not in seen]
            if missing:
                raise ValueError(
                    f"component {component.name!r} depends on {missing} "
                    "which appear later (or never) in the spec"
                )
            seen.add(component.name)
