"""Structured paper documents: the semi-automatic front end of section 4.

The paper sketches a (semi-)automatic prompt-engineering framework whose
first step extracts a system's architecture, components and pseudocode
from the publication.  A real deployment would put an LLM there; this
module provides the deterministic equivalent: a light markdown-flavoured
*paper document* format that humans (or an upstream model) write, and a
parser that turns it into the :class:`~repro.core.paper.PaperSpec` the
pipeline consumes.  ``render_paperdoc`` is the exact inverse, so specs
and documents round-trip.

Format::

    # <title>
    key: <paper key>
    venue: <venue>
    year: <year>
    language: <language>

    summary: <one-paragraph system summary>

    data-formats: <notes on input data formats>

    ## component: <name>
    depends: <comma-separated names>        (optional)
    <free-text description over one or more lines>

    interfaces:
    - <signature>
    - <signature>

    pseudocode <listing name>:
        <indented pseudocode lines>
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.core.paper import ComponentSpec, PaperSpec, PseudocodeBlock


class PaperDocError(ValueError):
    """Raised on malformed paper documents."""


_HEADER_KEYS = ("key", "venue", "year", "language")


def parse_paperdoc(text: str) -> PaperSpec:
    """Parse a paper document into a :class:`PaperSpec`."""
    lines = text.splitlines()
    title = None
    header: Dict[str, str] = {}
    summary_parts: List[str] = []
    data_format_parts: List[str] = []
    components: List[ComponentSpec] = []

    index = 0
    mode = "header"  # header -> summary/data until first component
    current: Optional[Dict] = None

    def flush_component():
        nonlocal current
        if current is None:
            return
        pseudocode = None
        if current["pseudocode_lines"]:
            pseudocode = PseudocodeBlock(
                name=current["pseudocode_name"],
                text="\n".join(current["pseudocode_lines"]) + "\n",
            )
        components.append(
            ComponentSpec(
                name=current["name"],
                description=" ".join(current["description"]).strip(),
                pseudocode=pseudocode,
                interfaces=tuple(current["interfaces"]),
                depends_on=tuple(current["depends"]),
            )
        )
        current = None

    sub_mode = None  # None | "interfaces" | "pseudocode"
    while index < len(lines):
        raw = lines[index]
        line = raw.rstrip()
        stripped = line.strip()
        index += 1

        if stripped.startswith("# ") and title is None:
            title = stripped[2:].strip()
            continue
        if stripped.startswith("## component:"):
            flush_component()
            name = stripped.split(":", 1)[1].strip()
            if not name:
                raise PaperDocError("component heading without a name")
            current = {
                "name": name,
                "description": [],
                "interfaces": [],
                "depends": [],
                "pseudocode_name": "",
                "pseudocode_lines": [],
            }
            sub_mode = None
            continue

        if current is None:
            # Document header / preamble.
            match = re.match(r"^(\w[\w-]*):\s*(.*)$", stripped)
            if match and match.group(1) in _HEADER_KEYS:
                header[match.group(1)] = match.group(2).strip()
                continue
            if stripped.startswith("summary:"):
                summary_parts.append(stripped.split(":", 1)[1].strip())
                mode = "summary"
                continue
            if stripped.startswith("data-formats:"):
                data_format_parts.append(stripped.split(":", 1)[1].strip())
                mode = "data-formats"
                continue
            if stripped:
                if mode == "summary":
                    summary_parts.append(stripped)
                elif mode == "data-formats":
                    data_format_parts.append(stripped)
            continue

        # Inside a component.
        if stripped.startswith("depends:"):
            names = stripped.split(":", 1)[1]
            current["depends"] = [
                n.strip() for n in names.split(",") if n.strip()
            ]
            sub_mode = None
            continue
        if stripped == "interfaces:":
            sub_mode = "interfaces"
            continue
        match = re.match(r"^pseudocode\s+(.*):$", stripped)
        if match:
            current["pseudocode_name"] = match.group(1).strip()
            sub_mode = "pseudocode"
            continue
        if sub_mode == "interfaces":
            if stripped.startswith("- "):
                current["interfaces"].append(stripped[2:].strip())
                continue
            sub_mode = None  # fall through to description handling
        if sub_mode == "pseudocode":
            if raw.startswith("    ") or not stripped:
                if stripped or current["pseudocode_lines"]:
                    current["pseudocode_lines"].append(raw[4:])
                continue
            sub_mode = None
        if stripped:
            current["description"].append(stripped)

    flush_component()

    if title is None:
        raise PaperDocError("paper document must start with '# <title>'")
    for required in ("key", "venue", "year"):
        if required not in header:
            raise PaperDocError(f"missing header field {required!r}")
    if not components:
        raise PaperDocError("paper document defines no components")

    # Trim trailing blank pseudocode lines captured by the block scanner.
    spec = PaperSpec(
        key=header["key"],
        title=title,
        venue=header["venue"],
        year=int(header["year"]),
        system_summary=" ".join(summary_parts).strip(),
        components=tuple(components),
        data_format_notes=" ".join(data_format_parts).strip(),
        language=header.get("language", "python"),
    )
    spec.validate_dependency_order()
    return spec


def lint_spec(spec: PaperSpec) -> List[str]:
    """Flag the gaps that bit the paper's participants (section 4).

    Returns human-readable warnings: components without pseudocode (the
    LLM will improvise data types -- lesson 2), components without
    declared interfaces (interop breakage between components), missing
    data-format notes (lesson 3), and suspiciously thin descriptions
    (missing details like AP's unstated selective-BFS, participant D's
    10^4x trap).
    """
    warnings: List[str] = []
    if not spec.data_format_notes:
        warnings.append(
            "no data-format notes: input preprocessing is usually absent "
            "from papers but essential to the system (lesson 3)"
        )
    for component in spec.components:
        prefix = f"component {component.name!r}"
        if not component.interfaces:
            warnings.append(
                f"{prefix}: no interfaces declared; later components may "
                "not interoperate without rework"
            )
        if component.pseudocode is None:
            warnings.append(
                f"{prefix}: no pseudocode; generated data types and "
                "structures may drift between prompts (lesson 2)"
            )
        if len(component.description.split()) < 8:
            warnings.append(
                f"{prefix}: description is very short; missing algorithmic "
                "details push the LLM toward naive strategies (cf. the "
                "paper's participant D)"
            )
        if component.pseudocode is not None and component.pseudocode.num_lines < 2:
            warnings.append(
                f"{prefix}: pseudocode is only a single line; consider "
                "expanding it"
            )
    return warnings


def render_paperdoc(spec: PaperSpec) -> str:
    """Render a :class:`PaperSpec` back into the document format."""
    lines: List[str] = [f"# {spec.title}"]
    lines.append(f"key: {spec.key}")
    lines.append(f"venue: {spec.venue}")
    lines.append(f"year: {spec.year}")
    lines.append(f"language: {spec.language}")
    lines.append("")
    lines.append(f"summary: {spec.system_summary}")
    if spec.data_format_notes:
        lines.append("")
        lines.append(f"data-formats: {spec.data_format_notes}")
    for component in spec.components:
        lines.append("")
        lines.append(f"## component: {component.name}")
        if component.depends_on:
            lines.append(f"depends: {', '.join(component.depends_on)}")
        lines.append(component.description)
        if component.interfaces:
            lines.append("")
            lines.append("interfaces:")
            for interface in component.interfaces:
                lines.append(f"- {interface}")
        if component.pseudocode is not None:
            lines.append("")
            lines.append(f"pseudocode {component.pseudocode.name}:")
            for code_line in component.pseudocode.text.rstrip("\n").splitlines():
                lines.append(f"    {code_line}")
    lines.append("")
    return "\n".join(lines)
