"""The unified top-down reproduction pipeline (paper section 4).

Drives an :class:`~repro.core.llm.LLMClient` through the six-step
workflow: overview, interfaces, per-component generate/test/debug, data
preprocessing, assembly, and system validation.  All Figure 4 quantities
(prompts, words) fall out of the session transcript; all Figure 5
quantities (LoC) fall out of the final artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.core.assembly import AssemblyError, assemble_module
from repro.core.debugging import DebugPolicy, describe_failure
from repro.core.llm import ChatSession, CodeArtifact, LLMClient, LLMResponse
from repro.resilience.errors import RESILIENCE_ERRORS
from repro.core.metrics import ComponentOutcome, ReproductionReport
from repro.core.paper import PaperSpec
from repro.core.prompts import PromptBuilder, PromptStyle

#: A validator takes the assembled module and returns (passed, details).
Validator = Callable[[object], Tuple[bool, Dict[str, object]]]
#: A component test takes the assembled-so-far module and raises on failure.
ComponentTest = Callable[[object], None]


@dataclass
class PipelineConfig:
    """Tunable workflow parameters."""

    style: PromptStyle = PromptStyle.MODULAR_PSEUDOCODE
    max_debug_rounds: int = 6
    send_overview: bool = True
    send_interfaces: bool = True
    send_data_format: bool = True


class ReproductionPipeline:
    """One reproduction attempt of one paper by one participant."""

    def __init__(
        self,
        llm: LLMClient,
        paper: PaperSpec,
        component_tests: Optional[Dict[str, ComponentTest]] = None,
        logic_notes: Optional[Dict[str, str]] = None,
        validator: Optional[Validator] = None,
        participant: str = "X",
        config: Optional[PipelineConfig] = None,
        reference_loc: int = 0,
    ):
        paper.validate_dependency_order()
        self.llm = llm
        self.paper = paper
        self.component_tests = component_tests or {}
        self.logic_notes = logic_notes or {}
        self.validator = validator
        self.participant = participant
        self.config = config or PipelineConfig()
        self.reference_loc = reference_loc
        self.session = ChatSession(f"{participant}:{paper.key}")
        self.builder = PromptBuilder(paper)
        self.artifacts: Dict[str, CodeArtifact] = {}
        self.failures: List[str] = []
        self.step_seconds: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def _chat(self, prompt) -> Optional[LLMResponse]:
        """Chat with the LLM, degrading resilience failures to ``None``.

        A chat that still fails after the retry/breaker layer gave up
        (injected faults, exhausted retries, an open circuit) must not
        kill the whole reproduction run: the caller treats ``None`` as
        "the LLM returned nothing", the component burns its debug
        budget, and the pipeline moves on -- a failed
        :class:`ComponentOutcome`, not a crash.
        """
        try:
            return self.llm.chat(self.session, prompt)
        except RESILIENCE_ERRORS as exc:
            self.failures.append(f"llm: {describe_failure(exc)}")
            obs.metrics.counter("pipeline.llm_failures").inc()
            return None

    # ------------------------------------------------------------------
    def run(self) -> ReproductionReport:
        with obs.span(
            "pipeline.run",
            paper=self.paper.key,
            participant=self.participant,
            style=self.config.style.value,
        ) as sp:
            if self.config.style is PromptStyle.MONOLITHIC:
                report = self._run_monolithic()
            else:
                report = self._run_modular()
        report.wall_seconds = sp.duration
        report.metrics["seconds.total"] = sp.duration
        return report

    # ------------------------------------------------------------------
    def _run_monolithic(self) -> ReproductionReport:
        """The approach that fails (kept for the ablation benchmark)."""
        with obs.span("pipeline.generate", component="monolithic") as sp:
            response = self._chat(self.builder.monolithic())
        self.step_seconds["components"] = sp.duration
        outcomes: List[ComponentOutcome] = []
        assembled = False
        validation_passed = False
        details: Dict[str, object] = {}
        if response is not None and response.has_code:
            artifact = response.artifacts[0]
            self.artifacts[artifact.component] = artifact
            try:
                module = assemble_module([artifact], "monolithic_attempt")
                if self.validator is not None:
                    validation_passed, details = self.validator(module)
                assembled = True
            except AssemblyError as exc:
                details = {"assembly_error": str(exc)}
            except Exception as exc:  # validator crashed on the sketch
                details = {"validation_error": describe_failure(exc)}
            outcomes.append(
                ComponentOutcome(
                    name=artifact.component,
                    revisions=1,
                    debug_rounds=0,
                    final_loc=artifact.loc,
                    passed=validation_passed,
                )
            )
        return self._report(outcomes, assembled, validation_passed, details)

    # ------------------------------------------------------------------
    def _run_modular(self) -> ReproductionReport:
        if self.config.send_overview:
            with obs.span("pipeline.overview") as sp:
                self._chat(self.builder.system_overview())
            self.step_seconds["overview"] = sp.duration
        if self.config.send_interfaces:
            with obs.span("pipeline.interfaces") as sp:
                self._chat(self.builder.interfaces())
            self.step_seconds["interfaces"] = sp.duration

        policy = DebugPolicy(self.builder, self.logic_notes)
        outcomes: List[ComponentOutcome] = []
        with obs.span("pipeline.components") as sp:
            for component in self.paper.components:
                outcome = self._build_component(component.name, policy)
                outcomes.append(outcome)
        self.step_seconds["components"] = sp.duration

        if self.config.send_data_format and self.paper.data_format_notes:
            with obs.span("pipeline.data_format") as sp:
                self._chat(self.builder.data_format())
            self.step_seconds["data_format"] = sp.duration

        assembled = False
        validation_passed = False
        details: Dict[str, object] = {}
        ordered = [
            self.artifacts[c.name]
            for c in self.paper.components
            if c.name in self.artifacts
        ]
        with obs.span("pipeline.assembly", artifacts=len(ordered)) as sp:
            try:
                module = assemble_module(ordered, f"reproduced_{self.paper.key}")
                assembled = True
            except AssemblyError as exc:
                details = {"assembly_error": str(exc)}
                module = None
        self.step_seconds["assembly"] = sp.duration
        with obs.span("pipeline.validation") as sp:
            if module is not None and self.validator is not None:
                try:
                    validation_passed, details = self.validator(module)
                except Exception as exc:
                    details = {"validation_error": describe_failure(exc)}
            elif module is not None:
                validation_passed = all(outcome.passed for outcome in outcomes)
            sp.set(passed=validation_passed)
        self.step_seconds["validation"] = sp.duration
        return self._report(outcomes, assembled, validation_passed, details)

    # ------------------------------------------------------------------
    def _build_component(self, name: str, policy: DebugPolicy) -> ComponentOutcome:
        spec = self.paper.component(name)
        with obs.span("pipeline.component", component=name) as component_span:
            with obs.span("pipeline.generate", component=name):
                prompt = self.builder.component(spec, self.config.style)
                response = self._chat(prompt)
            artifact = self._artifact_from(response, name)
            revisions = 1
            debug_rounds = 0
            with obs.span("pipeline.test", component=name):
                failure = self._test_component(name, artifact)
            while failure is not None and debug_rounds < self.config.max_debug_rounds:
                with obs.span(
                    "pipeline.debug", component=name, round=debug_rounds + 1
                ):
                    debug_prompt = policy.next_prompt(name, failure)
                    response = self._chat(debug_prompt)
                new_artifact = self._artifact_from(response, name)
                if new_artifact is not None:
                    artifact = new_artifact
                    revisions += 1
                debug_rounds += 1
                with obs.span("pipeline.test", component=name):
                    failure = self._test_component(name, artifact)
            component_span.set(debug_rounds=debug_rounds, passed=failure is None)
        if failure is not None:
            self.failures.append(f"{name}: {describe_failure(failure)}")
        if artifact is not None:
            self.artifacts[name] = artifact
        return ComponentOutcome(
            name=name,
            revisions=revisions,
            debug_rounds=debug_rounds,
            final_loc=artifact.loc if artifact is not None else 0,
            passed=failure is None,
        )

    def _artifact_from(self, response, name: str) -> Optional[CodeArtifact]:
        if response is None:
            return None
        for artifact in response.artifacts:
            if artifact.component == name:
                return artifact
        return None

    def _test_component(
        self, name: str, artifact: Optional[CodeArtifact]
    ) -> Optional[BaseException]:
        """Run the participant's test for ``name``; None means pass."""
        if artifact is None:
            return RuntimeError(f"the LLM returned no code for {name!r}")
        test = self.component_tests.get(name)
        dependencies = [
            self.artifacts[c.name]
            for c in self.paper.components
            if c.name in self.artifacts and c.name != name
        ]
        try:
            module = assemble_module(
                dependencies + [artifact], f"test_{self.paper.key}_{name}"
            )
        except AssemblyError as exc:
            cause = exc.__cause__
            return cause if cause is not None else exc
        if test is None:
            return None
        try:
            test(module)
        except BaseException as exc:  # participants catch everything
            return exc
        return None

    # ------------------------------------------------------------------
    def _report(
        self,
        outcomes: List[ComponentOutcome],
        assembled: bool,
        validation_passed: bool,
        details: Dict[str, object],
    ) -> ReproductionReport:
        reproduced_loc = sum(artifact.loc for artifact in self.artifacts.values())
        debug_rounds = sum(outcome.debug_rounds for outcome in outcomes)
        run_metrics: Dict[str, float] = {
            "prompts": self.session.num_prompts,
            "prompt_words": self.session.total_words,
            "components": len(outcomes),
            "components_passed": sum(1 for o in outcomes if o.passed),
            "debug_rounds": debug_rounds,
            "revisions": sum(outcome.revisions for outcome in outcomes),
            "llm_failures": sum(
                1 for failure in self.failures if failure.startswith("llm: ")
            ),
        }
        for step, seconds in self.step_seconds.items():
            run_metrics[f"seconds.{step}"] = seconds
        obs.metrics.counter("pipeline.runs").inc()
        obs.metrics.counter("pipeline.prompts").inc(self.session.num_prompts)
        obs.metrics.counter("pipeline.debug_rounds").inc(debug_rounds)
        for outcome in outcomes:
            obs.metrics.histogram(
                "pipeline.debug_rounds_per_component",
                buckets=(0, 1, 2, 3, 4, 5, 6, 8, 10),
            ).observe(outcome.debug_rounds)
        return ReproductionReport(
            paper_key=self.paper.key,
            participant=self.participant,
            style=self.config.style.value,
            num_prompts=self.session.num_prompts,
            total_prompt_words=self.session.total_words,
            components=outcomes,
            reproduced_loc=reproduced_loc,
            reference_loc=self.reference_loc,
            assembled=assembled,
            validation_passed=validation_passed,
            validation_details=details,
            metrics=run_metrics,
        )
