"""Prompt construction for the reproduction workflow.

Prompts are plain text; the framework tracks how many were sent and how
many words they contain, because Figure 4 of the paper reports exactly
those two quantities per participant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.paper import ComponentSpec, PaperSpec


class PromptStyle(enum.Enum):
    """How a system is presented to the LLM (section 3.3 lessons)."""

    #: One prompt describing the whole system ("implement XX that works
    #: in the following steps...").  The paper found LLMs do not respond
    #: well to these.
    MONOLITHIC = "monolithic"
    #: One prompt per component, described in prose.
    MODULAR_TEXT = "modular-text"
    #: One prompt per component, built around the paper's pseudocode
    #: (stabilises data types and structures across components).
    MODULAR_PSEUDOCODE = "modular-pseudocode"


class PromptKind(enum.Enum):
    """What a prompt asks for (used by the simulated LLM's dispatcher)."""

    SYSTEM_OVERVIEW = "system-overview"
    INTERFACES = "interfaces"
    GENERATE = "generate"
    DATA_FORMAT = "data-format"
    DEBUG_ERROR = "debug-error"
    DEBUG_TESTCASE = "debug-testcase"
    DEBUG_LOGIC = "debug-logic"


@dataclass(frozen=True)
class Prompt:
    """One message sent to the LLM."""

    text: str
    kind: PromptKind
    component: Optional[str] = None
    style: Optional[PromptStyle] = None

    @property
    def word_count(self) -> int:
        return len(self.text.split())


class PromptBuilder:
    """Builds the framework's prompts for one paper."""

    def __init__(self, paper: PaperSpec):
        self.paper = paper

    # -- step 1: system overview ---------------------------------------
    def system_overview(self) -> Prompt:
        names = ", ".join(self.paper.component_names)
        text = (
            f"I want to reproduce the system from the paper "
            f"'{self.paper.title}' ({self.paper.venue} {self.paper.year}). "
            f"{self.paper.system_summary} "
            f"The system has these components: {names}. "
            f"We will implement them one by one in {self.paper.language}. "
            f"Do not write code yet; confirm you understand the design."
        )
        return Prompt(text, PromptKind.SYSTEM_OVERVIEW)

    # -- step 2: interfaces --------------------------------------------
    def interfaces(self) -> Prompt:
        lines = []
        for component in self.paper.components:
            if component.interfaces:
                lines.append(
                    f"{component.name}: " + "; ".join(component.interfaces)
                )
        text = (
            "Define the interfaces between the components so they "
            "interoperate without data type changes later. "
            "Use these signatures: " + " | ".join(lines)
        )
        return Prompt(text, PromptKind.INTERFACES)

    # -- monolithic (the approach that fails) ---------------------------
    def monolithic(self) -> Prompt:
        steps = " then ".join(
            component.description for component in self.paper.components
        )
        text = (
            f"Implement {self.paper.title} in {self.paper.language}. "
            f"It works in the following steps: {steps}. "
            "Write the complete implementation in one reply."
        )
        return Prompt(text, PromptKind.GENERATE, style=PromptStyle.MONOLITHIC)

    # -- step 3: per-component generation --------------------------------
    def component(self, component: ComponentSpec, style: PromptStyle) -> Prompt:
        if style is PromptStyle.MONOLITHIC:
            raise ValueError("use monolithic() for whole-system prompts")
        parts = [
            f"Now implement the component '{component.name}' in "
            f"{self.paper.language}. {component.description}"
        ]
        if component.depends_on:
            parts.append(
                "It must interoperate with the already-implemented "
                "components: " + ", ".join(component.depends_on) + "."
            )
        if style is PromptStyle.MODULAR_PSEUDOCODE and component.has_pseudocode:
            parts.append(
                f"Base the implementation on this pseudocode from the "
                f"paper ({component.pseudocode.name}):\n"
                f"{component.pseudocode.text}"
            )
        if component.interfaces:
            parts.append("Expose exactly: " + "; ".join(component.interfaces))
        return Prompt(
            " ".join(parts), PromptKind.GENERATE, component.name, style
        )

    # -- data preprocessing (lesson 3) ------------------------------------
    def data_format(self) -> Prompt:
        text = (
            "The paper does not describe the input data format. "
            f"Here is what the datasets look like: {self.paper.data_format_notes} "
            "Add the preprocessing code needed to parse this format."
        )
        return Prompt(text, PromptKind.DATA_FORMAT)

    # -- debugging guidelines (lesson 4) ----------------------------------
    def debug_error(self, component: str, error_message: str) -> Prompt:
        text = (
            f"Running {component} raised this error, please fix the code: "
            f"{error_message}"
        )
        return Prompt(text, PromptKind.DEBUG_ERROR, component)

    def debug_testcase(self, component: str, case_description: str) -> Prompt:
        text = (
            f"{component} returns the wrong output on this test case, "
            f"please fix the logic: {case_description}"
        )
        return Prompt(text, PromptKind.DEBUG_TESTCASE, component)

    def debug_logic(self, component: str, correct_logic: str) -> Prompt:
        text = (
            f"{component} is still wrong. The correct logic, step by "
            f"step, is: {correct_logic} Rewrite the code to follow these "
            "steps exactly."
        )
        return Prompt(text, PromptKind.DEBUG_LOGIC, component)
