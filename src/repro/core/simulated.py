"""A deterministic, offline stand-in for ChatGPT.

No LLM API is reachable in this environment, so the experiment's LLM is
*modelled*: for each paper, a knowledge base holds the code a capable
chat assistant produces for each component -- including the buggy first
drafts -- and :class:`SimulatedLLM` replays the assistant's documented
behaviour:

* monolithic whole-system prompts yield a non-functional sketch
  (section 3.3: "ChatGPT does not respond well to such monolithic
  prompts");
* modular per-component prompts yield a first draft carrying that
  component's seeded defects; prompting a pseudocode-bearing component
  in plain text adds an extra data-type interoperability defect
  (lesson 2: pseudocode-first stabilises data types);
* debugging feedback fixes the next outstanding defect *only when the
  right guideline is used* -- compiler/runtime error messages fix type
  errors, failing test cases fix simple logic bugs, and step-by-step
  logic prompts fix complex logic bugs (lesson 4's three guidelines).

Everything is deterministic: the same prompt sequence always produces
the same artifacts, so Figure 4's prompt counts are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.llm import ChatSession, CodeArtifact, LLMClient, LLMResponse
from repro.core.prompts import Prompt, PromptKind, PromptStyle


@dataclass(frozen=True)
class Defect:
    """One seeded bug in a component's first draft.

    ``kind`` names the debugging guideline that fixes it.  The buggy
    revision is produced by replacing ``fixed`` with ``broken`` in the
    final source, so every revision is real, runnable (or really-failing)
    code.  ``error_hint`` is a substring of the failure the defect
    causes, used by tests and by the demo narrations.
    """

    kind: PromptKind
    description: str
    broken: str
    fixed: str
    error_hint: str = ""

    def __post_init__(self):
        if self.kind not in (
            PromptKind.DEBUG_ERROR,
            PromptKind.DEBUG_TESTCASE,
            PromptKind.DEBUG_LOGIC,
        ):
            raise ValueError(f"defect kind must be a DEBUG_* kind, got {self.kind}")


@dataclass(frozen=True)
class ComponentKnowledge:
    """What the simulated LLM knows how to write for one component."""

    component: str
    final_source: str
    defects: Tuple[Defect, ...] = ()
    #: Extra interop defect added when the component is prompted in
    #: plain text even though the paper provides pseudocode.
    text_style_defect: Optional[Defect] = None

    def defect_chain(self, style: PromptStyle) -> Tuple[Defect, ...]:
        chain = list(self.defects)
        if (
            style is PromptStyle.MODULAR_TEXT
            and self.text_style_defect is not None
        ):
            chain.insert(0, self.text_style_defect)
        return tuple(chain)

    def source_with(self, style: PromptStyle, fixed_indices) -> str:
        """Source with exactly the given chain indices repaired."""
        chain = self.defect_chain(style)
        fixed = set(fixed_indices)
        source = self.final_source
        for index, defect in enumerate(chain):
            if index in fixed:
                continue
            if defect.fixed not in source:
                raise ValueError(
                    f"defect for {self.component!r} does not apply: "
                    f"{defect.fixed!r} not found in final source"
                )
            source = source.replace(defect.fixed, defect.broken, 1)
        return source

    def source_at(self, style: PromptStyle, fixed_count: int) -> str:
        """Source with the first ``fixed_count`` defects repaired."""
        return self.source_with(style, range(fixed_count))


@dataclass(frozen=True)
class PaperKnowledge:
    """Everything the simulated LLM can produce for one paper."""

    paper_key: str
    components: Dict[str, ComponentKnowledge]
    overview_reply: str = "Understood; let us build it component by component."
    interface_reply: str = "Interfaces noted; I will keep the signatures stable."
    monolithic_sketch: str = (
        "def reproduce_system(*args, **kwargs):\n"
        "    raise NotImplementedError(\n"
        "        'this sketch only outlines the system; the details of '\n"
        "        'each step still need to be implemented')\n"
    )


@dataclass
class _ComponentState:
    style: PromptStyle
    fixed: set = field(default_factory=set)
    revision: int = 0


class SimulatedLLM(LLMClient):
    """Deterministic LLM model over a set of paper knowledge bases."""

    name = "simulated-chatgpt"

    def __init__(self, knowledge: Dict[str, PaperKnowledge]):
        self.knowledge = dict(knowledge)
        self._state: Dict[Tuple[int, str], _ComponentState] = {}

    # ------------------------------------------------------------------
    def chat(self, session: ChatSession, prompt: Prompt) -> LLMResponse:
        response = self._dispatch(session, prompt)
        session.record(prompt, response)
        return response

    # ------------------------------------------------------------------
    def _dispatch(self, session: ChatSession, prompt: Prompt) -> LLMResponse:
        paper = self._paper_for(session)
        if prompt.kind is PromptKind.SYSTEM_OVERVIEW:
            return LLMResponse(paper.overview_reply)
        if prompt.kind is PromptKind.INTERFACES:
            return LLMResponse(paper.interface_reply)
        if prompt.kind is PromptKind.DATA_FORMAT:
            return LLMResponse(
                "Preprocessing added: the loaders now parse the described "
                "format before the solver runs."
            )
        if prompt.kind is PromptKind.GENERATE:
            if prompt.style is PromptStyle.MONOLITHIC:
                return LLMResponse(
                    "Here is an outline of the whole system; filling in all "
                    "steps at once is beyond a single reply.",
                    [CodeArtifact("monolith", "python", paper.monolithic_sketch, 0)],
                )
            return self._generate(session, paper, prompt)
        if prompt.kind in (
            PromptKind.DEBUG_ERROR,
            PromptKind.DEBUG_TESTCASE,
            PromptKind.DEBUG_LOGIC,
        ):
            return self._debug(session, paper, prompt)
        raise ValueError(f"unhandled prompt kind {prompt.kind}")

    # ------------------------------------------------------------------
    def _paper_for(self, session: ChatSession) -> PaperKnowledge:
        # Session names are "<participant>:<paper_key>" by convention.
        key = session.name.split(":")[-1]
        if key not in self.knowledge:
            raise KeyError(
                f"simulated LLM has no knowledge of paper {key!r}; "
                f"known: {sorted(self.knowledge)}"
            )
        return self.knowledge[key]

    def _state_key(self, session: ChatSession, component: str) -> Tuple[int, str]:
        return (id(session), component)

    def _generate(
        self, session: ChatSession, paper: PaperKnowledge, prompt: Prompt
    ) -> LLMResponse:
        if prompt.component is None:
            raise ValueError("component prompts must name a component")
        knowledge = paper.components.get(prompt.component)
        if knowledge is None:
            return LLMResponse(
                f"I do not have enough detail to implement "
                f"{prompt.component!r}; please describe it further."
            )
        style = prompt.style or PromptStyle.MODULAR_TEXT
        state = _ComponentState(style=style)
        self._state[self._state_key(session, prompt.component)] = state
        source = knowledge.source_at(style, 0)
        artifact = CodeArtifact(prompt.component, "python", source, 0)
        return LLMResponse(
            f"Here is an implementation of {prompt.component}.", [artifact]
        )

    def _debug(
        self, session: ChatSession, paper: PaperKnowledge, prompt: Prompt
    ) -> LLMResponse:
        if prompt.component is None:
            raise ValueError("debug prompts must name a component")
        knowledge = paper.components.get(prompt.component)
        key = self._state_key(session, prompt.component)
        state = self._state.get(key)
        if knowledge is None or state is None:
            return LLMResponse(
                f"I have not generated {prompt.component!r} yet in this "
                "conversation; ask me to implement it first."
            )
        chain = knowledge.defect_chain(state.style)
        outstanding = [
            index for index in range(len(chain)) if index not in state.fixed
        ]
        if not outstanding:
            # Nothing left to fix; reissue the current (final) code.
            source = knowledge.source_with(state.style, state.fixed)
            artifact = CodeArtifact(
                prompt.component, "python", source, state.revision
            )
            return LLMResponse(
                "I reviewed the code again and believe it is correct.",
                [artifact],
            )
        # The model fixes the first outstanding defect the feedback's
        # guideline actually describes; unrelated feedback fixes nothing.
        matching = next(
            (i for i in outstanding if chain[i].kind is prompt.kind), None
        )
        if matching is None:
            source = knowledge.source_with(state.style, state.fixed)
            state.revision += 1
            artifact = CodeArtifact(
                prompt.component, "python", source, state.revision
            )
            return LLMResponse(
                "I adjusted the code, but the root cause may lie elsewhere; "
                "if the problem persists, describe the failing case in more "
                "detail.",
                [artifact],
            )
        state.fixed.add(matching)
        state.revision += 1
        source = knowledge.source_with(state.style, state.fixed)
        artifact = CodeArtifact(prompt.component, "python", source, state.revision)
        return LLMResponse(
            f"Good catch -- {chain[matching].description} Fixed.", [artifact]
        )
