"""Conversation-log export.

The paper's authors published their ChatGPT conversation logs; this
module renders a :class:`~repro.core.llm.ChatSession` the same way — a
markdown document with one section per exchange, code blocks preserved —
plus a machine-readable JSON form for tooling.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.core.llm import ChatSession


def to_markdown(session: ChatSession, title: str = None) -> str:
    """Render the session as a human-readable markdown log."""
    lines: List[str] = []
    lines.append(f"# Conversation log: {title or session.name}")
    lines.append("")
    lines.append(
        f"{session.num_prompts} prompts, {session.total_words} prompt words."
    )
    for index, entry in enumerate(session.transcript, start=1):
        lines.append("")
        component = f" [{entry.prompt.component}]" if entry.prompt.component else ""
        lines.append(
            f"## Exchange {index} — {entry.prompt.kind.value}{component}"
        )
        lines.append("")
        lines.append("**User:**")
        lines.append("")
        lines.append(entry.prompt.text)
        lines.append("")
        lines.append("**Assistant:**")
        lines.append("")
        lines.append(entry.response.text)
        for artifact in entry.response.artifacts:
            lines.append("")
            lines.append(
                f"```{artifact.language} "
                f"# component={artifact.component} revision={artifact.revision}"
            )
            lines.append(artifact.source.rstrip("\n"))
            lines.append("```")
    lines.append("")
    return "\n".join(lines)


def to_json(session: ChatSession) -> str:
    """Machine-readable session dump (prompt/response/artifact metadata)."""
    exchanges: List[Dict] = []
    for entry in session.transcript:
        exchanges.append(
            {
                "kind": entry.prompt.kind.value,
                "component": entry.prompt.component,
                "style": entry.prompt.style.value if entry.prompt.style else None,
                "prompt_words": entry.prompt.word_count,
                "prompt": entry.prompt.text,
                "response": entry.response.text,
                "artifacts": [
                    {
                        "component": artifact.component,
                        "language": artifact.language,
                        "revision": artifact.revision,
                        "loc": artifact.loc,
                        "source": artifact.source,
                    }
                    for artifact in entry.response.artifacts
                ],
                "timestamp": entry.timestamp,
            }
        )
    return json.dumps(
        {
            "session": session.name,
            "num_prompts": session.num_prompts,
            "total_words": session.total_words,
            "exchanges": exchanges,
        },
        indent=2,
    )


def summarize(session: ChatSession) -> str:
    """One line per exchange — the quick-scan view."""
    rows = []
    for index, entry in enumerate(session.transcript, start=1):
        artifact_note = ""
        if entry.response.artifacts:
            artifact = entry.response.artifacts[-1]
            artifact_note = f" -> {artifact.component} r{artifact.revision} ({artifact.loc} loc)"
        component = entry.prompt.component or "-"
        rows.append(
            f"{index:>3}. {entry.prompt.kind.value:<16} {component:<16} "
            f"{entry.prompt.word_count:>4}w{artifact_note}"
        )
    return "\n".join(rows)
