"""System-level validation of reproduced prototypes (section 3.1).

Participants validated reproductions by comparing them with the systems'
open-source prototypes on small-scale test cases.  In this repository
the reference implementations under :mod:`repro.ap`, :mod:`repro.apkeep`,
:mod:`repro.te.ncflow` and :mod:`repro.te.arrow` play the open-source
prototypes; each validator runs the assembled reproduced module and the
reference side by side and returns ``(passed, details)``.

"Passed" means what it meant in the paper: the reproduction faithfully
implements the *paper's description*.  For ARROW, that explicitly allows
a large objective gap against the open-source variant (the documented
paper-code inconsistency); the gap is recorded in the details.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

Validator = Callable[[object], Tuple[bool, Dict[str, object]]]


def get_validator(key: str) -> Validator:
    validators = {
        "ap": validate_ap,
        "apkeep": validate_apkeep,
        "ncflow": validate_ncflow,
        "arrow": validate_arrow,
        "rps": validate_rps,
    }
    if key not in validators:
        raise KeyError(f"no validator for paper {key!r}")
    return validators[key]


# ----------------------------------------------------------------------
# AP (participant D)
# ----------------------------------------------------------------------
def validate_ap(module) -> Tuple[bool, Dict[str, object]]:
    from repro.ap import APVerifier
    from repro.netmodel.datasets import build_verification_dataset

    dataset = build_verification_dataset("Internet2")
    reference = APVerifier(dataset)

    start = time.perf_counter()
    state = module.build_verifier(dataset)
    build_seconds = time.perf_counter() - start

    details: Dict[str, object] = {
        "dataset": dataset.name,
        "reference_atoms": reference.num_atoms,
        "reproduced_atoms": module.count_atoms(state),
        "reproduced_build_seconds": build_seconds,
        "reference_build_seconds": reference.predicate_seconds,
    }
    if module.count_atoms(state) != reference.num_atoms:
        details["mismatch"] = "atom counts differ"
        return False, details

    nodes = dataset.topology.nodes
    pairs_checked = 0
    for src in nodes[:3]:
        for dst in nodes[-3:]:
            if src == dst:
                continue
            got = module.reachable(state, src, dst)
            want = reference.reachable_atoms(src, dst).atoms
            got_sat = sum(
                state["engine"].satcount(state["atoms"][a]) for a in got
            )
            want_sat = reference.atomics.satcount(want)
            if got_sat != want_sat:
                details["mismatch"] = f"reachability differs on {src}->{dst}"
                return False, details
            pairs_checked += 1
    details["pairs_checked"] = pairs_checked
    return True, details


# ----------------------------------------------------------------------
# APKeep (participant C)
# ----------------------------------------------------------------------
def validate_apkeep(module) -> Tuple[bool, Dict[str, object]]:
    from repro.apkeep import APKeepVerifier
    from repro.netmodel.datasets import build_verification_dataset

    dataset = build_verification_dataset("Internet2")
    reference = APKeepVerifier(dataset)

    start = time.perf_counter()
    state = module.build_network(dataset)
    build_seconds = time.perf_counter() - start

    details: Dict[str, object] = {
        "dataset": dataset.name,
        "reference_atoms": reference.num_atoms_minimal,
        "reproduced_atoms": module.count_atoms(state),
        "reproduced_build_seconds": build_seconds,
        "reference_build_seconds": reference.build_seconds,
    }
    if module.count_atoms(state) != reference.num_atoms_minimal:
        details["mismatch"] = "atom counts differ"
        return False, details

    got_loops = module.find_loops(state)
    want_loops = reference.find_loops()
    details["reproduced_loops"] = len(got_loops)
    details["reference_loops"] = len(want_loops)
    if bool(got_loops) != bool(want_loops):
        details["mismatch"] = "loop verdicts differ"
        return False, details
    return True, details


# ----------------------------------------------------------------------
# NCFlow (participant A)
# ----------------------------------------------------------------------
def validate_ncflow(module) -> Tuple[bool, Dict[str, object]]:
    from repro.netmodel.instances import make_te_instance
    from repro.te import registry

    instance = make_te_instance(
        "Uninett2010", max_commodities=120, total_demand_fraction=0.15
    )
    reference = registry.solve("ncflow", instance.topology, instance.traffic)
    optimal = registry.solve("pf4", instance.topology, instance.traffic)

    start = time.perf_counter()
    objective = module.solve_ncflow(instance.topology, instance.traffic)
    reproduced_seconds = time.perf_counter() - start

    details: Dict[str, object] = {
        "instance": instance.name,
        "reference_objective": reference.objective,
        "reproduced_objective": objective,
        "pf4_objective": optimal.objective,
        "reproduced_seconds": reproduced_seconds,
        "reference_seconds": reference.solve_seconds,
    }
    if objective <= 0:
        details["mismatch"] = "reproduction admitted no flow"
        return False, details
    if objective > optimal.objective * 1.01:
        details["mismatch"] = "reproduction exceeds the PF4 optimum (infeasible)"
        return False, details
    gap = abs(reference.objective - objective) / reference.objective
    details["objective_gap"] = gap
    if gap > 0.15:
        details["mismatch"] = f"objective gap {gap:.1%} too large"
        return False, details
    return True, details


# ----------------------------------------------------------------------
# ARROW (participant B)
# ----------------------------------------------------------------------
def validate_arrow(module) -> Tuple[bool, Dict[str, object]]:
    from repro.netmodel.instances import make_te_instance
    from repro.te import registry
    from repro.te.arrow import single_fiber_scenarios

    instance = make_te_instance("B4", max_commodities=120)
    scenarios = single_fiber_scenarios(instance.topology, limit=12)
    paper_ref = registry.solve(
        "arrow-paper", instance.topology, instance.traffic, scenarios=scenarios
    )
    code_ref = registry.solve(
        "arrow-code", instance.topology, instance.traffic, scenarios=scenarios
    )

    start = time.perf_counter()
    objective = module.solve_arrow(instance.topology, instance.traffic)
    reproduced_seconds = time.perf_counter() - start

    details: Dict[str, object] = {
        "instance": instance.name,
        "reproduced_objective": objective,
        "paper_variant_objective": paper_ref.objective,
        "open_source_objective": code_ref.objective,
        "reproduced_seconds": reproduced_seconds,
    }
    if objective <= 0:
        details["mismatch"] = "reproduction admitted no flow"
        return False, details
    # Faithful to the PAPER: must match the paper-variant reference.
    paper_gap = abs(paper_ref.objective - objective) / paper_ref.objective
    details["paper_variant_gap"] = paper_gap
    # The documented inconsistency: gap against the open-source variant.
    code_gap = (code_ref.objective - objective) / code_ref.objective
    details["open_source_gap"] = code_gap
    if paper_gap > 0.05:
        details["mismatch"] = (
            f"does not match the paper-variant reference ({paper_gap:.1%})"
        )
        return False, details
    return True, details


# ----------------------------------------------------------------------
# Rock-paper-scissors (motivating example)
# ----------------------------------------------------------------------
def validate_rps(module) -> Tuple[bool, Dict[str, object]]:
    import contextlib
    import io

    from repro.motivating.harness import play_scripted_game

    # The generated programs print their round-by-round chatter; keep the
    # validation itself quiet.
    with contextlib.redirect_stdout(io.StringIO()):
        outcome = play_scripted_game(module)
    details: Dict[str, object] = {
        "rounds_played": outcome.rounds_played,
        "server_results": outcome.results,
    }
    expected = ["client", "server", "tie"]
    if outcome.results != expected:
        details["mismatch"] = f"expected {expected}, got {outcome.results}"
        return False, details
    return True, details
