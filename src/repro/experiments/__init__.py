"""Scripted participants A-D and the full-experiment driver (section 3).

Each participant is a configuration of the reproduction pipeline: which
paper they were assigned, which prompting style they converged on, and
which reference code plays the "open-source prototype" for the LoC
comparison of Figure 5.
"""

from repro.experiments.participants import (
    PARTICIPANTS,
    ParticipantProfile,
    reference_loc_for,
    run_participant,
)
from repro.experiments.campaign import CampaignResult, run_campaign
from repro.experiments.experiment import (
    ExperimentResult,
    figure4_rows,
    figure5_rows,
    run_experiment,
)

__all__ = [
    "CampaignResult",
    "ExperimentResult",
    "PARTICIPANTS",
    "ParticipantProfile",
    "figure4_rows",
    "figure5_rows",
    "reference_loc_for",
    "run_campaign",
    "run_experiment",
    "run_participant",
]
