"""Reproduction campaigns: many papers through the pipeline in one run.

The paper's long-term vision is reproducing *many* published systems,
not four.  A :class:`Campaign` batches pipeline runs across paper keys
and prompting styles, collects the reports, and renders a summary — the
scaffolding a larger study (or a replicability track) would run on.
Runs are independent, so ``run_campaign(..., workers=N)`` fans them out
over a thread pool; results are keyed and ordered deterministically
regardless of worker count.

Campaigns are fail-soft: every run's LLM sits behind a
:class:`~repro.resilience.ResilientLLMClient` (retry/backoff + circuit
breaker around the ``llm.chat`` fault-injection point), and the fan-out
runs with ``on_error="collect"`` by default, so one poisoned run lands
in :attr:`CampaignResult.failures` as a structured record while the
rest of the campaign completes.  With no fault plan installed the
wrapper is a pass-through and results are byte-identical to the
pre-resilience behaviour.

Campaigns are also resumable: pass a
:class:`~repro.store.CampaignCheckpoint` and every completed run is
persisted the moment it finishes; ``resume=True`` loads the completed
runs back and executes only the missing ones.  Because each run is
deterministic given its ``(paper, style, max_debug_rounds)``
configuration, a resumed campaign's :meth:`CampaignResult.summary` is
byte-identical to an uninterrupted one -- failures are never
checkpointed, so a crashed run always re-executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.parallel import TaskFailure, run_ordered

from repro.core.knowledge import (
    get_component_tests,
    get_knowledge,
    get_logic_notes,
    get_paper_spec,
)
from repro.core.metrics import ReproductionReport
from repro.core.pipeline import PipelineConfig, ReproductionPipeline
from repro.core.prompts import PromptStyle
from repro.core.simulated import SimulatedLLM
from repro.core.validation import get_validator
from repro.resilience import ResilientLLMClient, RetryPolicy

#: A campaign run is identified by ``(paper_key, style value)``.  Tuple
#: keys (not ``"paper/style"`` strings) so paper keys containing ``/``
#: cannot be misparsed when grouping by style.
RunKey = Tuple[str, str]


@dataclass
class CampaignResult:
    """All reports of one campaign, keyed by ``(paper_key, style)``.

    ``failures`` holds the runs that crashed outright (fail-soft mode):
    structured :class:`~repro.parallel.TaskFailure` records, never
    silently dropped slots -- a degraded campaign is visibly degraded.
    """

    reports: Dict[RunKey, ReproductionReport] = field(default_factory=dict)
    failures: Dict[RunKey, TaskFailure] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @staticmethod
    def key(paper_key: str, style) -> RunKey:
        style_value = style.value if isinstance(style, PromptStyle) else str(style)
        return (paper_key, style_value)

    @staticmethod
    def label(key: RunKey) -> str:
        """Human-readable ``paper/style`` form of a run key."""
        return f"{key[0]}/{key[1]}"

    @property
    def num_runs(self) -> int:
        return len(self.reports) + len(self.failures)

    @property
    def num_failed_runs(self) -> int:
        return len(self.failures)

    @property
    def num_succeeded(self) -> int:
        return sum(1 for report in self.reports.values() if report.succeeded)

    @property
    def success_rate(self) -> float:
        if not self.num_runs:
            return 0.0
        return self.num_succeeded / self.num_runs

    def by_style(self) -> Dict[str, Dict[str, int]]:
        """Per-style success counts: ``{style: {"ok": n, "failed": m}}``."""
        table: Dict[str, Dict[str, int]] = {}
        for (_, style), report in self.reports.items():
            entry = table.setdefault(style, {"ok": 0, "failed": 0})
            entry["ok" if report.succeeded else "failed"] += 1
        for (_, style) in self.failures:
            entry = table.setdefault(style, {"ok": 0, "failed": 0})
            entry["failed"] += 1
        return table

    def summary(self) -> str:
        """Deterministic summary: no wall-clock, stable across reruns.

        This is what the chaos determinism check compares byte-for-byte
        between two runs with the same fault-plan seed.
        """
        lines = [
            f"Campaign: {self.num_runs} runs, "
            f"{self.num_succeeded} succeeded "
            f"({self.success_rate * 100:.0f}%)"
        ]
        for key in sorted(self.reports):
            report = self.reports[key]
            status = "ok" if report.succeeded else "FAILED"
            lines.append(
                f"  {self.label(key):<32} prompts={report.num_prompts:<4} "
                f"words={report.total_prompt_words:<6} "
                f"loc={report.reproduced_loc:<5} {status}"
            )
        for key in sorted(self.failures):
            failure = self.failures[key]
            lines.append(
                f"  {self.label(key):<32} CRASHED "
                f"{failure.error}: {failure.message}"
            )
        for style, counts in sorted(self.by_style().items()):
            lines.append(
                f"  style {style}: {counts['ok']} ok / {counts['failed']} failed"
            )
        if self.failures:
            lines.append(
                f"  degraded: {len(self.failures)} of {self.num_runs} runs "
                "crashed and were collected as failure records"
            )
        return "\n".join(lines)

    def render(self) -> str:
        header, _, rest = self.summary().partition("\n")
        timed = f"{header} in {self.wall_seconds:.1f}s"
        return f"{timed}\n{rest}" if rest else timed


def _run_one(
    paper_key: str,
    style: PromptStyle,
    max_debug_rounds: int,
    retry: Optional[RetryPolicy],
) -> ReproductionReport:
    obs.metrics.counter("campaign.runs", paper=paper_key, style=style.value).inc()
    with obs.span("campaign.run", paper=paper_key, style=style.value) as sp:
        llm = ResilientLLMClient(
            SimulatedLLM({paper_key: get_knowledge(paper_key)}),
            policy=retry,
        )
        pipeline = ReproductionPipeline(
            llm,
            get_paper_spec(paper_key),
            component_tests=get_component_tests(paper_key),
            logic_notes=get_logic_notes(paper_key),
            validator=get_validator(paper_key),
            participant="campaign",
            config=PipelineConfig(
                style=style, max_debug_rounds=max_debug_rounds
            ),
        )
        report = pipeline.run()
    obs.metrics.histogram("campaign.run_seconds").observe(sp.duration)
    return report


def run_campaign(
    paper_keys: List[str],
    styles: Optional[List[PromptStyle]] = None,
    max_debug_rounds: int = 6,
    workers: int = 1,
    on_error: str = "collect",
    retry: Optional[RetryPolicy] = None,
    checkpoint=None,
    resume: bool = False,
) -> CampaignResult:
    """Run every (paper, style) combination through the pipeline.

    Each run builds its own LLM session and pipeline, so ``workers > 1``
    executes them concurrently; report insertion order and contents
    match the serial run exactly.  ``on_error="collect"`` (the default)
    turns a crashing run into a :class:`~repro.parallel.TaskFailure`
    entry in :attr:`CampaignResult.failures`; ``"raise"`` restores
    crash-the-campaign semantics.  ``retry`` tunes the per-run
    :class:`~repro.resilience.RetryPolicy` (e.g. the CLI ``--retries``).

    ``checkpoint`` (a :class:`~repro.store.CampaignCheckpoint`) persists
    every completed run as it finishes; with ``resume=True`` the runs
    already checkpointed are loaded instead of re-executed, so an
    interrupted campaign restarted with the same configuration pays
    only for its missing runs and summarises identically.
    """
    if styles is None:
        styles = [PromptStyle.MODULAR_PSEUDOCODE]
    result = CampaignResult()
    combos = [(paper_key, style) for paper_key in paper_keys for style in styles]
    resumed: Dict[RunKey, ReproductionReport] = {}
    if checkpoint is not None and resume:
        for paper_key, style in combos:
            report = checkpoint.load(paper_key, style.value, max_debug_rounds)
            if report is not None:
                resumed[CampaignResult.key(paper_key, style)] = report
    pending = [
        (paper_key, style)
        for paper_key, style in combos
        if CampaignResult.key(paper_key, style) not in resumed
    ]
    with obs.span(
        "campaign",
        papers=len(paper_keys),
        styles=len(styles),
        workers=workers,
        resumed=len(resumed),
    ) as sp:
        phase = obs.PROGRESS.phase(
            "campaign", total=len(pending), resumed=len(resumed)
        )

        def run_and_checkpoint(paper_key: str, style: PromptStyle):
            # Saving inside the task (not after the fan-out) means a
            # hard crash later in the campaign still keeps this run.
            label = f"{paper_key}/{style.value}"
            phase.task_start(label)
            try:
                report = _run_one(paper_key, style, max_debug_rounds, retry)
            except BaseException as exc:
                phase.task_finish(label, ok=False, error=type(exc).__name__)
                raise
            if checkpoint is not None:
                checkpoint.save(paper_key, style.value, max_debug_rounds, report)
            phase.task_finish(label, succeeded=report.succeeded)
            return report

        try:
            outcomes = run_ordered(
                [
                    lambda paper_key=paper_key, style=style: run_and_checkpoint(
                        paper_key, style
                    )
                    for paper_key, style in pending
                ],
                workers=workers,
                on_error=on_error,
            )
        finally:
            phase.finish()
        executed: Dict[RunKey, object] = {
            CampaignResult.key(paper_key, style): outcome
            for (paper_key, style), outcome in zip(pending, outcomes)
        }
        for paper_key, style in combos:
            run_key = CampaignResult.key(paper_key, style)
            if run_key in resumed:
                result.reports[run_key] = resumed[run_key]
                continue
            outcome = executed[run_key]
            if isinstance(outcome, TaskFailure):
                result.failures[run_key] = outcome
            else:
                result.reports[run_key] = outcome
    result.wall_seconds = sp.duration
    return result
