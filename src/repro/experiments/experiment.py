"""The full experiment: all four participants plus the figure series."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.metrics import ReproductionReport
from repro.experiments.participants import PARTICIPANTS, run_participant


@dataclass
class ExperimentResult:
    """Reports of all four participants, keyed by participant name."""

    reports: Dict[str, ReproductionReport] = field(default_factory=dict)

    @property
    def all_succeeded(self) -> bool:
        return all(report.succeeded for report in self.reports.values())

    def report(self, participant: str) -> ReproductionReport:
        return self.reports[participant]


def run_experiment() -> ExperimentResult:
    """Run participants A-D; every reproduction must assemble and pass."""
    result = ExperimentResult()
    for name in sorted(PARTICIPANTS):
        result.reports[name] = run_participant(name)
    return result


def figure4_rows(result: ExperimentResult) -> List[Tuple[str, str, int, int]]:
    """Figure 4 series: (participant, system, #prompts, #words)."""
    rows = []
    for name in sorted(result.reports):
        report = result.reports[name]
        rows.append(
            (name, report.paper_key, report.num_prompts, report.total_prompt_words)
        )
    return rows


def figure5_rows(
    result: ExperimentResult,
) -> List[Tuple[str, str, int, int, float]]:
    """Figure 5 series: (participant, system, reproduced LoC, reference
    LoC, ratio)."""
    rows = []
    for name in sorted(result.reports):
        report = result.reports[name]
        rows.append(
            (
                name,
                report.paper_key,
                report.reproduced_loc,
                report.reference_loc,
                report.loc_ratio,
            )
        )
    return rows
