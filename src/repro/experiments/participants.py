"""Participant profiles and single-participant runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.knowledge import (
    get_component_tests,
    get_knowledge,
    get_logic_notes,
    get_paper_spec,
)
from repro.core.metrics import ReproductionReport, count_package_loc
from repro.core.pipeline import PipelineConfig, ReproductionPipeline
from repro.core.prompts import PromptStyle
from repro.core.simulated import SimulatedLLM
from repro.core.validation import get_validator


@dataclass(frozen=True)
class ParticipantProfile:
    """One participant of the experiment."""

    name: str
    paper_key: str
    style: PromptStyle
    background: str


PARTICIPANTS: Dict[str, ParticipantProfile] = {
    "A": ParticipantProfile(
        name="A",
        paper_key="ncflow",
        style=PromptStyle.MODULAR_PSEUDOCODE,
        background=(
            "first-year master's student, interpretable machine learning"
        ),
    ),
    "B": ParticipantProfile(
        name="B",
        paper_key="arrow",
        style=PromptStyle.MODULAR_PSEUDOCODE,
        background="senior undergraduate, computer science",
    ),
    "C": ParticipantProfile(
        name="C",
        paper_key="apkeep",
        style=PromptStyle.MODULAR_PSEUDOCODE,
        background="senior undergraduate, computer science",
    ),
    "D": ParticipantProfile(
        name="D",
        paper_key="ap",
        style=PromptStyle.MODULAR_PSEUDOCODE,
        background="senior undergraduate, information and computing science",
    ),
}


def reference_loc_for(paper_key: str) -> int:
    """LoC of the code playing the "open-source prototype" in Figure 5.

    Scope follows what each paper's prototype ships: the TE prototypes
    bundle the solver toolchain glue and the dataset formatting/parsing
    code (the paper notes NCFlow's repository is dominated by input
    parsing), while the verification prototypes link BDDs as an external
    library, so only the verifier itself is counted.
    """
    import repro.ap.atomic
    import repro.ap.predicates
    import repro.ap.traversal
    import repro.ap.verifier
    import repro.apkeep
    import repro.lp
    import repro.netmodel
    import repro.te.arrow
    import repro.te.maxflow
    import repro.te.ncflow

    scopes = {
        "ncflow": [repro.te.ncflow, repro.te.maxflow, repro.lp, repro.netmodel],
        "arrow": [repro.te.arrow, repro.lp, repro.netmodel],
        "apkeep": [repro.apkeep],
        # The AP prototype scope is the verifier itself, not the extra
        # tooling (snapshot diffing) this library adds around it.
        "ap": [
            repro.ap.predicates,
            repro.ap.atomic,
            repro.ap.verifier,
            repro.ap.traversal,
        ],
    }
    total = 0
    for module in scopes[paper_key]:
        if hasattr(module, "__path__"):
            total += count_package_loc(module)
        else:
            from repro.core.metrics import count_module_loc

            total += count_module_loc(module)
    return total


def run_participant(
    name: str,
    style: PromptStyle = None,
    llm: SimulatedLLM = None,
) -> ReproductionReport:
    """Run one participant's full reproduction session."""
    profile = PARTICIPANTS[name]
    key = profile.paper_key
    if llm is None:
        llm = SimulatedLLM({key: get_knowledge(key)})
    pipeline = ReproductionPipeline(
        llm,
        get_paper_spec(key),
        component_tests=get_component_tests(key),
        logic_notes=get_logic_notes(key),
        validator=get_validator(key),
        participant=name,
        config=PipelineConfig(style=style or profile.style),
        reference_loc=reference_loc_for(key),
    )
    return pipeline.run()
