"""Differential fuzzing: the standing correctness gate (``repro fuzz``).

The package ties four pieces together -- see each module for depth:

* :mod:`repro.fuzz.generators` -- seeded case generation with a
  deterministic schedule: any case replays from ``(seed, index, kind)``;
* :mod:`repro.fuzz.oracles`    -- the named differential-oracle
  registry (exact vs approximate, warm vs cold, batch vs incremental);
* :mod:`repro.fuzz.runner`     -- time-boxed, crash-isolated sweeps
  over :func:`repro.parallel.run_ordered` workers, artifact storage,
  and stored-failure replay;
* :mod:`repro.fuzz.minimize`   -- greedy deterministic shrinking of
  failing cases;
* :mod:`repro.fuzz.watchdog`   -- the per-case timeout primitive.

Quick use::

    from repro.fuzz import run_fuzz
    report = run_fuzz(seed=7, cases=10)
    assert report.ok, report.render()
"""

from repro.fuzz.generators import (
    FuzzCase,
    KINDS,
    SCHEMA,
    case_seed,
    case_sizes,
    generate_case,
    materialize_campaign,
    materialize_dataplane,
    materialize_te,
)
from repro.fuzz.minimize import classify_failure, minimize_case
from repro.fuzz.oracles import (
    LyingWarmBackend,
    OracleFailure,
    OracleSpec,
    PLANTED_ORACLE,
    UnknownOracleError,
    get_spec,
    oracle_names,
    register,
    register_planted_defect,
    render_table,
    run_oracle,
    specs_for_kind,
    unregister,
)
from repro.fuzz.runner import (
    DEFAULT_CASES,
    FuzzFailure,
    FuzzReport,
    ReproOutcome,
    list_failures,
    reproduce,
    reproduce_live,
    run_fuzz,
)
from repro.fuzz.watchdog import CaseTimeout, call_with_timeout

__all__ = [
    "CaseTimeout",
    "DEFAULT_CASES",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "KINDS",
    "LyingWarmBackend",
    "OracleFailure",
    "OracleSpec",
    "PLANTED_ORACLE",
    "ReproOutcome",
    "SCHEMA",
    "UnknownOracleError",
    "call_with_timeout",
    "case_seed",
    "case_sizes",
    "classify_failure",
    "generate_case",
    "get_spec",
    "list_failures",
    "materialize_campaign",
    "materialize_dataplane",
    "materialize_te",
    "minimize_case",
    "oracle_names",
    "register",
    "register_planted_defect",
    "render_table",
    "reproduce",
    "reproduce_live",
    "run_fuzz",
    "run_oracle",
    "specs_for_kind",
    "unregister",
]
