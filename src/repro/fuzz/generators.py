"""Seeded, replayable fuzz-case generators.

Every case the fuzzer ever runs is a pure function of ``(seed,
case_index, kind)``: :func:`case_seed` hashes the triple with BLAKE2b
(the same scheme :class:`repro.resilience.FaultInjector` uses for fault
decisions), and that value seeds a private ``numpy`` RNG -- no global
:mod:`random` state, no wall clock.  A failure report therefore never
needs to ship the whole input: the triple alone regenerates it, and the
``repro fuzz repro`` round-trip depends on exactly that.

Cases come in three kinds:

* ``"te"``        -- a Waxman topology (:func:`~repro.netmodel.topozoo.waxman_topology`)
  with gravity-model demands
  (:func:`~repro.netmodel.traffic.gravity_traffic_matrix`) and a small
  chain of demand scales, feeding the TE/LP oracles;
* ``"dataplane"`` -- a :func:`~repro.netmodel.datasets.random_dataset`
  data plane (arbitrary overlapping rules) plus a burst of random rule
  updates, feeding the AP/APKeep/BDD oracles;
* ``"campaign"``  -- a random service-tier campaign job spec (papers x
  prompt styles + a seed), feeding the multiprocess-vs-inprocess
  execution oracle of :mod:`repro.serve`.

The generated instance is immediately *serialized* into a plain-JSON
``data`` dict (:class:`FuzzCase`), and every consumer -- oracles, the
minimizer, the artifact store -- works on that dict via
:func:`materialize_te` / :func:`materialize_dataplane`.  Serializing
first is what makes greedy shrinking possible: the minimizer edits the
dict (drop a demand, drop a rule) and re-materializes, which no
generator-level representation would allow.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Payload schema tag for stored fuzz artifacts.
SCHEMA = "repro.fuzz/1"

#: The case kinds the generator knows how to build.
KINDS = ("te", "dataplane", "campaign")

#: Demand-scale chain attached to every TE case: three points so warm
#: sessions genuinely re-solve (the first solve is always cold).
_TE_SCALES = (0.5, 1.0, 1.8)

#: Update-burst length for dataplane cases.
_NUM_UPDATES = 3


@dataclass(frozen=True)
class FuzzCase:
    """One generated (or shrunk) fuzz input.

    ``data`` is a plain-JSON dict fully describing the instance; the
    ``(seed, index, kind)`` triple records where it came from.  After
    minimization ``data`` no longer equals the generated instance, but
    the triple still names the schedule slot the failure was found in.
    """

    seed: int
    index: int
    kind: str
    data: Dict


def case_seed(seed: int, index: int, kind: str) -> int:
    """Deterministic per-case RNG seed: BLAKE2b of ``seed|index|kind``.

    Returns a value in ``[0, 2**32)`` so it can seed
    ``numpy.random.RandomState`` directly.
    """
    digest = hashlib.blake2b(
        f"{seed}|{index}|{kind}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest[:4], "big")


def generate_case(seed: int, index: int, kind: str) -> FuzzCase:
    """Build the case at schedule slot ``(seed, index)`` for ``kind``."""
    if kind not in KINDS:
        raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
    if kind == "te":
        data = _generate_te(case_seed(seed, index, kind))
    elif kind == "dataplane":
        data = _generate_dataplane(case_seed(seed, index, kind))
    else:
        data = _generate_campaign(case_seed(seed, index, kind))
    return FuzzCase(seed=seed, index=index, kind=kind, data=data)


# ----------------------------------------------------------------------
# TE cases
# ----------------------------------------------------------------------
def _generate_te(rng_seed: int) -> Dict:
    import numpy as np

    from repro.netmodel.topozoo import waxman_topology
    from repro.netmodel.traffic import gravity_traffic_matrix

    rng = np.random.RandomState(rng_seed)
    num_nodes = 4 + int(rng.randint(3))
    topology = waxman_topology(
        num_nodes=num_nodes,
        seed=int(rng.randint(1 << 31)),
        capacity=100.0,
        name=f"fuzz-te-{rng_seed}",
    )
    traffic = gravity_traffic_matrix(
        topology,
        seed=int(rng.randint(1 << 31)),
        total_demand_fraction=0.2,
        max_commodities=2 + int(rng.randint(5)),
    )
    links = [
        [link.src, link.dst, round(link.capacity, 6)]
        for link in topology.links()
        if link.src < link.dst  # one entry per physical (bidi) link
    ]
    demands = [
        [src, dst, round(value, 6)]
        for src, dst, value in traffic.commodities()
    ]
    return {
        "name": topology.name,
        "nodes": list(topology.nodes),
        "links": links,
        "demands": sorted(demands),
        "scales": list(_TE_SCALES),
    }


def materialize_te(data: Dict):
    """``data`` -> ``(Topology, TrafficMatrix, scales)``."""
    from repro.netmodel.topology import Topology
    from repro.netmodel.traffic import TrafficMatrix

    topology = Topology(data.get("name", "fuzz-te"))
    for node in data["nodes"]:
        topology.add_node(node)
    for src, dst, capacity in data["links"]:
        topology.add_bidi_link(src, dst, float(capacity))
    demands = {
        (src, dst): float(value) for src, dst, value in data["demands"]
    }
    return topology, TrafficMatrix(demands), [float(s) for s in data["scales"]]


# ----------------------------------------------------------------------
# Dataplane cases
# ----------------------------------------------------------------------
def _generate_dataplane(rng_seed: int) -> Dict:
    import numpy as np

    from repro.netmodel.datasets import random_dataset
    from repro.netmodel.headerspace import HEADER_BITS
    from repro.netmodel.rules import DROP_PORT, SELF_PORT

    rng = np.random.RandomState(rng_seed)
    num_nodes = 3 + int(rng.randint(3))
    rules = 2 + int(rng.randint(7))
    acl_fraction = float(rng.choice([0.0, 0.5]))
    dataset = random_dataset(
        num_nodes=num_nodes,
        rules_per_device=rules,
        seed=int(rng.randint(1 << 31)),
        acl_fraction=acl_fraction,
        name=f"fuzz-dp-{rng_seed}",
    )

    nodes = list(dataset.topology.nodes)
    links = [
        [link.src, link.dst]
        for link in dataset.topology.links()
        if link.src < link.dst
    ]
    device_rules = {
        node: [
            [rule.prefix.value, rule.prefix.length, rule.port, rule.priority]
            for rule in dataset.devices[node].rules
        ]
        for node in nodes
    }
    acls = {
        node: [
            [acl.prefix.value, acl.prefix.length, acl.action.value,
             acl.priority]
            for acl in dataset.devices[node].acl
        ]
        for node in nodes
        if dataset.devices[node].acl
    }
    prefixes = {
        node: [prefix.value, prefix.length]
        for node, prefix in dataset.prefix_of.items()
    }

    updates: List[List] = []
    for _ in range(_NUM_UPDATES):
        node = nodes[int(rng.randint(len(nodes)))]
        ports = dataset.topology.successors(node) + [DROP_PORT, SELF_PORT]
        port = ports[int(rng.randint(len(ports)))]
        length = int(rng.randint(0, HEADER_BITS + 1))
        bits = int(rng.randint(0, 1 << length)) if length else 0
        value = bits << (HEADER_BITS - length)
        updates.append([node, value, length, port, int(rng.randint(0, 40))])

    return {
        "name": dataset.name,
        "nodes": nodes,
        "links": links,
        "rules": device_rules,
        "acls": acls,
        "prefixes": prefixes,
        "updates": updates,
    }


def materialize_dataplane(data: Dict):
    """``data`` -> ``(VerificationDataset, updates)``.

    ``updates`` is a list of ``(device, ForwardingRule)`` pairs -- the
    burst the incremental-vs-batch oracle applies; other oracles ignore
    it and verify the base dataset.
    """
    from repro.netmodel.datasets import VerificationDataset
    from repro.netmodel.headerspace import Prefix
    from repro.netmodel.rules import AclAction, AclRule, Device, ForwardingRule
    from repro.netmodel.topology import Topology

    topology = Topology(data.get("name", "fuzz-dp"))
    for node in data["nodes"]:
        topology.add_node(node)
    for src, dst in data["links"]:
        topology.add_bidi_link(src, dst, 1000.0)

    devices: Dict[str, Device] = {}
    for node in data["nodes"]:
        device = Device(node)
        for value, length, port, priority in data["rules"].get(node, []):
            device.add_rule(
                ForwardingRule(Prefix(int(value), int(length)), port,
                               int(priority))
            )
        for value, length, action, priority in data.get("acls", {}).get(
            node, []
        ):
            device.add_acl_rule(
                AclRule(Prefix(int(value), int(length)), AclAction(action),
                        int(priority))
            )
        devices[node] = device

    prefix_of = {
        node: Prefix(int(value), int(length))
        for node, (value, length) in data.get("prefixes", {}).items()
        if node in devices
    }
    dataset = VerificationDataset(
        data.get("name", "fuzz-dp"), topology, devices, prefix_of
    )
    updates = [
        (node, ForwardingRule(Prefix(int(value), int(length)), port,
                              int(priority)))
        for node, value, length, port, priority in data.get("updates", [])
    ]
    return dataset, updates


# ----------------------------------------------------------------------
# Campaign cases
# ----------------------------------------------------------------------
#: The paper corpus campaign cases draw from: the three cheapest
#: reproductions, so a fuzz sweep stays time-boxable.
_CAMPAIGN_PAPERS = ("rps", "apkeep", "ap")

#: Prompt styles campaign cases may combine.
_CAMPAIGN_STYLES = ("monolithic", "modular-text", "modular-pseudocode")


def _generate_campaign(rng_seed: int) -> Dict:
    import numpy as np

    rng = np.random.RandomState(rng_seed)
    num_papers = 1 + int(rng.randint(2))
    paper_picks = rng.choice(
        len(_CAMPAIGN_PAPERS), size=num_papers, replace=False
    )
    num_styles = 1 + int(rng.randint(2))
    style_picks = rng.choice(
        len(_CAMPAIGN_STYLES), size=num_styles, replace=False
    )
    return {
        "papers": sorted(_CAMPAIGN_PAPERS[int(i)] for i in paper_picks),
        "styles": sorted(_CAMPAIGN_STYLES[int(i)] for i in style_picks),
        "max_debug_rounds": 2 + int(rng.randint(5)),
        "seed": int(rng.randint(1 << 31)),
    }


def materialize_campaign(data: Dict):
    """``data`` -> a :class:`repro.serve.jobs.JobSpec` campaign job.

    The dict maps one-to-one onto the service tier's job-spec params, so
    the mp-vs-inprocess oracle and the minimizer both work on the same
    plain-JSON document every other consumer uses.
    """
    from repro.serve.jobs import JobSpec

    return JobSpec(
        kind="campaign",
        params={
            "papers": list(data["papers"]),
            "styles": list(data["styles"]),
            "max_debug_rounds": int(data["max_debug_rounds"]),
        },
        seed=int(data.get("seed", 0)),
    )


def case_sizes(data: Dict) -> Dict[str, int]:
    """Size summary of a case ``data`` dict (for shrink reporting)."""
    if "papers" in data:
        return {
            "papers": len(data["papers"]),
            "styles": len(data.get("styles", [])),
        }
    sizes = {
        "nodes": len(data.get("nodes", [])),
        "links": len(data.get("links", [])),
    }
    if "demands" in data:
        sizes["demands"] = len(data["demands"])
        sizes["scales"] = len(data.get("scales", []))
    if "rules" in data:
        sizes["rules"] = sum(len(r) for r in data["rules"].values())
        sizes["max_rules_per_device"] = max(
            (len(r) for r in data["rules"].values()), default=0
        )
        sizes["acls"] = sum(len(a) for a in data.get("acls", {}).values())
        sizes["updates"] = len(data.get("updates", []))
    return sizes
