"""Greedy deterministic failure shrinking.

Once an oracle fails on a generated case, the raw instance is rarely
the story: a 6-node topology with 6 commodities usually fails for the
same reason a 2-node, 1-commodity one does.  :func:`minimize_case`
shrinks the case's ``data`` dict by repeatedly deleting one element --
a demand, a node (with its incident links/rules/demands), a link, a
rule, an update, a scale point -- and keeping the deletion only when
the *same* failure still reproduces.

Determinism is the contract: passes run in a fixed order, each pass
iterates its elements in a fixed (reverse-index) order, and the
failure-equality predicate is pure, so the same seed always shrinks to
the byte-identical minimized artifact.  "Same failure" means the same
classification -- any :class:`~repro.fuzz.oracles.OracleFailure` for a
divergence, the same exception type for a crash -- not the same
message, so shrinking is allowed to simplify the numbers in the
message while preserving the bug.

Every candidate runs under the same watchdog timeout as the sweep, so
a shrink that sends the oracle into a pathological slow path cannot
hang minimization; it is simply rejected.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional, Tuple

from repro import obs
from repro.fuzz.generators import FuzzCase
from repro.fuzz.oracles import OracleFailure, OracleSpec, run_oracle
from repro.fuzz.watchdog import CaseTimeout, call_with_timeout

#: Hard ceiling on reproduction attempts per minimization, a backstop
#: against quadratic blowup on large cases.
MAX_ATTEMPTS = 400


def classify_failure(exc: BaseException) -> Tuple[str, str]:
    """``(failure kind, exception type name)`` for an oracle exception."""
    if isinstance(exc, OracleFailure):
        return "divergence", type(exc).__name__
    if isinstance(exc, CaseTimeout):
        return "timeout", type(exc).__name__
    return "crash", type(exc).__name__


def _observe(spec: OracleSpec, case: FuzzCase,
             timeout: Optional[float]) -> Optional[Tuple[str, str]]:
    """Run the oracle; return the failure classification or ``None``."""
    try:
        call_with_timeout(lambda: run_oracle(spec, case), timeout)
    except BaseException as exc:  # crash isolation: classify everything
        return classify_failure(exc)
    return None


def minimize_case(
    case: FuzzCase,
    spec: OracleSpec,
    expected: Tuple[str, str],
    case_timeout: Optional[float] = None,
    max_attempts: int = MAX_ATTEMPTS,
) -> Tuple[FuzzCase, int]:
    """Shrink ``case`` while ``spec`` keeps failing like ``expected``.

    Returns ``(minimized case, attempts used)``.  ``expected`` is the
    ``(kind, error type)`` classification of the original failure (see
    :func:`classify_failure`).  The input case is not mutated.
    """
    data = copy.deepcopy(case.data)
    attempts = 0

    def reproduces(candidate_data: Dict) -> bool:
        nonlocal attempts
        attempts += 1
        candidate = FuzzCase(case.seed, case.index, case.kind, candidate_data)
        got = _observe(spec, candidate, case_timeout)
        if got is None:
            return False
        if expected[0] == "divergence":
            return got[0] == "divergence"
        return got == expected

    passes = _PASSES_BY_KIND[case.kind]
    with obs.span("fuzz.minimize", oracle=spec.name, kind=case.kind) as sp:
        progressed = True
        while progressed and attempts < max_attempts:
            progressed = False
            for shrink_pass in passes:
                if attempts >= max_attempts:
                    break
                if shrink_pass(data, reproduces, max_attempts - attempts):
                    progressed = True
        sp.set(attempts=attempts)
    obs.metrics.counter("fuzz.shrink_attempts").inc(attempts)
    return FuzzCase(case.seed, case.index, case.kind, data), attempts


# ----------------------------------------------------------------------
# Shrink passes.  Each takes (data, reproduces, budget) and returns
# True when it removed at least one element.  All passes mutate
# ``data`` in place only through accepted deletions.
# ----------------------------------------------------------------------
def _drop_list_items(data: Dict, key: str, reproduces, budget: int) -> bool:
    """Try deleting each element of ``data[key]``, last-first."""
    removed = False
    items = data.get(key)
    if not items:
        return False
    index = len(items) - 1
    while index >= 0 and budget > 0:
        candidate = copy.deepcopy(data)
        del candidate[key][index]
        budget -= 1
        if reproduces(candidate):
            data[key] = candidate[key]
            removed = True
        index -= 1
    return removed


def _drop_te_demands(data, reproduces, budget):
    return _drop_list_items(data, "demands", reproduces, budget)


def _drop_te_links(data, reproduces, budget):
    return _drop_list_items(data, "links", reproduces, budget)


def _drop_te_scales(data, reproduces, budget):
    return _drop_list_items(data, "scales", reproduces, budget)


def _without_te_node(data: Dict, node: str) -> Dict:
    candidate = copy.deepcopy(data)
    candidate["nodes"] = [n for n in candidate["nodes"] if n != node]
    candidate["links"] = [
        link for link in candidate["links"] if node not in link[:2]
    ]
    candidate["demands"] = [
        d for d in candidate["demands"] if node not in d[:2]
    ]
    return candidate


def _drop_te_nodes(data, reproduces, budget):
    removed = False
    for node in list(reversed(data.get("nodes", []))):
        if budget <= 0 or len(data["nodes"]) <= 2:
            break
        candidate = _without_te_node(data, node)
        budget -= 1
        if reproduces(candidate):
            data.update(candidate)
            removed = True
    return removed


_TE_PASSES = (_drop_te_demands, _drop_te_nodes, _drop_te_links,
              _drop_te_scales)


def _drop_dp_updates(data, reproduces, budget):
    return _drop_list_items(data, "updates", reproduces, budget)


def _drop_dp_rules(data, reproduces, budget):
    removed = False
    for node in sorted(data.get("rules", {}), reverse=True):
        rules = data["rules"][node]
        index = len(rules) - 1
        while index >= 0 and budget > 0:
            candidate = copy.deepcopy(data)
            del candidate["rules"][node][index]
            budget -= 1
            if reproduces(candidate):
                data["rules"][node] = candidate["rules"][node]
                removed = True
            index -= 1
    return removed


def _drop_dp_acls(data, reproduces, budget):
    removed = False
    for node in sorted(data.get("acls", {}), reverse=True):
        acls = data["acls"].get(node, [])
        index = len(acls) - 1
        while index >= 0 and budget > 0:
            candidate = copy.deepcopy(data)
            del candidate["acls"][node][index]
            if not candidate["acls"][node]:
                del candidate["acls"][node]
            budget -= 1
            if reproduces(candidate):
                data["acls"] = candidate["acls"]
                removed = True
                acls = data["acls"].get(node, [])
            index -= 1
    return removed


def _without_dp_node(data: Dict, node: str) -> Dict:
    candidate = copy.deepcopy(data)
    candidate["nodes"] = [n for n in candidate["nodes"] if n != node]
    candidate["links"] = [
        link for link in candidate["links"] if node not in link[:2]
    ]
    candidate["rules"].pop(node, None)
    candidate.get("acls", {}).pop(node, None)
    candidate.get("prefixes", {}).pop(node, None)
    # Rules on surviving devices that forwarded to the removed node now
    # point at a non-device; the brute-force walk and the verifiers
    # both treat that as a drop, so they stay comparable.
    candidate["updates"] = [
        u for u in candidate.get("updates", []) if u[0] != node
    ]
    return candidate


def _drop_dp_nodes(data, reproduces, budget):
    removed = False
    for node in list(reversed(data.get("nodes", []))):
        if budget <= 0 or len(data["nodes"]) <= 2:
            break
        candidate = _without_dp_node(data, node)
        budget -= 1
        if reproduces(candidate):
            data.update(candidate)
            removed = True
    return removed


_DATAPLANE_PASSES = (_drop_dp_updates, _drop_dp_rules, _drop_dp_acls,
                     _drop_dp_nodes)


def _drop_campaign_papers(data, reproduces, budget):
    # A campaign needs at least one paper to remain a valid job spec,
    # so the last survivor is never offered for deletion.
    removed = False
    index = len(data.get("papers", [])) - 1
    while index >= 0 and len(data["papers"]) > 1 and budget > 0:
        candidate = copy.deepcopy(data)
        del candidate["papers"][index]
        budget -= 1
        if reproduces(candidate):
            data["papers"] = candidate["papers"]
            removed = True
        index -= 1
    return removed


def _drop_campaign_styles(data, reproduces, budget):
    removed = False
    index = len(data.get("styles", [])) - 1
    while index >= 0 and len(data["styles"]) > 1 and budget > 0:
        candidate = copy.deepcopy(data)
        del candidate["styles"][index]
        budget -= 1
        if reproduces(candidate):
            data["styles"] = candidate["styles"]
            removed = True
        index -= 1
    return removed


_CAMPAIGN_PASSES = (_drop_campaign_papers, _drop_campaign_styles)

_PASSES_BY_KIND = {
    "te": _TE_PASSES,
    "dataplane": _DATAPLANE_PASSES,
    "campaign": _CAMPAIGN_PASSES,
}
