"""The differential-oracle registry: named correctness cross-checks.

An *oracle* takes one generated :class:`~repro.fuzz.generators.FuzzCase`
and checks a correctness property by running two (or more) independent
implementations against each other -- exact vs approximate, batch vs
incremental, warm vs cold -- raising :class:`OracleFailure` on any
divergence.  The registry mirrors :mod:`repro.te.registry`: oracles are
registered by name, discoverable (``repro fuzz run --oracle list``),
and unknown names raise :class:`UnknownOracleError` with close-match
suggestions.

The built-in catalogue (see each ``ORACLE_*`` docstring below) promotes
the equivalence logic that previously lived only in
``tests/test_fuzz_equivalence.py`` and ``tests/test_lp_session.py`` into
library code, so the pytest suite and the standing ``repro fuzz`` gate
share one implementation:

* ``te.solver-pairs``          -- every registry solver vs the exact
  edge-formulation optimum (feasibility bound + exact agreement);
* ``te.warm-equals-cold``      -- per warm-capable solver, a warm
  session chain must match per-scale cold solves;
* ``te.bounds``                -- objective/flow invariants and
  monotonicity in demand scale;
* ``lp.decomposed-vs-exact``   -- real captured LP models through
  :func:`repro.lp.lp_discrepancy_gate` with the reduced-core backend;
* ``ap.vs-apkeep``             -- batch AP vs incremental APKeep atoms
  and per-pair reachability;
* ``ap.vs-bruteforce``         -- AP reachability vs a per-address
  forwarding walk;
* ``ap.bfs-vs-enumeration``    -- the two AP reachability algorithms;
* ``apkeep.incremental-vs-batch`` -- an update burst applied
  incrementally vs a fresh batch build of the final state;
* ``bdd.profiles``             -- the jdd and javabdd BDD profiles must
  see identical atoms, loops and blackholes;
* ``dataplane.sharded-vs-whole`` -- partitioned shard-local
  verification stitched back together must equal the unsharded AP
  verifier byte-for-byte, across shard counts and strategies;
* ``dataplane.stream-vs-batch`` -- the case's update burst streamed
  through per-shard APKeep deltas must equal a whole-network batch
  rebuild of the final state;
* ``campaign.multiprocess-vs-inprocess`` -- the same campaign job run
  in-process and through the :mod:`repro.serve` spawn worker pool must
  produce byte-identical summaries.

:func:`register_planted_defect` adds the deliberately lying warm LP
backend (``planted.warm-liar``) used by tests and the CI fuzz-smoke job
to prove the pipeline catches, shrinks and replays a real defect.
"""

from __future__ import annotations

import difflib
import random
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.fuzz import generators
from repro.fuzz.generators import FuzzCase

#: Relative tolerance for objective comparisons between solvers that
#: should agree exactly (two LP solves of the same model).
_EXACT_TOL = 1e-6


class OracleFailure(AssertionError):
    """A differential oracle observed a divergence (the fuzzer's prize).

    Distinct from an oracle *crash* (any other exception): a failure
    means two implementations disagreed; a crash means the oracle or
    the system under test blew up.  The runner records both, but only
    failures are evidence of a correctness bug by construction.
    """

    def __init__(self, oracle: str, message: str):
        self.oracle = oracle
        super().__init__(f"{oracle}: {message}")


class UnknownOracleError(KeyError):
    """Raised when an oracle name is not in the registry."""

    def __init__(self, name: str, known: List[str]):
        self.oracle_name = name
        self.known = known
        self.suggestions = difflib.get_close_matches(name, known, n=3,
                                                     cutoff=0.4)
        message = f"unknown fuzz oracle {name!r}"
        if self.suggestions:
            message += "; did you mean: " + ", ".join(self.suggestions) + "?"
        message += f" (registered: {', '.join(known)})"
        super().__init__(message)

    def __str__(self) -> str:
        return self.args[0]


@dataclass(frozen=True)
class OracleSpec:
    """A registered oracle: name, case kind, check function, blurb.

    ``check(case)`` raises :class:`OracleFailure` on divergence and
    returns ``None`` when the property holds; any other exception is a
    crash the runner isolates.
    """

    name: str
    kind: str
    check: Callable[[FuzzCase], None]
    description: str = ""


_REGISTRY: Dict[str, OracleSpec] = {}


def register(spec: OracleSpec, replace: bool = False) -> OracleSpec:
    """Add ``spec`` to the registry; re-registration requires ``replace``."""
    if spec.kind not in generators.KINDS:
        raise ValueError(
            f"oracle kind must be one of {generators.KINDS}, got {spec.kind!r}"
        )
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"oracle {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> OracleSpec:
    """Remove and return a registered oracle spec."""
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise UnknownOracleError(name, oracle_names()) from None


def oracle_names() -> List[str]:
    """All registered oracle names, sorted."""
    return sorted(_REGISTRY)


def get_spec(name: str) -> OracleSpec:
    """The :class:`OracleSpec` for ``name``; raises :class:`UnknownOracleError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownOracleError(name, oracle_names()) from None


def specs_for_kind(kind: str) -> List[OracleSpec]:
    """Registered oracles that consume ``kind`` cases, name-sorted."""
    return [_REGISTRY[name] for name in oracle_names()
            if _REGISTRY[name].kind == kind]


def run_oracle(oracle, case: FuzzCase) -> None:
    """Run one oracle (by name or spec) against ``case``.

    Raises :class:`OracleFailure` on divergence, ``ValueError`` when the
    case kind does not match the oracle's kind.
    """
    spec = get_spec(oracle) if isinstance(oracle, str) else oracle
    if case.kind != spec.kind:
        raise ValueError(
            f"oracle {spec.name!r} wants {spec.kind!r} cases, got {case.kind!r}"
        )
    spec.check(case)


def render_table() -> str:
    """Plain-text oracle catalogue (``repro fuzz run --oracle list``)."""
    lines = [f"{'oracle':<28} {'kind':<10} description"]
    for name in oracle_names():
        spec = _REGISTRY[name]
        lines.append(f"{name:<28} {spec.kind:<10} {spec.description}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# TE / LP oracles
# ----------------------------------------------------------------------
def _relative_gap(a: float, b: float) -> float:
    return abs(a - b) / max(1.0, abs(b))


def _check_solver_pairs(case: FuzzCase) -> None:
    """Every registry solver vs the exact edge-formulation optimum.

    The edge formulation is the unrestricted optimum, so every max-flow
    solver -- path-restricted, approximate, or failure-aware (whose
    scenario capacities never exceed nominal) -- must stay within it;
    solvers advertising ``exact`` must *match* it.  MLU solvers are
    checked for a sane (nonnegative, optimal-status) utilisation.
    """
    from repro.te import registry

    topology, traffic, _scales = generators.materialize_te(case.data)
    optimum = registry.solve("edge", topology, traffic).objective
    for name in registry.solver_names():
        spec = registry.get_spec(name)
        solution = registry.make_solver(name).solve(topology, traffic)
        if not solution.ok:
            raise OracleFailure(
                "te.solver-pairs",
                f"{name} returned status {solution.status} on a feasible "
                f"instance ({case.data['name']})",
            )
        if spec.capabilities.objective == "min-mlu":
            if solution.objective < -1e-9:
                raise OracleFailure(
                    "te.solver-pairs",
                    f"{name} reported negative MLU {solution.objective:.6g}",
                )
            continue
        if solution.objective < -1e-9:
            raise OracleFailure(
                "te.solver-pairs",
                f"{name} reported negative flow {solution.objective:.6g}",
            )
        if solution.objective > optimum + _EXACT_TOL * max(1.0, optimum):
            raise OracleFailure(
                "te.solver-pairs",
                f"{name} objective {solution.objective:.6g} exceeds the "
                f"edge optimum {optimum:.6g}",
            )
        if spec.capabilities.exact and _relative_gap(
            solution.objective, optimum
        ) > _EXACT_TOL:
            raise OracleFailure(
                "te.solver-pairs",
                f"exact solver {name} objective {solution.objective:.6g} "
                f"!= edge optimum {optimum:.6g}",
            )


def _check_warm_equals_cold(case: FuzzCase) -> None:
    """Per warm-capable solver: a warm chain must match per-scale cold.

    One warm solver instance carries its LP session across the case's
    demand-scale chain (so the second and later solves genuinely take
    the reduced-model path); a fresh cold solver answers each scale
    independently.  Status must always agree.  Solvers whose
    capabilities advertise ``warm_start_exact`` must match objectives
    exactly -- the pricing loop runs to optimality, so warm is an
    optimisation, never an approximation.  Non-exact warm solvers
    (ncflow: the session steers a heuristic partition search) are held
    to :data:`repro.te.registry.WARM_APPROX_RELATIVE_BOUND` instead;
    ``tests/test_lp_session.py`` pins the recorded divergence instances
    that forced the split.
    """
    from repro.te import registry

    topology, traffic, scales = generators.materialize_te(case.data)
    warm_capable = [
        name for name in registry.solver_names()
        if registry.get_spec(name).capabilities.supports_warm_start
    ]
    for name in warm_capable:
        exact = registry.get_spec(name).capabilities.warm_start_exact
        bound = _EXACT_TOL if exact else registry.WARM_APPROX_RELATIVE_BOUND
        warm_solver = registry.make_solver(name, warm=True)
        for scale in scales:
            scaled = traffic.scaled(scale)
            warm = warm_solver.solve(topology, scaled)
            cold = registry.make_solver(name).solve(topology, scaled)
            if warm.status != cold.status:
                raise OracleFailure(
                    "te.warm-equals-cold",
                    f"{name} scale {scale:g}: warm status {warm.status} "
                    f"!= cold {cold.status}",
                )
            if _relative_gap(warm.objective, cold.objective) > bound:
                raise OracleFailure(
                    "te.warm-equals-cold",
                    f"{name} scale {scale:g}: warm objective "
                    f"{warm.objective:.6g} vs cold {cold.objective:.6g} "
                    f"exceeds the {'exact' if exact else 'approx'} bound "
                    f"{bound:g}",
                )


class _CapturingSession:
    """A cold solve session that records every model it is handed.

    Used by the decomposed-vs-exact oracle to harvest the *real* LP
    models a TE solve builds (rather than synthetic ones), then replay
    them through :func:`repro.lp.lp_discrepancy_gate`.
    """

    def __init__(self, backend):
        from repro.lp.session import SolveSession

        self._inner = SolveSession(backend)
        self.models = []

    def solve(self, model, warm_start=None):
        """Record ``model`` and solve it cold on the wrapped backend."""
        self.models.append(model)
        return self._inner.solve(model, warm_start)


def _check_decomposed_vs_exact(case: FuzzCase) -> None:
    """The reduced-core backend through the LP discrepancy gate.

    Captures the real path- and edge-formulation models the case builds
    (across its scale chain) and requires the default exact-pricing
    :class:`~repro.lp.DecomposedLPBackend` to agree with the fast
    reference on every one -- status and objective.  ``min_core`` is
    lowered so decomposition actually engages on fuzz-sized models.
    """
    from repro.lp import FastLPBackend
    from repro.lp.session import DecomposedLPBackend, lp_discrepancy_gate
    from repro.te.maxflow import solve_max_flow, solve_max_flow_edge

    topology, traffic, scales = generators.materialize_te(case.data)
    session = _CapturingSession(FastLPBackend())
    for scale in scales:
        scaled = traffic.scaled(scale)
        solve_max_flow(topology, scaled, session=session)
        solve_max_flow_edge(topology, scaled, session=session)
    candidate = DecomposedLPBackend(min_core=4, core_fraction=0.25)
    report = lp_discrepancy_gate(
        session.models, candidate, tolerance=_EXACT_TOL
    )
    if not report.clean:
        findings = "; ".join(
            d.explanation for d in report.discrepancies
        )
        raise OracleFailure("lp.decomposed-vs-exact", findings)


def _check_te_bounds(case: FuzzCase) -> None:
    """Objective and per-commodity invariants for the max-flow solvers.

    For the edge and pf4 solvers across the scale chain: objectives are
    nonnegative, never exceed total demand, are nondecreasing in scale
    (the feasible region only grows), and no commodity is granted more
    flow than it asked for.
    """
    from repro.te import registry

    topology, traffic, scales = generators.materialize_te(case.data)
    for name in ("edge", "pf4"):
        previous = None
        for scale in sorted(scales):
            scaled = traffic.scaled(scale)
            solution = registry.make_solver(name).solve(topology, scaled)
            total = scaled.total_demand
            if solution.objective < -1e-9:
                raise OracleFailure(
                    "te.bounds",
                    f"{name} scale {scale:g}: negative objective "
                    f"{solution.objective:.6g}",
                )
            if solution.objective > total + _EXACT_TOL * max(1.0, total):
                raise OracleFailure(
                    "te.bounds",
                    f"{name} scale {scale:g}: objective "
                    f"{solution.objective:.6g} exceeds total demand "
                    f"{total:.6g}",
                )
            if previous is not None and solution.objective < (
                previous - _EXACT_TOL * max(1.0, previous)
            ):
                raise OracleFailure(
                    "te.bounds",
                    f"{name}: objective decreased from {previous:.6g} to "
                    f"{solution.objective:.6g} as scale grew to {scale:g}",
                )
            previous = solution.objective
            for (src, dst), flow in solution.flow_per_commodity.items():
                demand = scaled.demand(src, dst)
                if flow < -_EXACT_TOL or flow > demand + _EXACT_TOL * max(
                    1.0, demand
                ):
                    raise OracleFailure(
                        "te.bounds",
                        f"{name} scale {scale:g}: commodity {src}->{dst} "
                        f"flow {flow:.6g} outside [0, {demand:.6g}]",
                    )


# ----------------------------------------------------------------------
# Dataplane oracles
# ----------------------------------------------------------------------
def brute_force_reaches(dataset, src: str, dst: str, address: int) -> bool:
    """Follow the forwarding tables one address at a time.

    The reference semantics every BDD-based verifier is checked against:
    per-hop ACL filtering, longest-priority lookup, loop detection via a
    visited set, and drop/self termination.
    """
    from repro.netmodel.rules import DROP_PORT, SELF_PORT

    device = src
    visited = set()
    if not dataset.devices[src].acl_permits(address):
        return False
    while True:
        if device == dst:
            return True
        if device in visited:
            return False
        visited.add(device)
        port = dataset.devices[device].lookup(address)
        if port in (DROP_PORT, SELF_PORT):
            return False
        if port not in dataset.devices:
            return False
        if not dataset.devices[port].acl_permits(address):
            return False
        device = port


def _node_pairs(dataset) -> List:
    nodes = dataset.topology.nodes
    pairs = []
    for src in nodes[:2]:
        for dst in nodes[-2:]:
            if src != dst:
                pairs.append((src, dst))
    return pairs


def _check_ap_vs_apkeep(case: FuzzCase) -> None:
    """Batch AP vs incremental APKeep on the same BDD engine.

    The minimal APKeep atom count must equal AP's, and for sampled
    (src, dst) pairs the union BDD of reachable atoms must be the
    *identical* predicate.
    """
    from repro.ap import APVerifier
    from repro.apkeep import APKeepVerifier
    from repro.bdd.builder import new_engine
    from repro.bdd.engine import BDD_FALSE

    dataset, _updates = generators.materialize_dataplane(case.data)
    engine = new_engine("jdd")
    ap = APVerifier(dataset, engine=engine)
    apkeep = APKeepVerifier(dataset, engine=engine)
    if apkeep.num_atoms_minimal != ap.num_atoms:
        raise OracleFailure(
            "ap.vs-apkeep",
            f"APKeep minimal atoms {apkeep.num_atoms_minimal} != AP atoms "
            f"{ap.num_atoms}",
        )
    for src, dst in _node_pairs(dataset):
        want = ap.atomics.union_bdd(ap.reachable_atoms(src, dst).atoms)
        got = BDD_FALSE
        for atom in apkeep.reachable_atoms(src, dst):
            got = engine.or_(got, apkeep.ppm.atoms[atom])
        if got != want:
            raise OracleFailure(
                "ap.vs-apkeep", f"reachability {src}->{dst} differs"
            )


def _check_ap_vs_bruteforce(case: FuzzCase) -> None:
    """AP reachability vs the per-address brute-force walk.

    Samples 40 addresses (deterministically from the case's schedule
    slot, so shrinking never changes the probe set) and requires the
    BDD answer and the forwarding walk to agree on each.
    """
    from repro.ap import APVerifier
    from repro.netmodel.headerspace import HEADER_BITS

    dataset, _updates = generators.materialize_dataplane(case.data)
    verifier = APVerifier(dataset)
    nodes = dataset.topology.nodes
    src, dst = nodes[0], nodes[-1]
    if src == dst:
        return
    result = verifier.reachable_atoms(src, dst)
    rng = random.Random(
        generators.case_seed(case.seed, case.index, "addresses")
    )
    for _ in range(40):
        address = rng.randrange(1 << HEADER_BITS)
        assignment = {
            i: bool((address >> (HEADER_BITS - 1 - i)) & 1)
            for i in range(HEADER_BITS)
        }
        in_atoms = any(
            verifier.engine.evaluate(verifier.atomics.atoms[a], assignment)
            for a in result.atoms
        )
        walked = brute_force_reaches(dataset, src, dst, address)
        if in_atoms != walked:
            raise OracleFailure(
                "ap.vs-bruteforce",
                f"address {address:#06x} {src}->{dst}: AP says {in_atoms}, "
                f"forwarding walk says {walked}",
            )


def _check_bfs_vs_enumeration(case: FuzzCase) -> None:
    """AP's BFS reachability vs explicit path enumeration."""
    from repro.ap import APVerifier

    dataset, _updates = generators.materialize_dataplane(case.data)
    verifier = APVerifier(dataset)
    for src, dst in _node_pairs(dataset):
        bfs = verifier.reachable_atoms(src, dst)
        enum = verifier.reachable_atoms_by_path_enumeration(src, dst)
        if bfs.atoms != enum.atoms:
            raise OracleFailure(
                "ap.bfs-vs-enumeration",
                f"{src}->{dst}: BFS atoms {sorted(bfs.atoms)} != "
                f"enumeration {sorted(enum.atoms)}",
            )


def _check_incremental_vs_batch(case: FuzzCase) -> None:
    """The case's update burst applied incrementally vs a batch rebuild.

    Inserts every update through ``APKeepVerifier.insert_rule`` while
    mirroring it into a copy of the dataset, then builds a fresh
    verifier of the final state on the *same* engine; atom counts and
    per-pair reachability predicates must agree.
    """
    from repro.apkeep import APKeepVerifier
    from repro.bdd.builder import new_engine
    from repro.bdd.engine import BDD_FALSE

    dataset, updates = generators.materialize_dataplane(case.data)
    engine = new_engine("jdd")
    verifier = APKeepVerifier(dataset, engine=engine)
    final = dataset.copy()
    for node, rule in updates:
        if node not in final.devices:
            continue
        verifier.insert_rule(node, rule)
        final.devices[node].add_rule(rule)
    fresh = APKeepVerifier(final, engine=engine)
    if verifier.num_atoms_minimal != fresh.num_atoms_minimal:
        raise OracleFailure(
            "apkeep.incremental-vs-batch",
            f"incremental minimal atoms {verifier.num_atoms_minimal} != "
            f"batch {fresh.num_atoms_minimal} after "
            f"{len(updates)} updates",
        )

    def union(v, src, dst):
        out = BDD_FALSE
        for atom in v.reachable_atoms(src, dst):
            out = engine.or_(out, v.ppm.atoms[atom])
        return out

    for src, dst in _node_pairs(final):
        if union(verifier, src, dst) != union(fresh, src, dst):
            raise OracleFailure(
                "apkeep.incremental-vs-batch",
                f"reachability {src}->{dst} differs after update burst",
            )


def _check_sharded_vs_whole(case: FuzzCase) -> None:
    """Sharded verification vs the unsharded AP verifier, byte equality.

    Partitions the case's dataset into 1..3 shards under both
    strategies, runs :class:`~repro.shard.verifier.ShardVerifier`
    (serial mode: the determinism baseline) and compares its canonical
    result document -- per-source reachability interval sets plus
    scoped blackholes -- byte-for-byte against the whole-network
    reference export.  This is the tentpole equality the shard tier
    promises: partitioning is an execution strategy, never a semantics
    change.
    """
    import json

    from repro.shard import (
        ShardVerifier,
        whole_reference_document,
    )
    from repro.shard.partition import STRATEGIES

    dataset, _updates = generators.materialize_dataplane(case.data)
    sources = [src for src, _dst in _node_pairs(dataset)] or list(
        dataset.topology.nodes[:1]
    )
    reference = json.dumps(
        whole_reference_document(dataset, sources=sources), sort_keys=True
    )
    for strategy in STRATEGIES:
        for shards in (1, 2, 3):
            sharded = ShardVerifier(
                dataset, shards=shards, strategy=strategy
            )
            got = json.dumps(
                sharded.comparison_document(sources=sources), sort_keys=True
            )
            if got != reference:
                raise OracleFailure(
                    "dataplane.sharded-vs-whole",
                    f"{shards} shards ({strategy}) diverge from the "
                    f"unsharded verifier on {case.data['name']}",
                )


def _check_stream_vs_batch(case: FuzzCase) -> None:
    """Streaming sharded updates vs a whole-network batch rebuild.

    Feeds the case's update burst through
    :class:`~repro.shard.streaming.StreamingVerifier` (per-shard APKeep
    deltas, affected-shard re-export, re-stitch) while mirroring each
    rule into a dataset copy, then requires the streamed state's
    canonical document to equal a from-scratch whole-network
    verification of the final dataset -- byte-for-byte.
    """
    import json

    from repro.shard import StreamingVerifier, whole_reference_document

    dataset, updates = generators.materialize_dataplane(case.data)
    sources = [src for src, _dst in _node_pairs(dataset)] or list(
        dataset.topology.nodes[:1]
    )
    streaming = StreamingVerifier(dataset, shards=2, sources=sources)
    final = dataset.copy()
    applied = 0
    for node, rule in updates:
        if node not in final.devices:
            continue
        streaming.apply("insert", node, rule)
        final.devices[node].add_rule(rule)
        applied += 1
    got = json.dumps(
        streaming.comparison_document(sources=sources), sort_keys=True
    )
    want = json.dumps(
        whole_reference_document(final, sources=sources), sort_keys=True
    )
    if got != want:
        raise OracleFailure(
            "dataplane.stream-vs-batch",
            f"streamed state diverges from batch rebuild after "
            f"{applied} updates on {case.data['name']}",
        )


def _check_bdd_profiles(case: FuzzCase) -> None:
    """The jdd and javabdd BDD profiles must verify identically.

    Same dataset through :class:`~repro.ap.APVerifier` on both engine
    profiles: identical atom counts, identical loop cycles, identical
    blackhole devices.
    """
    from repro.ap import APVerifier
    from repro.bdd.builder import new_engine

    dataset, _updates = generators.materialize_dataplane(case.data)
    results = {}
    for profile in ("jdd", "javabdd"):
        verifier = APVerifier(dataset, engine=new_engine(profile))
        loops = sorted(tuple(report.cycle) for report in verifier.find_loops())
        blackholes = sorted(
            report.device
            for report in verifier.find_blackholes(
                scope=verifier.allocated_atoms()
            )
        )
        results[profile] = (verifier.num_atoms, loops, blackholes)
    if results["jdd"] != results["javabdd"]:
        raise OracleFailure(
            "bdd.profiles",
            f"jdd saw {results['jdd']}, javabdd saw {results['javabdd']}",
        )


# ----------------------------------------------------------------------
# Campaign (service tier) oracles
# ----------------------------------------------------------------------
def _check_multiprocess_vs_inprocess(case: FuzzCase) -> None:
    """The same campaign job executed in-process vs in a spawn worker.

    The service tier's core determinism claim: where a job runs must
    not change what it computes.  The job executes once in this
    process and once through the process-wide spawn worker pool
    (:func:`repro.serve.shared_pool`, so repeated cases amortise the
    worker start), and the two payloads -- including the byte-exact
    ``summary`` text -- must be identical.

    Skipped under an active fault plan: fault injection is
    process-local state that does not propagate into spawn workers, so
    the two sides would legitimately diverge.
    """
    from repro.resilience import faults
    from repro.serve import run_jobs, shared_pool
    from repro.serve.jobs import execute_job

    if faults.active() is not None:
        return
    spec = generators.materialize_campaign(case.data)
    inprocess = execute_job(spec)
    pool = shared_pool(workers=1)
    outcome = run_jobs([spec], pool=pool)[0]
    if not outcome.ok:
        raise OracleFailure(
            "campaign.multiprocess-vs-inprocess",
            f"worker-pool run failed [{outcome.failure}] "
            f"{outcome.error}: {outcome.message}",
        )
    if outcome.payload != inprocess:
        diverging = sorted(
            key for key in set(inprocess) | set(outcome.payload)
            if inprocess.get(key) != outcome.payload.get(key)
        )
        raise OracleFailure(
            "campaign.multiprocess-vs-inprocess",
            f"payloads diverge on {diverging} for papers "
            f"{case.data['papers']} styles {case.data['styles']}",
        )


# ----------------------------------------------------------------------
# Planted defect (tests + CI fuzz-smoke)
# ----------------------------------------------------------------------
#: Name the planted-defect oracle registers under.
PLANTED_ORACLE = "planted.warm-liar"


class LyingWarmBackend:
    """A warm-capable LP backend whose *warm* results are quietly wrong.

    Cold solves are exact (delegated to the fast backend); a solve that
    genuinely took the reduced-model path gets its objective shaved by
    5%.  This is precisely the failure mode the warm==cold oracle
    exists to catch -- a fast path that silently diverges -- and the
    pipeline must find it, shrink it, and replay it end to end.
    """

    name = "lying-warm"
    supports_warm_start = True

    def __init__(self):
        from repro.lp import FastLPBackend

        self._inner = FastLPBackend()

    def solve(self, model):
        """Exact cold solve (the lie lives only in the warm path)."""
        return self._inner.solve(model)

    def session(self):
        """A warm session that perturbs true warm-solve objectives."""
        return _LyingWarmSession(self)


class _LyingWarmSession:
    def __init__(self, backend):
        from repro.lp.session import WarmStartSession

        self._inner = WarmStartSession(backend)
        self.stats = self._inner.stats

    def solve(self, model, warm_start=None):
        from repro.lp.model import SolveStatus

        before_warm = self.stats.warm_solves
        before_fallbacks = self.stats.fallbacks
        result = self._inner.solve(model, warm_start)
        took_warm_path = (
            self.stats.warm_solves > before_warm
            and self.stats.fallbacks == before_fallbacks
        )
        if took_warm_path and result.status is SolveStatus.OPTIMAL:
            result.objective *= 0.95
        return result


def _check_planted_warm_liar(case: FuzzCase) -> None:
    """warm==cold for pf4, but against the lying warm backend.

    Identical in shape to ``te.warm-equals-cold`` restricted to one
    solver -- which is the point: the planted defect is caught by the
    exact check the real oracle performs.
    """
    from repro.te import registry

    topology, traffic, scales = generators.materialize_te(case.data)
    warm_solver = registry.make_solver(
        "pf4", backend=LyingWarmBackend(), warm=True
    )
    for scale in scales:
        scaled = traffic.scaled(scale)
        warm = warm_solver.solve(topology, scaled)
        cold = registry.make_solver("pf4").solve(topology, scaled)
        if warm.status != cold.status or _relative_gap(
            warm.objective, cold.objective
        ) > _EXACT_TOL:
            raise OracleFailure(
                PLANTED_ORACLE,
                f"scale {scale:g}: warm objective {warm.objective:.6g} != "
                f"cold {cold.objective:.6g}",
            )


def register_planted_defect(replace: bool = True) -> OracleSpec:
    """Register the deliberately-lying warm backend oracle; returns it.

    Exposed to the CLI as ``repro fuzz run --plant-defect`` and used by
    the minimizer tests and the CI ``fuzz-smoke`` job.  ``replace=True``
    makes repeated registration (CLI run then repro) idempotent.
    """
    return register(OracleSpec(
        PLANTED_ORACLE, "te", _check_planted_warm_liar,
        "deliberately lying warm LP backend (pipeline self-test)",
    ), replace=replace)


# ----------------------------------------------------------------------
# Built-in registration
# ----------------------------------------------------------------------
register(OracleSpec(
    "te.solver-pairs", "te", _check_solver_pairs,
    "every registry solver vs the exact edge-formulation optimum",
))
register(OracleSpec(
    "te.warm-equals-cold", "te", _check_warm_equals_cold,
    "warm LP session chain == per-scale cold solves, per warm solver",
))
register(OracleSpec(
    "te.bounds", "te", _check_te_bounds,
    "objective/flow invariants + monotonicity in demand scale",
))
register(OracleSpec(
    "lp.decomposed-vs-exact", "te", _check_decomposed_vs_exact,
    "reduced-core LP backend through the discrepancy gate",
))
register(OracleSpec(
    "ap.vs-apkeep", "dataplane", _check_ap_vs_apkeep,
    "batch AP vs incremental APKeep atoms and reachability",
))
register(OracleSpec(
    "ap.vs-bruteforce", "dataplane", _check_ap_vs_bruteforce,
    "AP reachability vs per-address forwarding walk",
))
register(OracleSpec(
    "ap.bfs-vs-enumeration", "dataplane", _check_bfs_vs_enumeration,
    "AP BFS reachability vs explicit path enumeration",
))
register(OracleSpec(
    "apkeep.incremental-vs-batch", "dataplane", _check_incremental_vs_batch,
    "update burst applied incrementally vs fresh batch rebuild",
))
register(OracleSpec(
    "bdd.profiles", "dataplane", _check_bdd_profiles,
    "jdd vs javabdd engine profiles on identical verification work",
))
register(OracleSpec(
    "dataplane.sharded-vs-whole", "dataplane", _check_sharded_vs_whole,
    "sharded interval stitching vs unsharded AP, byte-identical",
))
register(OracleSpec(
    "dataplane.stream-vs-batch", "dataplane", _check_stream_vs_batch,
    "streamed shard deltas vs whole-network batch rebuild",
))
register(OracleSpec(
    "campaign.multiprocess-vs-inprocess", "campaign",
    _check_multiprocess_vs_inprocess,
    "same campaign job in-process vs spawn worker, byte-identical",
))
