"""The robust fuzz runner: time-boxed sweeps, crash isolation, artifacts.

:func:`run_fuzz` walks the deterministic case schedule (see
:mod:`repro.fuzz.generators`), runs every selected oracle against every
case through :func:`repro.parallel.run_ordered` workers, and survives
anything an oracle does:

* an :class:`~repro.fuzz.oracles.OracleFailure` becomes a
  ``"divergence"`` :class:`FuzzFailure`;
* any other exception becomes a ``"crash"`` record (including faults
  injected by an active ``--fault-plan`` -- chaos surfaces as
  structured records, never as an aborted sweep);
* a case that outruns ``case_timeout`` is abandoned by the watchdog
  and becomes a ``"timeout"`` record.

Sweeps stop at ``cases`` (a fixed window) and/or ``budget_seconds``
(checked between batches -- a time-boxed sweep still finishes the
batch in flight).  Divergences and crashes are then shrunk by
:func:`repro.fuzz.minimize.minimize_case` and written to the artifact
store under ``fuzz/1/<seed>/<case>/<oracle>`` with the exact repro
command; :func:`reproduce` round-trips a stored artifact back to a
live oracle execution.

Failure payloads deliberately exclude wall-clock durations, so the
same seed window produces byte-identical artifacts run after run --
that is what lets CI diff them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.fuzz import generators, minimize as minimize_mod, oracles
from repro.fuzz.generators import SCHEMA, FuzzCase
from repro.fuzz.oracles import OracleSpec
from repro.fuzz.watchdog import call_with_timeout

#: Default case window when neither ``cases`` nor ``budget_seconds``
#: bounds the sweep.
DEFAULT_CASES = 20

#: Default per-case watchdog timeout (seconds).
DEFAULT_CASE_TIMEOUT = 30.0


@dataclass
class FuzzFailure:
    """One oracle failure, shrunk and ready to replay.

    ``failure`` is ``"divergence"`` / ``"crash"`` / ``"timeout"``;
    ``case`` is the (possibly minimized) case data dict.  ``payload``
    renders the deterministic artifact body stored in the CAS.
    """

    oracle: str
    kind: str
    seed: int
    case_index: int
    failure: str
    error: str
    message: str
    case: Dict
    sizes_before: Dict[str, int] = field(default_factory=dict)
    sizes_after: Dict[str, int] = field(default_factory=dict)
    shrink_attempts: int = 0
    store_key: str = ""
    repro_command: str = ""
    #: Display-only variant of ``repro_command`` including ``--store``;
    #: never stored (a host path would break artifact byte-identity).
    display_command: str = ""

    @property
    def key(self) -> str:
        """Canonical store key for this failure."""
        return f"fuzz/1/{self.seed}/{self.case_index}/{self.oracle}"

    def payload(self) -> Dict:
        """Deterministic artifact body (no wall-clock, no host state)."""
        return {
            "schema": SCHEMA,
            "oracle": self.oracle,
            "kind": self.kind,
            "seed": self.seed,
            "case_index": self.case_index,
            "failure": self.failure,
            "error": self.error,
            "message": self.message,
            "case": self.case,
            "sizes_before": self.sizes_before,
            "sizes_after": self.sizes_after,
            "shrink_attempts": self.shrink_attempts,
            "repro_command": self.repro_command,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "FuzzFailure":
        """Rebuild a failure record from a stored artifact body."""
        return cls(
            oracle=payload["oracle"],
            kind=payload["kind"],
            seed=payload["seed"],
            case_index=payload["case_index"],
            failure=payload["failure"],
            error=payload["error"],
            message=payload["message"],
            case=payload["case"],
            sizes_before=payload.get("sizes_before", {}),
            sizes_after=payload.get("sizes_after", {}),
            shrink_attempts=payload.get("shrink_attempts", 0),
            repro_command=payload.get("repro_command", ""),
        )

    def describe(self) -> str:
        """One human line: where it failed and how it shrank."""
        shrink = ""
        if self.sizes_before and self.sizes_after != self.sizes_before:
            before = sum(self.sizes_before.values())
            after = sum(self.sizes_after.values())
            shrink = f" (shrunk {before}->{after} elements)"
        return (
            f"{self.oracle} case {self.case_index} [{self.failure}] "
            f"{self.error}: {self.message}{shrink}"
        )


@dataclass
class FuzzReport:
    """The outcome of one ``run_fuzz`` sweep."""

    seed: int
    oracle_names: List[str]
    cases_run: int = 0
    oracle_runs: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    budget_seconds: Optional[float] = None
    stopped_on_budget: bool = False

    @property
    def ok(self) -> bool:
        """True iff the sweep observed no failures of any kind."""
        return not self.failures

    def render(self) -> str:
        """Human summary: schedule, throughput, every failure line."""
        rate = (
            self.oracle_runs / self.elapsed_seconds
            if self.elapsed_seconds > 0 else 0.0
        )
        lines = [
            f"fuzz seed {self.seed}: {self.cases_run} cases, "
            f"{self.oracle_runs} oracle runs over "
            f"{len(self.oracle_names)} oracles in "
            f"{self.elapsed_seconds:.2f}s ({rate:.1f} runs/s)"
            + (" [budget reached]" if self.stopped_on_budget else "")
        ]
        if not self.failures:
            lines.append("no failures")
        for failure in self.failures:
            lines.append("FAIL " + failure.describe())
            command = failure.display_command or failure.repro_command
            if command:
                lines.append(f"     repro: {command}")
        return "\n".join(lines)


def _resolve_specs(oracle_filter) -> List[OracleSpec]:
    if oracle_filter is None:
        return [oracles.get_spec(name) for name in oracles.oracle_names()]
    return [
        spec if isinstance(spec, OracleSpec) else oracles.get_spec(spec)
        for spec in oracle_filter
    ]


def _run_one(spec: OracleSpec, case: FuzzCase,
             case_timeout: Optional[float]) -> Optional[FuzzFailure]:
    """One (oracle, case) execution with full crash isolation."""
    try:
        call_with_timeout(lambda: oracles.run_oracle(spec, case),
                          case_timeout)
    except Exception as exc:
        failure_kind, error = minimize_mod.classify_failure(exc)
        obs.metrics.counter("fuzz.failures", oracle=spec.name,
                            failure=failure_kind).inc()
        return FuzzFailure(
            oracle=spec.name,
            kind=case.kind,
            seed=case.seed,
            case_index=case.index,
            failure=failure_kind,
            error=error,
            message=str(exc),
            case=case.data,
            sizes_before=generators.case_sizes(case.data),
            sizes_after=generators.case_sizes(case.data),
        )
    return None


def run_fuzz(
    seed: int = 0,
    cases: Optional[int] = None,
    budget_seconds: Optional[float] = None,
    oracle_filter: Optional[Sequence] = None,
    workers: int = 1,
    case_timeout: Optional[float] = DEFAULT_CASE_TIMEOUT,
    minimize: bool = True,
    store=None,
) -> FuzzReport:
    """Run a differential fuzz sweep; returns the :class:`FuzzReport`.

    ``oracle_filter`` is a sequence of oracle names (or specs); ``None``
    runs the whole registry.  ``cases`` fixes the schedule window,
    ``budget_seconds`` time-boxes the sweep (checked between batches);
    with neither, :data:`DEFAULT_CASES` applies.  Failures (except
    timeouts) are shrunk when ``minimize`` is set, and written to
    ``store`` (a :class:`repro.store.ArtifactStore`) when one is given.

    Determinism: the case at ``(seed, index)`` and its failure artifact
    are independent of ``workers``, ``budget_seconds`` and wall time --
    a budget only decides how far into the schedule the sweep gets.
    """
    specs = _resolve_specs(oracle_filter)
    if cases is None and budget_seconds is None:
        cases = DEFAULT_CASES
    kinds = sorted({spec.kind for spec in specs})
    by_kind = {kind: [s for s in specs if s.kind == kind] for kind in kinds}
    report = FuzzReport(seed=seed, oracle_names=[s.name for s in specs],
                        budget_seconds=budget_seconds)
    start = time.monotonic()
    batch = max(workers, 1) * 2
    index = 0
    with obs.span("fuzz.run", seed=seed, oracles=len(specs)) as sp:
        while True:
            if cases is not None and index >= cases:
                break
            if budget_seconds is not None and (
                time.monotonic() - start >= budget_seconds
            ):
                report.stopped_on_budget = True
                break
            window = range(
                index,
                index + batch if cases is None else min(index + batch, cases),
            )
            tasks = []
            labels: List[Tuple[OracleSpec, FuzzCase]] = []
            for case_index in window:
                for kind in kinds:
                    case = generators.generate_case(seed, case_index, kind)
                    for spec in by_kind[kind]:
                        labels.append((spec, case))
                        tasks.append(
                            lambda spec=spec, case=case: _run_one(
                                spec, case, case_timeout
                            )
                        )
            from repro.parallel import TaskFailure, run_ordered

            results = run_ordered(tasks, workers=workers, on_error="collect")
            for (spec, case), result in zip(labels, results):
                report.oracle_runs += 1
                if isinstance(result, TaskFailure):
                    # An injected parallel.task fault (or executor-level
                    # surprise): isolate it as a structured crash record.
                    result = FuzzFailure(
                        oracle=spec.name, kind=case.kind, seed=seed,
                        case_index=case.index, failure="crash",
                        error=result.error, message=result.message,
                        case=case.data,
                        sizes_before=generators.case_sizes(case.data),
                        sizes_after=generators.case_sizes(case.data),
                    )
                if result is not None:
                    report.failures.append(result)
            report.cases_run += len(window)
            obs.metrics.counter("fuzz.cases").inc(len(window))
            index = window.stop
        sp.set(cases=report.cases_run, failures=len(report.failures))

    for failure in report.failures:
        if minimize and failure.failure != "timeout":
            spec = oracles.get_spec(failure.oracle)
            original = FuzzCase(failure.seed, failure.case_index,
                                failure.kind, failure.case)
            shrunk, attempts = minimize_mod.minimize_case(
                original, spec, (failure.failure, failure.error),
                case_timeout=case_timeout,
            )
            failure.case = shrunk.data
            failure.sizes_after = generators.case_sizes(shrunk.data)
            failure.shrink_attempts = attempts
        if store is not None:
            failure.store_key = failure.key
            failure.repro_command = f"repro fuzz repro {failure.store_key}"
            failure.display_command = (
                f"{failure.repro_command} --store {store.root}"
            )
            store.put(failure.store_key, failure.payload())
        else:
            failure.repro_command = (
                f"repro fuzz repro --seed {failure.seed} "
                f"--case {failure.case_index} --oracle {failure.oracle}"
            )
            failure.display_command = failure.repro_command

    report.elapsed_seconds = time.monotonic() - start
    return report


@dataclass(frozen=True)
class ReproOutcome:
    """Result of replaying a failure: did it fail the same way again?"""

    reproduced: bool
    failure: str
    message: str


def _replay(spec: OracleSpec, case: FuzzCase, expected: Optional[str],
            case_timeout: Optional[float]) -> ReproOutcome:
    result = _run_one(spec, case, case_timeout)
    if result is None:
        return ReproOutcome(False, "none", "oracle passed; no failure")
    reproduced = expected is None or result.failure == expected
    return ReproOutcome(reproduced, result.failure, result.message)


def _ensure_oracle(name: str) -> OracleSpec:
    """Resolve an oracle name, materialising the planted one on demand.

    A stored planted-defect artifact must replay in a fresh process
    where :func:`repro.fuzz.oracles.register_planted_defect` has not
    run; any other unknown name is a real error.
    """
    try:
        return oracles.get_spec(name)
    except oracles.UnknownOracleError:
        if name == oracles.PLANTED_ORACLE:
            return oracles.register_planted_defect(replace=True)
        raise


def reproduce(
    store,
    key: str,
    case_timeout: Optional[float] = DEFAULT_CASE_TIMEOUT,
) -> ReproOutcome:
    """Replay a stored failure artifact as a live oracle execution."""
    payload = store.get(key)
    if payload is None:
        raise KeyError(f"no fuzz artifact under key {key!r}")
    failure = FuzzFailure.from_payload(payload)
    spec = _ensure_oracle(failure.oracle)
    case = FuzzCase(failure.seed, failure.case_index, failure.kind,
                    failure.case)
    return _replay(spec, case, failure.failure, case_timeout)


def reproduce_live(
    seed: int,
    case_index: int,
    oracle: str,
    case_timeout: Optional[float] = DEFAULT_CASE_TIMEOUT,
) -> ReproOutcome:
    """Regenerate ``(seed, case_index)`` and re-run one oracle on it.

    The store-free replay path: any failure the sweep reported is
    reproducible from its schedule triple alone.
    """
    spec = _ensure_oracle(oracle)
    case = generators.generate_case(seed, case_index, spec.kind)
    return _replay(spec, case, None, case_timeout)


def list_failures(store) -> List[Tuple[str, Dict]]:
    """``(key, payload)`` for every fuzz artifact in ``store``."""
    out = []
    for key in store.keys():
        if not key.startswith("fuzz/"):
            continue
        payload = store.get(key)
        if payload is not None:
            out.append((key, payload))
    return sorted(out)
