"""Per-case watchdog time-boxing for oracle execution.

Oracles run arbitrary solver and verifier code; a pathological case
can send an LP or a BDD build into a multi-minute stall, and a
standing fuzz gate cannot afford one case hanging the sweep.
:func:`call_with_timeout` runs the callable on a daemon worker thread
and joins with a timeout: if the deadline passes, the caller gets a
:class:`CaseTimeout` and moves on, while the stalled thread is
*abandoned* (daemonized, so it cannot block interpreter exit).

Abandonment is the honest trade-off of in-process time-boxing without
signals or subprocesses: the stalled computation still burns its CPU
until it finishes, but the sweep's control flow is never blocked on
it.  Fuzz cases are sized small precisely so abandoned stragglers are
cheap.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, TypeVar

T = TypeVar("T")


class CaseTimeout(Exception):
    """A watchdogged call exceeded its deadline and was abandoned."""

    def __init__(self, seconds: float):
        self.seconds = seconds
        super().__init__(f"case exceeded the {seconds:g}s watchdog timeout")


def call_with_timeout(fn: Callable[[], T],
                      timeout: Optional[float]) -> T:
    """Run ``fn()`` with a watchdog; raise :class:`CaseTimeout` on stall.

    ``timeout`` of ``None`` (or <= 0) runs ``fn`` inline with no
    thread.  Exceptions from ``fn`` propagate unchanged, so callers
    can classify them exactly as if they had called ``fn`` directly.
    """
    if timeout is None or timeout <= 0:
        return fn()

    box = {}

    def target():
        try:
            box["value"] = fn()
        except BaseException as exc:  # propagated to the caller below
            box["error"] = exc

    worker = threading.Thread(target=target, daemon=True,
                              name="fuzz-watchdog")
    worker.start()
    worker.join(timeout)
    if worker.is_alive():
        raise CaseTimeout(timeout)
    if "error" in box:
        raise box["error"]
    return box.get("value")
