"""Linear-programming modelling layer used by the TE substrates.

The paper's participants used two different LP toolchains: the NCFlow
open-source prototype uses Gurobi while participant A's reproduction uses
PuLP (CBC), which the paper identifies as the sole cause of a up-to-111x
end-to-end latency gap.  This package provides a small modelling API
(:class:`Model`, :class:`Variable`, :class:`LinExpr`) on top of
``scipy.optimize.linprog`` plus two backend personalities that recreate the
asymmetry:

* :class:`FastLPBackend` -- solves the assembled sparse matrices directly
  (stands in for Gurobi).
* :class:`SlowLPBackend` -- first serialises the model to CPLEX LP text
  format and re-parses it, the way PuLP shells out through an ``.lp`` file
  to CBC, and solves with the slower dual-simplex method (stands in for
  PuLP/CBC).

Both backends return identical optima; only the constant factors differ.
"""

from repro.lp.model import (
    ConstraintSense,
    InfeasibleError,
    LinExpr,
    LPSolveError,
    Model,
    RECOVERABLE_STATUSES,
    SolveResult,
    SolveStatus,
    Variable,
)
from repro.lp.backends import (
    FastLPBackend,
    LPBackend,
    SlowLPBackend,
    get_backend,
)

__all__ = [
    "ConstraintSense",
    "FastLPBackend",
    "InfeasibleError",
    "LPBackend",
    "LPSolveError",
    "LinExpr",
    "Model",
    "RECOVERABLE_STATUSES",
    "SlowLPBackend",
    "SolveResult",
    "SolveStatus",
    "Variable",
    "get_backend",
]
