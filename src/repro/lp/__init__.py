"""Linear-programming modelling layer used by the TE substrates.

The paper's participants used two different LP toolchains: the NCFlow
open-source prototype uses Gurobi while participant A's reproduction uses
PuLP (CBC), which the paper identifies as the sole cause of a up-to-111x
end-to-end latency gap.  This package provides a small modelling API
(:class:`Model`, :class:`Variable`, :class:`LinExpr`) on top of
``scipy.optimize.linprog`` plus two backend personalities that recreate the
asymmetry:

* :class:`FastLPBackend` -- solves the assembled sparse matrices directly
  (stands in for Gurobi).
* :class:`SlowLPBackend` -- first serialises the model to CPLEX LP text
  format and re-parses it, the way PuLP shells out through an ``.lp`` file
  to CBC, and solves with the slower dual-simplex method (stands in for
  PuLP/CBC).

Both backends return identical optima; only the constant factors differ.

On top of the one-shot backends sits the *session tier*
(:mod:`repro.lp.session`): ``backend.session()`` returns a
:class:`SolveSession` whose solves may warm-start from the previous
solution's support (:class:`WarmStartSession`), and
:class:`DecomposedLPBackend` runs the same reduced-model + dual-pricing
machinery cold from a top-coefficient core.  Sweeps and bisections
thread one session across their near-identical solves instead of
solving each point from scratch.
"""

from repro.lp.model import (
    ConstraintSense,
    InfeasibleError,
    LinExpr,
    LPSolveError,
    Model,
    RECOVERABLE_STATUSES,
    SolveResult,
    SolveStatus,
    Variable,
)
from repro.lp.backends import (
    FastLPBackend,
    LPBackend,
    SlowLPBackend,
    get_backend,
)
from repro.lp.session import (
    DecomposedLPBackend,
    SessionStats,
    SolveSession,
    WarmStartSession,
    lp_discrepancy_gate,
)

__all__ = [
    "ConstraintSense",
    "DecomposedLPBackend",
    "FastLPBackend",
    "InfeasibleError",
    "LPBackend",
    "LPSolveError",
    "LinExpr",
    "Model",
    "RECOVERABLE_STATUSES",
    "SessionStats",
    "SlowLPBackend",
    "SolveResult",
    "SolveSession",
    "SolveStatus",
    "Variable",
    "WarmStartSession",
    "get_backend",
    "lp_discrepancy_gate",
]
