"""LP solver backends with the two "personalities" described in DESIGN.md.

Participant A's reproduced NCFlow was up to 111x slower end-to-end than the
open-source prototype purely because of the LP toolchain: the prototype calls
Gurobi in-process while the reproduction goes through PuLP, which serialises
the model to an ``.lp`` file, shells out to CBC, and parses the solution back.

* :class:`FastLPBackend` solves the assembled sparse matrices directly with
  HiGHS (interior point / dual simplex chosen by HiGHS), like Gurobi's
  in-process API.
* :class:`SlowLPBackend` reproduces the PuLP code path honestly: it writes
  the model to CPLEX LP text format, re-parses that text into a fresh model,
  and only then solves -- with the plain dual-simplex method.  All the extra
  latency is real serialisation work, not a sleep.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro import obs
from repro.lp.model import (
    ConstraintSense,
    LinExpr,
    Model,
    SolveResult,
    SolveStatus,
)

_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ITERATION_LIMIT,
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


class LPBackend:
    """Interface all LP backends implement."""

    name = "abstract"
    #: Whether :meth:`session` returns a genuinely warm-starting session
    #: (:class:`~repro.lp.session.WarmStartSession`) instead of the base
    #: cold-per-call session.
    supports_warm_start = False

    def solve(self, model: Model) -> SolveResult:
        """Solve ``model`` once, cold; subclasses implement this."""
        raise NotImplementedError

    def session(self):
        """A :class:`~repro.lp.session.SolveSession` over this backend.

        The base implementation hands out a cold session (every solve
        is a plain :meth:`solve`), so callers can thread sessions
        unconditionally; backends that can exploit a previous solution
        override this and advertise ``supports_warm_start``.
        """
        from repro.lp.session import SolveSession

        return SolveSession(self)

    def _run_linprog(
        self, model: Model, method: str, observe_seconds: bool = True
    ) -> SolveResult:
        from scipy.optimize import linprog

        from repro.resilience import faults

        injector = faults.active()
        if injector is not None:
            injector.maybe_fail("lp.solve", prefix=f"{self.name}|{model.name}")
        assembled = model.to_matrices()
        if assembled.cost.shape[0] == 0:
            return SolveResult(
                status=SolveStatus.OPTIMAL,
                objective=assembled.objective_constant,
                values=[],
                backend_name=self.name,
            )
        with obs.span(
            "lp.solve",
            model=model.name,
            backend=self.name,
            method=method,
            vars=assembled.cost.shape[0],
        ) as sp:
            raw = linprog(
                c=assembled.cost,
                A_ub=assembled.a_ub,
                b_ub=assembled.b_ub,
                A_eq=assembled.a_eq,
                b_eq=assembled.b_eq,
                bounds=assembled.bounds,
                method=method,
            )
        elapsed = sp.duration
        iterations = int(getattr(raw, "nit", 0) or 0)
        obs.metrics.counter("lp.solves", backend=self.name, method=method).inc()
        obs.metrics.histogram(
            "lp.iterations", buckets=(1, 10, 100, 1000, 10000),
            backend=self.name,
        ).observe(iterations)
        if observe_seconds:
            obs.metrics.histogram(
                "lp.solve_seconds", backend=self.name
            ).observe(elapsed)
        status = _STATUS_MAP.get(raw.status, SolveStatus.ERROR)
        if status is SolveStatus.OPTIMAL:
            objective = float(raw.fun)
            if assembled.maximize:
                objective = -objective
            objective += assembled.objective_constant
            values = [float(v) for v in raw.x]
        else:
            objective = float("nan")
            values = [0.0] * len(model.variables)
        return SolveResult(
            status=status,
            objective=objective,
            values=values,
            iterations=iterations,
            solve_seconds=elapsed,
            backend_name=self.name,
        )


class FastLPBackend(LPBackend):
    """In-process solve, standing in for Gurobi."""

    name = "fast-highs"
    supports_warm_start = True

    def solve(self, model: Model) -> SolveResult:
        """Solve the assembled matrices directly with HiGHS."""
        return self._run_linprog(model, method="highs")

    def session(self):
        """A warm session: support reduction + exact dual pricing."""
        from repro.lp.session import WarmStartSession

        return WarmStartSession(self)


class SlowLPBackend(LPBackend):
    """File-format round-trip solve, standing in for PuLP + CBC.

    The round-trip count can be raised to model slower toolchains; each
    round trip serialises the model to LP text and re-parses it, which is
    exactly the overhead PuLP pays once per solve (write ``.lp``, fork CBC,
    CBC re-reads the file).
    """

    name = "slow-pulp"

    def __init__(self, round_trips: int = 3):
        if round_trips < 1:
            raise ValueError("round_trips must be >= 1")
        self.round_trips = round_trips

    def solve(self, model: Model) -> SolveResult:
        """Round-trip through LP text, then solve with dual simplex.

        The ``lp.solve_seconds{backend="slow-pulp"}`` histogram observes
        the *round-trip* duration (serialise + parse + solve), matching
        ``result.solve_seconds`` -- the serialisation cost is the whole
        point of this personality, so hiding it from /metrics would
        undercount exactly the latency the paper attributes to PuLP.
        """
        with obs.span(
            "lp.roundtrip", model=model.name, trips=self.round_trips
        ) as sp:
            current = model
            for _ in range(self.round_trips):
                text = write_lp_text(current)
                current = parse_lp_text(text)
            result = self._run_linprog(
                current, method="highs-ds", observe_seconds=False
            )
        result.solve_seconds = sp.duration
        result.backend_name = self.name
        obs.metrics.histogram(
            "lp.solve_seconds", backend=self.name
        ).observe(sp.duration)
        return result


def get_backend(name: str) -> LPBackend:
    """Look up a backend by personality name.

    ``"fast"``/``"slow"`` are the two stock personalities;
    ``"fallback"`` is the resilience chain ``fast -> slow``
    (:class:`repro.resilience.FallbackLPBackend`); ``"decomposed"`` is
    the reduced-core iterative solver
    (:class:`~repro.lp.session.DecomposedLPBackend`).
    """
    normalised = name.lower()
    if normalised in ("fast", "gurobi", "fast-highs"):
        return FastLPBackend()
    if normalised in ("slow", "pulp", "cbc", "slow-pulp"):
        return SlowLPBackend()
    if normalised in ("fallback", "resilient"):
        from repro.resilience.fallback import FallbackLPBackend

        return FallbackLPBackend()
    if normalised in ("decomposed", "gasplan", "reduced"):
        from repro.lp.session import DecomposedLPBackend

        return DecomposedLPBackend()
    raise KeyError(f"unknown LP backend {name!r}")


# ----------------------------------------------------------------------
# CPLEX LP text format (the subset PuLP emits)
# ----------------------------------------------------------------------

def _format_expr(
    expr: LinExpr, var_names: List[str], include_constant: bool = False
) -> str:
    parts: List[str] = []
    for idx in sorted(expr.coefs):
        coef = expr.coefs[idx]
        if coef == 0.0:
            continue
        sign = "+" if coef >= 0 else "-"
        parts.append(f"{sign} {abs(coef):.12g} {var_names[idx]}")
    if include_constant and expr.constant != 0.0:
        # Only the objective row keeps its constant in LP text;
        # constraint rows fold it into the right-hand side.
        sign = "+" if expr.constant >= 0 else "-"
        parts.append(f"{sign} {abs(expr.constant):.12g}")
    if not parts:
        return "0"
    text = " ".join(parts)
    return text[2:] if text.startswith("+ ") else text


def _sanitize_names(model: Model) -> List[str]:
    """LP-format-safe, unique variable names (like ``PuLP.writeLP``)."""
    names: List[str] = []
    seen = set()
    for var in model.variables:
        name = re.sub(r"[^A-Za-z0-9_]", "_", var.name)
        if not name or not (name[0].isalpha() or name[0] == "_"):
            name = f"x_{var.index}"
        if name in seen:
            name = f"{name}_{var.index}"
        seen.add(name)
        names.append(name)
    return names


def write_lp_text(model: Model) -> str:
    """Serialise ``model`` to CPLEX LP format, like ``PuLP.writeLP``."""
    names = _sanitize_names(model)
    lines = [f"\\* {model.name} *\\"]
    lines.append("Maximize" if model.is_maximize else "Minimize")
    lines.append(
        " obj: "
        + _format_expr(model.objective_expr, names, include_constant=True)
    )
    lines.append("Subject To")
    sense_token = {
        ConstraintSense.LE: "<=",
        ConstraintSense.GE: ">=",
        ConstraintSense.EQ: "=",
    }
    for constraint in model.constraints:
        rhs = -constraint.expr.constant
        row_name = re.sub(r"[^A-Za-z0-9_]", "_", constraint.name) or f"c{constraint.row}"
        lines.append(
            f" {row_name}: {_format_expr(constraint.expr, names)} "
            f"{sense_token[constraint.sense]} {rhs:.12g}"
        )
    lines.append("Bounds")
    for var, name in zip(model.variables, names):
        upper = "+inf" if var.upper == float("inf") else f"{var.upper:.12g}"
        lines.append(f" {var.lower:.12g} <= {name} <= {upper}")
    lines.append("End")
    return "\n".join(lines)


_TOKEN_RE = re.compile(
    r"(?P<sign>[+-])"
    r"|(?P<number>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_][\w.\[\],]*)"
)


def _parse_expr(text: str, var_index: Dict[str, int]) -> LinExpr:
    """Parse a sum of ``[+-] [coef] [var]`` terms, including bare
    constants (a number followed by no variable name, as the objective
    row emits for a constant offset)."""
    expr = LinExpr()
    sign = 1.0
    pending: Optional[float] = None
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        if kind == "sign":
            if pending is not None:
                expr.constant += sign * pending
                pending = None
            sign = -1.0 if match.group() == "-" else 1.0
        elif kind == "number":
            if pending is not None:
                expr.constant += sign * pending
            pending = float(match.group())
        else:
            coef = sign * (pending if pending is not None else 1.0)
            idx = var_index[match.group()]
            expr.coefs[idx] = expr.coefs.get(idx, 0.0) + coef
            pending = None
            sign = 1.0
    if pending is not None:
        expr.constant += sign * pending
    return expr


def parse_lp_text(text: str) -> Model:
    """Parse LP text produced by :func:`write_lp_text` back into a model."""
    lines = [ln.rstrip() for ln in text.splitlines() if ln.strip()]
    model = Model("parsed")
    section = None
    maximize = False
    objective_text: Optional[str] = None
    constraint_rows: List[str] = []
    bound_rows: List[str] = []
    for line in lines:
        stripped = line.strip()
        lowered = stripped.lower()
        if stripped.startswith("\\*"):
            continue
        if lowered in ("maximize", "minimize"):
            maximize = lowered == "maximize"
            section = "objective"
            continue
        if lowered == "subject to":
            section = "constraints"
            continue
        if lowered == "bounds":
            section = "bounds"
            continue
        if lowered == "end":
            break
        if section == "objective":
            objective_text = stripped.split(":", 1)[1]
        elif section == "constraints":
            constraint_rows.append(stripped)
        elif section == "bounds":
            bound_rows.append(stripped)

    var_index: Dict[str, int] = {}
    for row in bound_rows:
        lower_text, name, upper_text = _split_bound(row)
        upper = float("inf") if upper_text in ("+inf", "inf") else float(upper_text)
        var = model.add_var(name=name, lower=float(lower_text), upper=upper)
        var_index[name] = var.index

    if objective_text is not None:
        objective = _parse_expr(objective_text, var_index)
        if maximize:
            model.maximize(objective)
        else:
            model.minimize(objective)

    for row in constraint_rows:
        name, body = row.split(":", 1)
        match = re.search(r"(<=|>=|=)\s*([+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)\s*$", body)
        if match is None:
            raise ValueError(f"cannot parse constraint row {row!r}")
        sense_token, rhs_text = match.group(1), match.group(2)
        lhs = _parse_expr(body[: match.start()], var_index)
        rhs = float(rhs_text)
        if sense_token == "<=":
            model.add_constraint(lhs <= rhs, name=name.strip())
        elif sense_token == ">=":
            model.add_constraint(lhs >= rhs, name=name.strip())
        else:
            model.add_constraint(lhs.equals(rhs), name=name.strip())
    return model


def _split_bound(row: str):
    parts = row.split("<=")
    if len(parts) != 3:
        raise ValueError(f"cannot parse bound row {row!r}")
    return parts[0].strip(), parts[1].strip(), parts[2].strip()
