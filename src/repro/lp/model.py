"""A small LP modelling API assembled into sparse matrices for HiGHS.

The API is intentionally close to the subset of Gurobi/PuLP that the TE
systems in this repository need: continuous variables with bounds, linear
expressions built with ``+``/``-``/``*``, ``<=``/``>=``/``==`` constraints,
and a linear objective.  Expressions keep ``{variable index: coefficient}``
dictionaries, so building a model is O(number of nonzeros).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]


class ConstraintSense(enum.Enum):
    """Direction of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="


class SolveStatus(enum.Enum):
    """Outcome of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    ERROR = "error"


#: Statuses a different backend might clear: numerical trouble and
#: exhausted iteration budgets.  INFEASIBLE/UNBOUNDED are properties of
#: the *model*, so retrying them elsewhere would only mask real bugs.
RECOVERABLE_STATUSES = frozenset(
    {SolveStatus.ERROR, SolveStatus.ITERATION_LIMIT}
)


class InfeasibleError(RuntimeError):
    """Raised by :meth:`Model.solve` when ``raise_on_infeasible`` is set."""


class LPSolveError(RuntimeError):
    """A solve ended non-OPTIMAL where the caller needs a real optimum.

    Carries the model statistics a debugging session wants first:
    status, model name, variable/constraint counts, backend, iterations.
    """

    def __init__(
        self,
        message: str,
        status: "SolveStatus" = None,
        model_name: str = "",
        backend_name: str = "",
        num_vars: int = 0,
        num_constraints: int = 0,
        iterations: int = 0,
    ):
        super().__init__(message)
        self.status = status
        self.model_name = model_name
        self.backend_name = backend_name
        self.num_vars = num_vars
        self.num_constraints = num_constraints
        self.iterations = iterations

    @classmethod
    def from_result(cls, model: "Model", result: "SolveResult") -> "LPSolveError":
        """Build a descriptive error from a failed solve's result."""
        return cls(
            f"LP solve of {model.name!r} ended with status "
            f"{result.status.value} "
            f"({len(model.variables)} vars, {len(model.constraints)} "
            f"constraints, backend {result.backend_name or 'default'}, "
            f"{result.iterations} iterations)",
            status=result.status,
            model_name=model.name,
            backend_name=result.backend_name,
            num_vars=len(model.variables),
            num_constraints=len(model.constraints),
            iterations=result.iterations,
        )


@dataclass(frozen=True)
class Variable:
    """A continuous decision variable.

    Instances are created through :meth:`Model.add_var` and are only
    meaningful within their owning model (``index`` is the column number).
    """

    index: int
    name: str
    lower: float
    upper: float

    def __add__(self, other: Union["Variable", "LinExpr", Number]) -> "LinExpr":
        return LinExpr.from_term(self) + other

    def __radd__(self, other: Union["LinExpr", Number]) -> "LinExpr":
        return LinExpr.from_term(self) + other

    def __sub__(self, other: Union["Variable", "LinExpr", Number]) -> "LinExpr":
        return LinExpr.from_term(self) - other

    def __rsub__(self, other: Union["LinExpr", Number]) -> "LinExpr":
        return (-LinExpr.from_term(self)) + other

    def __mul__(self, coef: Number) -> "LinExpr":
        return LinExpr({self.index: float(coef)})

    def __rmul__(self, coef: Number) -> "LinExpr":
        return self.__mul__(coef)

    def __neg__(self) -> "LinExpr":
        return LinExpr({self.index: -1.0})

    def __le__(self, other: Union["Variable", "LinExpr", Number]) -> "_PendingConstraint":
        return LinExpr.from_term(self) <= other

    def __ge__(self, other: Union["Variable", "LinExpr", Number]) -> "_PendingConstraint":
        return LinExpr.from_term(self) >= other


class LinExpr:
    """A linear expression: ``sum(coef[i] * x[i]) + constant``."""

    __slots__ = ("coefs", "constant")

    def __init__(self, coefs: Optional[Dict[int, float]] = None, constant: float = 0.0):
        self.coefs: Dict[int, float] = dict(coefs) if coefs else {}
        self.constant = float(constant)

    @staticmethod
    def from_term(var: Variable, coef: float = 1.0) -> "LinExpr":
        """A single-term expression: ``coef * var``."""
        return LinExpr({var.index: float(coef)})

    @staticmethod
    def sum_of(terms: Iterable[Union[Variable, "LinExpr"]]) -> "LinExpr":
        """Sum many variables/expressions without quadratic re-copying."""
        out = LinExpr()
        for term in terms:
            out._iadd(term)
        return out

    def copy(self) -> "LinExpr":
        """An independent copy (mutating it leaves ``self`` unchanged)."""
        return LinExpr(self.coefs, self.constant)

    def _iadd(self, other: Union[Variable, "LinExpr", Number], sign: float = 1.0) -> None:
        if isinstance(other, Variable):
            self.coefs[other.index] = self.coefs.get(other.index, 0.0) + sign
        elif isinstance(other, LinExpr):
            for idx, coef in other.coefs.items():
                self.coefs[idx] = self.coefs.get(idx, 0.0) + sign * coef
            self.constant += sign * other.constant
        else:
            self.constant += sign * float(other)

    def __add__(self, other: Union[Variable, "LinExpr", Number]) -> "LinExpr":
        out = self.copy()
        out._iadd(other)
        return out

    def __radd__(self, other: Union[Variable, Number]) -> "LinExpr":
        return self.__add__(other)

    def __iadd__(self, other: Union[Variable, "LinExpr", Number]) -> "LinExpr":
        self._iadd(other)
        return self

    def __sub__(self, other: Union[Variable, "LinExpr", Number]) -> "LinExpr":
        out = self.copy()
        out._iadd(other, sign=-1.0)
        return out

    def __rsub__(self, other: Union[Variable, Number]) -> "LinExpr":
        out = -self
        out._iadd(other)
        return out

    def __isub__(self, other: Union[Variable, "LinExpr", Number]) -> "LinExpr":
        self._iadd(other, sign=-1.0)
        return self

    def __mul__(self, coef: Number) -> "LinExpr":
        scale = float(coef)
        return LinExpr(
            {idx: c * scale for idx, c in self.coefs.items()}, self.constant * scale
        )

    def __rmul__(self, coef: Number) -> "LinExpr":
        return self.__mul__(coef)

    def __neg__(self) -> "LinExpr":
        return self.__mul__(-1.0)

    def __le__(self, other: Union[Variable, "LinExpr", Number]) -> "_PendingConstraint":
        return _PendingConstraint(self - other, ConstraintSense.LE)

    def __ge__(self, other: Union[Variable, "LinExpr", Number]) -> "_PendingConstraint":
        return _PendingConstraint(self - other, ConstraintSense.GE)

    def equals(self, other: Union[Variable, "LinExpr", Number]) -> "_PendingConstraint":
        """Build an equality constraint (``==`` is kept for identity)."""
        return _PendingConstraint(self - other, ConstraintSense.EQ)

    def value(self, solution: Sequence[float]) -> float:
        """Evaluate the expression against a solution vector."""
        return self.constant + sum(
            coef * solution[idx] for idx, coef in self.coefs.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = " + ".join(f"{c:g}*x{i}" for i, c in sorted(self.coefs.items()))
        return f"LinExpr({terms} + {self.constant:g})"


@dataclass
class _PendingConstraint:
    """Normalised constraint ``expr (sense) 0`` awaiting registration."""

    expr: LinExpr
    sense: ConstraintSense


@dataclass
class Constraint:
    """A registered constraint; ``row`` is its row number in the model."""

    row: int
    name: str
    expr: LinExpr
    sense: ConstraintSense


@dataclass
class SolveResult:
    """Outcome of :meth:`Model.solve`."""

    status: SolveStatus
    objective: float
    values: List[float]
    iterations: int = 0
    solve_seconds: float = 0.0
    backend_name: str = ""

    def value_of(self, var: Variable) -> float:
        """The solved value of ``var``."""
        return self.values[var.index]

    @property
    def ok(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    def require_optimal(self, model: "Model") -> "SolveResult":
        """This result, or :class:`LPSolveError` if it is not OPTIMAL.

        Solver call sites chain this onto :meth:`Model.solve` so a
        failed solve surfaces as a descriptive exception instead of the
        NaN objective and all-zero variable values a non-OPTIMAL result
        carries.
        """
        if self.status is SolveStatus.OPTIMAL:
            return self
        raise LPSolveError.from_result(model, self)


class Model:
    """An LP model with a Gurobi/PuLP-flavoured construction API.

    >>> m = Model("toy")
    >>> x = m.add_var(name="x", upper=4)
    >>> y = m.add_var(name="y", upper=3)
    >>> _ = m.add_constraint(x + y <= 5, name="cap")
    >>> m.maximize(x + 2 * y)
    >>> result = m.solve()
    >>> round(result.objective, 6)
    8.0
    """

    def __init__(self, name: str = "model"):
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self._objective = LinExpr()
        self._maximize = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_var(
        self,
        name: Optional[str] = None,
        lower: float = 0.0,
        upper: float = float("inf"),
    ) -> Variable:
        """Add one continuous variable and return its handle."""
        if upper < lower:
            raise ValueError(f"variable {name!r}: upper {upper} < lower {lower}")
        index = len(self.variables)
        var = Variable(index, name or f"x{index}", float(lower), float(upper))
        self.variables.append(var)
        return var

    def add_vars(self, count: int, prefix: str = "x", **kwargs) -> List[Variable]:
        """Add ``count`` variables named ``prefix0..prefixN-1``."""
        return [self.add_var(name=f"{prefix}{i}", **kwargs) for i in range(count)]

    def add_constraint(
        self, pending: _PendingConstraint, name: Optional[str] = None
    ) -> Constraint:
        """Register a constraint built via ``<=``, ``>=`` or ``.equals``."""
        if not isinstance(pending, _PendingConstraint):
            raise TypeError(
                "add_constraint expects an expression comparison, "
                f"got {type(pending).__name__}"
            )
        row = len(self.constraints)
        constraint = Constraint(row, name or f"c{row}", pending.expr, pending.sense)
        self.constraints.append(constraint)
        return constraint

    def maximize(self, expr: Union[Variable, LinExpr]) -> None:
        """Set the objective to maximise ``expr``."""
        self._objective = LinExpr.from_term(expr) if isinstance(expr, Variable) else expr.copy()
        self._maximize = True

    def minimize(self, expr: Union[Variable, LinExpr]) -> None:
        """Set the objective to minimise ``expr``."""
        self._objective = LinExpr.from_term(expr) if isinstance(expr, Variable) else expr.copy()
        self._maximize = False

    @property
    def objective_expr(self) -> LinExpr:
        return self._objective

    @property
    def is_maximize(self) -> bool:
        return self._maximize

    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    # ------------------------------------------------------------------
    # Matrix assembly
    # ------------------------------------------------------------------
    def to_matrices(self) -> "AssembledLP":
        """Assemble the model into the arrays ``linprog`` expects."""
        import numpy as np
        from scipy import sparse

        n = len(self.variables)
        cost = np.zeros(n)
        for idx, coef in self._objective.coefs.items():
            cost[idx] = coef
        if self._maximize:
            cost = -cost

        ub_rows: List[Tuple[Dict[int, float], float]] = []
        eq_rows: List[Tuple[Dict[int, float], float]] = []
        for constraint in self.constraints:
            rhs = -constraint.expr.constant
            if constraint.sense is ConstraintSense.LE:
                ub_rows.append((constraint.expr.coefs, rhs))
            elif constraint.sense is ConstraintSense.GE:
                negated = {i: -c for i, c in constraint.expr.coefs.items()}
                ub_rows.append((negated, -rhs))
            else:
                eq_rows.append((constraint.expr.coefs, rhs))

        def build(rows: List[Tuple[Dict[int, float], float]]):
            if not rows:
                return None, None
            data, row_idx, col_idx, rhs_vec = [], [], [], []
            for r, (coefs, rhs) in enumerate(rows):
                rhs_vec.append(rhs)
                for col, coef in coefs.items():
                    row_idx.append(r)
                    col_idx.append(col)
                    data.append(coef)
            matrix = sparse.csr_matrix(
                (data, (row_idx, col_idx)), shape=(len(rows), n)
            )
            return matrix, np.asarray(rhs_vec)

        a_ub, b_ub = build(ub_rows)
        a_eq, b_eq = build(eq_rows)
        bounds = [(v.lower, None if v.upper == float("inf") else v.upper) for v in self.variables]
        return AssembledLP(
            cost=cost,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            maximize=self._maximize,
            objective_constant=self._objective.constant,
        )

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self, backend=None, raise_on_infeasible: bool = False) -> SolveResult:
        """Solve with ``backend`` (default: a :class:`FastLPBackend`)."""
        from repro.lp.backends import FastLPBackend

        if backend is None:
            backend = FastLPBackend()
        result = backend.solve(self)
        if raise_on_infeasible and result.status is not SolveStatus.OPTIMAL:
            raise InfeasibleError(
                f"model {self.name!r}: solve ended with status {result.status.value}"
            )
        return result


@dataclass
class AssembledLP:
    """Sparse-matrix form of a :class:`Model`, ready for ``linprog``."""

    cost: "object"
    a_ub: "object"
    b_ub: "object"
    a_eq: "object"
    b_eq: "object"
    bounds: List[Tuple[float, Optional[float]]]
    maximize: bool
    objective_constant: float = 0.0
