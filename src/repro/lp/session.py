"""Incremental LP solve sessions: warm starts and reduced-model solves.

``scale_sweep``, ``max_feasible_scale``, and NCFlow's residual passes
re-solve near-identical LPs: same tunnel structure, same constraint
rows, only demands and capacities move.  The one-shot
``LPBackend.solve`` path re-solves each of those cold.  This module
adds the session tier that exploits the similarity:

* :class:`SolveSession` -- the base session every backend can hand out
  (``backend.session()``); it just solves cold, so callers can thread a
  session unconditionally.
* :class:`WarmStartSession` -- warm-starts each solve from the previous
  solution's *support*: columns the last optimum left at their lower
  bound are dropped, the reduced LP (all rows kept) is solved, and a
  dual-pricing loop re-admits any dropped column with a negative
  reduced cost until the reduced optimum is provably optimal for the
  full model.  ``scipy``'s HiGHS wrapper has no basis/``x0`` warm
  start, so this support-reduction scheme is how a "warm" solve gets
  cheaper here -- and because pricing runs to exactness, the result is
  the true optimum, not an approximation.
* :class:`DecomposedLPBackend` -- the same machinery run cold: extract
  a reduced *core* model from the top-|coefficient| variables (the
  GASPLAN recipe), solve it, then iterate against the full model.  With
  ``convergence_tolerance > 0`` it may stop early and is approximate;
  the default prices to exactness.
* :func:`lp_discrepancy_gate` -- the accuracy gate: solves instances
  with a candidate and a reference backend and reports objective gaps
  and status mismatches through the discrepancy machinery, so the
  approximate tier can only land while it agrees with the exact one.

Correctness rules baked into the pricing loop:

* all constraint rows are always kept, so a reduced solution extended
  with zeros is feasible for the full model;
* a reduced-model INFEASIBLE / ERROR / ITERATION_LIMIT is **not** a
  property of the full model (dropping columns can starve an equality
  row) -- those fall back to a full cold solve, never masking or
  inventing infeasibility;
* a reduced-model UNBOUNDED ray extends with zeros to a full-model
  ray, so UNBOUNDED is reported honestly.

Metrics: reduced solves count under ``lp.reduced_solves`` /
``lp.warm_starts`` / ``lp.reduced_vars`` (labelled ``backend=``) and
deliberately do **not** touch ``lp.solves``, which keeps counting full
cold solves only -- that is what makes "the warm sweep does strictly
fewer ``lp.solves``" a meaningful CI assertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro import obs
from repro.lp.backends import LPBackend, _STATUS_MAP
from repro.lp.model import Model, SolveResult, SolveStatus

#: Buckets for the ``lp.reduced_vars`` histogram (kept-column counts).
_REDUCED_VAR_BUCKETS = (8, 32, 128, 512, 2048, 8192)


@dataclass
class SessionStats:
    """Counters a session keeps about its own solve history."""

    cold_solves: int = 0
    warm_solves: int = 0
    fallbacks: int = 0
    pricing_rounds: int = 0
    last_reduced_vars: int = 0


class SolveSession:
    """A sequence of related solves against one backend.

    The base session carries no warm-start state: every
    :meth:`solve` is a plain cold ``backend.solve``.  It exists so
    call sites can thread a session unconditionally --
    ``backend.session()`` returns a :class:`WarmStartSession` only when
    the backend advertises ``supports_warm_start``.
    """

    def __init__(self, backend: LPBackend):
        self.backend = backend
        self.last: Optional[SolveResult] = None
        self.stats = SessionStats()

    def solve(
        self, model: Model, warm_start: Optional[SolveResult] = None
    ) -> SolveResult:
        """Solve ``model``; ``warm_start`` is accepted and ignored."""
        result = self.backend.solve(model)
        self.stats.cold_solves += 1
        if result.status is SolveStatus.OPTIMAL:
            self.last = result
        return result


class WarmStartSession(SolveSession):
    """Support-reduction warm starts with an exact dual-pricing loop.

    Each solve after the first drops the columns the previous optimum
    left at a zero lower bound (``keep_threshold`` separates support
    from numerical dust), solves the reduced LP over all original
    rows, then re-admits every dropped column whose reduced cost
    ``c_j - A_ub^T λ_ub - A_eq^T λ_eq`` is below ``-pricing_tolerance``
    and re-solves, until no column prices out -- at which point the
    zero-extended reduced optimum is optimal for the full model.

    ``warm_start`` overrides the remembered previous result;
    ``convergence_tolerance > 0`` allows stopping once successive
    reduced objectives agree to that relative tolerance (approximate
    mode, used by :class:`DecomposedLPBackend` sessions).  Any reduced
    status other than OPTIMAL/UNBOUNDED, an exhausted round budget, or
    a degenerate reduction falls back to a full cold solve.

    The session also *accumulates* support down a chain: every column
    pricing ever re-admitted stays in the kept set for later solves.
    Nearby instances keep dragging the same columns back in, so the
    union makes later solves price out in one round instead of
    re-running the same admission rounds per solve; the
    ``max_keep_fraction`` guard still demotes a chain whose union
    creeps toward the full model to plain cold solves.
    """

    def __init__(
        self,
        backend: LPBackend,
        method: str = "highs",
        keep_threshold: float = 1e-9,
        max_keep_fraction: float = 0.95,
        max_pricing_rounds: int = 8,
        pricing_tolerance: float = 1e-7,
        convergence_tolerance: float = 0.0,
    ):
        super().__init__(backend)
        self.method = method
        self.keep_threshold = keep_threshold
        self.max_keep_fraction = max_keep_fraction
        self.max_pricing_rounds = max_pricing_rounds
        self.pricing_tolerance = pricing_tolerance
        self.convergence_tolerance = convergence_tolerance
        # Union of every column pricing re-admitted this chain; reset
        # whenever the session solves cold (a new chain starts small).
        self._accumulated = None

    def solve(
        self, model: Model, warm_start: Optional[SolveResult] = None
    ) -> SolveResult:
        """Warm solve from the previous support; cold when impossible."""
        import numpy as np

        previous = warm_start if warm_start is not None else self.last
        if (
            previous is None
            or previous.status is not SolveStatus.OPTIMAL
            or len(previous.values) != model.num_vars
            or model.num_vars == 0
        ):
            return self._cold(model)

        assembled = model.to_matrices()
        n = assembled.cost.shape[0]
        lowers = np.array([bound[0] for bound in assembled.bounds])
        keep = (np.asarray(previous.values) > self.keep_threshold) | (
            lowers != 0.0
        )
        if self._accumulated is not None and len(self._accumulated) == n:
            keep |= self._accumulated
        kept = int(keep.sum())
        if kept == 0 or kept >= self.max_keep_fraction * n:
            return self._cold(model)

        backend_name = self.backend.name
        obs.metrics.counter("lp.warm_starts", backend=backend_name).inc()
        self.stats.warm_solves += 1
        result = _pricing_solve(
            model,
            assembled,
            keep,
            backend_name=backend_name,
            method=self.method,
            max_rounds=self.max_pricing_rounds,
            pricing_tolerance=self.pricing_tolerance,
            convergence_tolerance=self.convergence_tolerance,
            stats=self.stats,
        )
        if result is None:
            obs.metrics.counter("lp.warm_fallbacks", backend=backend_name).inc()
            self.stats.fallbacks += 1
            return self._cold(model)
        # _pricing_solve mutated ``keep`` as columns were re-admitted;
        # remember the union so the next solve starts from it.
        self._accumulated = keep
        if result.status is SolveStatus.OPTIMAL:
            self.last = result
        return result

    def _cold(self, model: Model) -> SolveResult:
        """Full solve through the backend; refreshes the session state."""
        result = self.backend.solve(model)
        self.stats.cold_solves += 1
        self._accumulated = None
        if result.status is SolveStatus.OPTIMAL:
            self.last = result
        return result


class DecomposedLPBackend(LPBackend):
    """Reduced-core decomposition solver (the GASPLAN recipe).

    A solve extracts the ``core_fraction`` of variables with the
    largest objective |coefficient| (plus every variable whose lower
    bound is nonzero), solves that reduced core over all constraint
    rows, then iterates the same dual-pricing loop as
    :class:`WarmStartSession` against the full model.  With the default
    ``convergence_tolerance=0.0`` the iteration runs until provable
    optimality; a positive tolerance allows stopping once successive
    core objectives agree to that relative gap, trading exactness for
    speed (the :func:`lp_discrepancy_gate` bounds the damage).

    Any reduced status other than OPTIMAL/UNBOUNDED falls back to a
    full solve on ``base`` (default :class:`~repro.lp.FastLPBackend`),
    so INFEASIBLE/UNBOUNDED are never masked and never invented.
    """

    name = "decomposed"
    supports_warm_start = True

    def __init__(
        self,
        base: Optional[LPBackend] = None,
        core_fraction: float = 0.1,
        min_core: int = 32,
        max_pricing_rounds: int = 8,
        pricing_tolerance: float = 1e-7,
        convergence_tolerance: float = 0.0,
    ):
        if not 0.0 < core_fraction <= 1.0:
            raise ValueError("core_fraction must be in (0, 1]")
        from repro.lp.backends import FastLPBackend

        self.base = base if base is not None else FastLPBackend()
        self.core_fraction = core_fraction
        self.min_core = min_core
        self.max_pricing_rounds = max_pricing_rounds
        self.pricing_tolerance = pricing_tolerance
        self.convergence_tolerance = convergence_tolerance
        self.stats = SessionStats()

    @property
    def approximate(self) -> bool:
        """True when early stopping may return a sub-optimal objective."""
        return self.convergence_tolerance > 0.0

    def session(self) -> "WarmStartSession":
        """A warm session that inherits this backend's pricing knobs."""
        return WarmStartSession(
            self,
            max_pricing_rounds=self.max_pricing_rounds,
            pricing_tolerance=self.pricing_tolerance,
            convergence_tolerance=self.convergence_tolerance,
        )

    def solve(self, model: Model) -> SolveResult:
        """Solve via core extraction + pricing; full solve when tiny."""
        import numpy as np

        assembled = model.to_matrices()
        n = assembled.cost.shape[0]
        core_size = max(self.min_core, int(np.ceil(self.core_fraction * n)))
        if n == 0 or core_size >= n:
            return self._full(model)
        order = np.argsort(-np.abs(assembled.cost), kind="stable")
        keep = np.zeros(n, dtype=bool)
        keep[order[:core_size]] = True
        keep |= np.array([bound[0] != 0.0 for bound in assembled.bounds])
        result = _pricing_solve(
            model,
            assembled,
            keep,
            backend_name=self.name,
            method="highs",
            max_rounds=self.max_pricing_rounds,
            pricing_tolerance=self.pricing_tolerance,
            convergence_tolerance=self.convergence_tolerance,
            stats=self.stats,
        )
        if result is None:
            obs.metrics.counter("lp.decomposed.fallbacks").inc()
            self.stats.fallbacks += 1
            return self._full(model)
        return result

    def _full(self, model: Model) -> SolveResult:
        """Cold solve on the base backend, reported under this name."""
        result = self.base.solve(model)
        self.stats.cold_solves += 1
        result.backend_name = self.name
        return result


def _pricing_solve(
    model: Model,
    assembled,
    keep_mask,
    backend_name: str,
    method: str,
    max_rounds: int,
    pricing_tolerance: float,
    convergence_tolerance: float,
    stats: Optional[SessionStats] = None,
) -> Optional[SolveResult]:
    """Solve the kept columns, price the dropped ones, repeat.

    Returns an OPTIMAL or UNBOUNDED :class:`SolveResult` for the *full*
    model, or ``None`` when the caller must fall back to a full cold
    solve (reduced infeasibility / numerical trouble / missing duals /
    round budget exhausted).  ``keep_mask`` is mutated as columns are
    re-admitted.
    """
    import numpy as np
    from scipy.optimize import linprog

    from repro.resilience import faults

    injector = faults.active()
    if injector is not None:
        try:
            injector.maybe_fail(
                "lp.session.warm", prefix=f"{backend_name}|{model.name}"
            )
        except faults.FaultError:
            # A fault in the reduced-solve path must degrade, never
            # lie: returning None routes every caller to its full
            # cold-solve fallback, so results stay exact under chaos.
            obs.metrics.counter(
                "lp.session.faults", backend=backend_name
            ).inc()
            return None
        injector.maybe_fail("lp.solve", prefix=f"{backend_name}|{model.name}")

    n = assembled.cost.shape[0]
    a_ub = assembled.a_ub.tocsc() if assembled.a_ub is not None else None
    a_eq = assembled.a_eq.tocsc() if assembled.a_eq is not None else None
    iterations = 0
    previous_objective: Optional[float] = None
    outcome: Optional[SolveResult] = None
    with obs.span(
        "lp.session.solve",
        model=model.name,
        backend=backend_name,
        vars=n,
        kept=int(keep_mask.sum()),
    ) as sp:
        for round_index in range(max_rounds):
            idx = np.flatnonzero(keep_mask)
            if stats is not None:
                stats.pricing_rounds += 1
                stats.last_reduced_vars = len(idx)
            obs.metrics.counter("lp.reduced_solves", backend=backend_name).inc()
            obs.metrics.histogram(
                "lp.reduced_vars", buckets=_REDUCED_VAR_BUCKETS,
                backend=backend_name,
            ).observe(len(idx))
            raw = linprog(
                c=assembled.cost[idx],
                A_ub=a_ub[:, idx] if a_ub is not None else None,
                b_ub=assembled.b_ub,
                A_eq=a_eq[:, idx] if a_eq is not None else None,
                b_eq=assembled.b_eq,
                bounds=[assembled.bounds[j] for j in idx],
                method=method,
            )
            iterations += int(getattr(raw, "nit", 0) or 0)
            status = _STATUS_MAP.get(raw.status, SolveStatus.ERROR)
            if status is SolveStatus.UNBOUNDED:
                # A reduced ray zero-extends to a full-model ray:
                # UNBOUNDED is honest, report it.
                outcome = SolveResult(
                    status=SolveStatus.UNBOUNDED,
                    objective=float("nan"),
                    values=[0.0] * n,
                    iterations=iterations,
                    backend_name=backend_name,
                )
                break
            if status is not SolveStatus.OPTIMAL:
                # Column dropping can starve a row: a reduced
                # INFEASIBLE/ERROR says nothing about the full model.
                break
            duals_ok, reduced_costs = _reduced_costs(assembled, a_ub, a_eq, raw)
            if not duals_ok:
                break
            violating = (~keep_mask) & (reduced_costs < -pricing_tolerance)
            objective = float(raw.fun)
            settled = (
                convergence_tolerance > 0.0
                and previous_objective is not None
                and abs(objective - previous_objective)
                <= convergence_tolerance * max(1.0, abs(objective))
            )
            if not violating.any() or settled:
                values = np.zeros(n)
                values[idx] = raw.x
                full_objective = -objective if assembled.maximize else objective
                full_objective += assembled.objective_constant
                outcome = SolveResult(
                    status=SolveStatus.OPTIMAL,
                    objective=full_objective,
                    values=[float(v) for v in values],
                    iterations=iterations,
                    backend_name=backend_name,
                )
                sp.set(rounds=round_index + 1, exact=not bool(violating.any()))
                break
            previous_objective = objective
            keep_mask |= violating
    if outcome is not None:
        outcome.solve_seconds = sp.duration
    return outcome


def _reduced_costs(assembled, a_ub, a_eq, raw):
    """``(duals available, c - A_ub^T λ_ub - A_eq^T λ_eq)`` for a solve."""
    import numpy as np

    reduced = assembled.cost.astype(float).copy()
    for matrix, duals in ((a_ub, getattr(raw, "ineqlin", None)),
                          (a_eq, getattr(raw, "eqlin", None))):
        if matrix is None:
            continue
        marginals = getattr(duals, "marginals", None)
        if marginals is None:
            return False, reduced
        reduced -= matrix.T @ np.asarray(marginals)
    return True, reduced


@dataclass
class GateCase:
    """One instance's candidate-vs-reference comparison."""

    model_name: str
    reference_status: SolveStatus
    candidate_status: SolveStatus
    reference_objective: float
    candidate_objective: float
    relative_gap: float


def lp_discrepancy_gate(
    models: Sequence[Model],
    candidate: LPBackend,
    reference: Optional[LPBackend] = None,
    tolerance: float = 0.01,
):
    """Accuracy gate for an approximate LP backend.

    Solves every model with ``candidate`` and ``reference`` (default
    :class:`~repro.lp.FastLPBackend`) and returns a
    :class:`~repro.core.discrepancy.DiscrepancyReport`:

    * a status mismatch (e.g. the candidate reporting OPTIMAL where the
      reference is INFEASIBLE, or vice versa) is a finding -- masking
      or inventing infeasibility is disqualifying regardless of
      objectives;
    * an OPTIMAL/OPTIMAL pair whose relative objective gap exceeds
      ``tolerance`` is a finding.

    ``report.clean`` is the gate verdict; the per-instance
    :class:`GateCase` list is attached as ``report.cases``.
    """
    from repro.core.discrepancy import Discrepancy, DiscrepancyReport, Severity
    from repro.lp.backends import FastLPBackend

    reference = reference if reference is not None else FastLPBackend()
    report = DiscrepancyReport(paper_key=f"lp:{candidate.name}")
    cases: List[GateCase] = []
    for model in models:
        ref = reference.solve(model)
        cand = candidate.solve(model)
        gap = 0.0
        if ref.status is SolveStatus.OPTIMAL and cand.status is SolveStatus.OPTIMAL:
            gap = abs(cand.objective - ref.objective) / max(
                1.0, abs(ref.objective)
            )
        cases.append(GateCase(
            model_name=model.name,
            reference_status=ref.status,
            candidate_status=cand.status,
            reference_objective=ref.objective,
            candidate_objective=cand.objective,
            relative_gap=gap,
        ))
        report.instances_analyzed += 1
        if cand.status is not ref.status:
            report.discrepancies.append(Discrepancy(
                kind="result-mismatch",
                subject=model.name,
                measured=1.0,
                threshold=0.0,
                severity=Severity.FINDING,
                explanation=(
                    f"{candidate.name} reported {cand.status.value} where "
                    f"{reference.name} reported {ref.status.value}"
                ),
            ))
        elif gap > tolerance:
            report.discrepancies.append(Discrepancy(
                kind="objective-gap",
                subject=model.name,
                measured=gap,
                threshold=tolerance,
                severity=Severity.FINDING,
                explanation=(
                    f"{candidate.name} objective {cand.objective:.6g} vs "
                    f"{reference.name} {ref.objective:.6g} "
                    f"(relative gap {gap:.3%})"
                ),
            ))
    report.cases = cases
    return report
