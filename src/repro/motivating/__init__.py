"""The motivating example (paper section 2.2).

An undergraduate prompts the LLM four times (159 words in total) and gets
a working client/server rock-paper-scissors game of 93 lines of Python.
The paper calls the program a "UDP server and client", but the code in
its Figure 3 uses ``SOCK_STREAM`` -- TCP; this reproduction follows the
figure (the code), not the prose, and EXPERIMENTS.md records the
discrepancy.

:mod:`repro.motivating.session` replays the four-prompt conversation
against the simulated LLM; :mod:`repro.motivating.harness` actually runs
the generated program over loopback sockets and checks the game plays
correctly.
"""

from repro.motivating.harness import GameOutcome, play_scripted_game
from repro.motivating.session import (
    MOTIVATING_PROMPTS,
    run_motivating_session,
)

__all__ = [
    "GameOutcome",
    "MOTIVATING_PROMPTS",
    "play_scripted_game",
    "run_motivating_session",
]
