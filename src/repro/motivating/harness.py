"""Run the generated rock-paper-scissors program over real loopback sockets.

The server runs in a background thread on an ephemeral port; the client
plays a scripted sequence of moves.  With the server cycling R, P, S and
the client playing P, R, S, the expected verdicts are client / server /
tie.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence

#: Client script used by the validation game (D disconnects at the end).
SCRIPTED_MOVES = ["P", "R", "S", "D"]


@dataclass
class GameOutcome:
    """What happened in one scripted game."""

    rounds_played: int
    results: List[str]
    client_results: List[str]

    @property
    def consistent(self) -> bool:
        """Server and client must agree on every round's verdict."""
        return self.results == self.client_results


def play_scripted_game(
    module,
    moves: Optional[Sequence[str]] = None,
    timeout: float = 10.0,
) -> GameOutcome:
    """Play one game using the module's ``run_server`` / ``run_client``.

    ``module`` is an assembled artifact module exposing the generated
    ``run_server(host, port, max_rounds, ready)`` and
    ``run_client(host, port, moves)`` functions.
    """
    moves = list(moves if moves is not None else SCRIPTED_MOVES)
    rounds = sum(1 for move in moves if move != "D")

    port_box: List[int] = []
    port_ready = threading.Event()

    def on_ready(port: int) -> None:
        port_box.append(port)
        port_ready.set()

    server_results: List[str] = []
    server_error: List[BaseException] = []

    def server_main() -> None:
        try:
            server_results.extend(
                module.run_server("127.0.0.1", 0, max_rounds=None, ready=on_ready)
            )
        except BaseException as exc:  # surfaced to the caller below
            server_error.append(exc)
            port_ready.set()

    server_thread = threading.Thread(target=server_main, daemon=True)
    server_thread.start()
    if not port_ready.wait(timeout):
        raise TimeoutError("server did not start listening in time")
    if server_error:
        raise RuntimeError(f"server crashed on startup: {server_error[0]!r}")

    client_results = module.run_client("127.0.0.1", port_box[0], moves=moves)
    server_thread.join(timeout)
    if server_thread.is_alive():
        raise TimeoutError("server did not shut down after the game")
    if server_error:
        raise RuntimeError(f"server crashed mid-game: {server_error[0]!r}")

    return GameOutcome(
        rounds_played=rounds,
        results=server_results,
        client_results=list(client_results),
    )
