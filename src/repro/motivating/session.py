"""The four-prompt motivating conversation (paper section 2.2).

The paper reports that four prompts totalling 159 words produced a
correct 93-LoC program.  This module replays that conversation against
the simulated LLM: the prompt texts below total exactly 159 words, and
the final artifacts total exactly 93 lines of code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.llm import ChatSession, CodeArtifact
from repro.core.prompts import Prompt, PromptKind, PromptStyle
from repro.core.simulated import SimulatedLLM

#: The four prompts of the undergraduate's conversation (159 words).
MOTIVATING_PROMPTS: List[Prompt] = [
    Prompt(
        text=(
            "I want to build a small game in Python where a server and a "
            "client play rock paper scissors over "
            "sockets on one machine. The server should judge every round "
            "and tell the client who won. Confirm the plan "
            "first, we will write the two programs one at a time."
        ),
        kind=PromptKind.SYSTEM_OVERVIEW,
    ),
    Prompt(
        text=(
            "Write the server first. It listens on a host and "
            "port, accepts one client, picks its own move each round "
            "cycling rock paper scissors, judges the round, then sends "
            "its move and result back. Stop when the client sends D "
            "or hangs up."
        ),
        kind=PromptKind.GENERATE,
        component="server",
        style=PromptStyle.MODULAR_TEXT,
    ),
    Prompt(
        text=(
            "Now write the client program. It connects to the server, "
            "asks me for a move each round, P, R or S, sends it, then "
            "prints the move the server played and who won. Typing D "
            "should disconnect cleanly."
        ),
        kind=PromptKind.GENERATE,
        component="client",
        style=PromptStyle.MODULAR_TEXT,
    ),
    Prompt(
        text=(
            "Problem: when I type lowercase p or spaces the game "
            "breaks. Please validate the input, accept it in any case, "
            "and keep asking until the move is valid."
        ),
        kind=PromptKind.DEBUG_TESTCASE,
        component="client",
    ),
]


@dataclass
class MotivatingResult:
    """Outcome of replaying the motivating conversation."""

    session: ChatSession
    artifacts: List[CodeArtifact]

    @property
    def num_prompts(self) -> int:
        return self.session.num_prompts

    @property
    def total_words(self) -> int:
        return self.session.total_words

    @property
    def total_loc(self) -> int:
        return sum(artifact.loc for artifact in self.artifacts)


def run_motivating_session(llm: SimulatedLLM = None) -> MotivatingResult:
    """Replay the four prompts and return the conversation + final code."""
    if llm is None:
        from repro.core.knowledge import get_knowledge

        llm = SimulatedLLM({"rps": get_knowledge("rps")})
    session = ChatSession("undergrad:rps")
    latest: Dict[str, CodeArtifact] = {}
    for prompt in MOTIVATING_PROMPTS:
        response = llm.chat(session, prompt)
        for artifact in response.artifacts:
            latest[artifact.component] = artifact
    artifacts = [latest[name] for name in ("server", "client") if name in latest]
    return MotivatingResult(session=session, artifacts=artifacts)
