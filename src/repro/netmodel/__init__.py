"""Network modelling substrate shared by the TE and verification systems.

Provides topologies (:class:`Topology`), IPv4-style prefixes and header
space helpers, forwarding rules and ACLs, deterministic synthetic Topology
Zoo-scale graphs (:mod:`repro.netmodel.topozoo`), gravity-model traffic
matrices, and dataset builders for the verification experiments.
"""

from repro.netmodel.topology import Link, Topology
from repro.netmodel.headerspace import Prefix, HeaderSpace
from repro.netmodel.rules import (
    AclAction,
    AclRule,
    Device,
    ForwardingRule,
    DROP_PORT,
    SELF_PORT,
)
from repro.netmodel.traffic import TrafficMatrix, TEInstance, gravity_traffic_matrix
from repro.netmodel.topozoo import (
    NCFLOW_INSTANCE_NAMES,
    ARROW_INSTANCE_NAMES,
    VERIFICATION_DATASET_NAMES,
    topology_catalog,
    make_topology,
)
from repro.netmodel.datasets import (
    VerificationDataset,
    build_verification_dataset,
    inject_blackhole,
    inject_loop,
)
from repro.netmodel.instances import (
    arrow_instances,
    make_te_instance,
    ncflow_instances,
)

__all__ = [
    "AclAction",
    "AclRule",
    "ARROW_INSTANCE_NAMES",
    "Device",
    "DROP_PORT",
    "ForwardingRule",
    "HeaderSpace",
    "Link",
    "NCFLOW_INSTANCE_NAMES",
    "Prefix",
    "SELF_PORT",
    "TEInstance",
    "Topology",
    "TrafficMatrix",
    "VERIFICATION_DATASET_NAMES",
    "VerificationDataset",
    "arrow_instances",
    "build_verification_dataset",
    "gravity_traffic_matrix",
    "make_te_instance",
    "ncflow_instances",
    "inject_blackhole",
    "inject_loop",
    "make_topology",
    "topology_catalog",
]
