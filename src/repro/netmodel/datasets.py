"""Builders for data-plane verification datasets.

AP and APKeep were evaluated on snapshots of real networks (Internet2,
Stanford backbone, Purdue, Airtel).  This module builds synthetic
equivalents: each device owns one destination prefix, FIBs install
longest-prefix-match routes along shortest paths, a fraction of devices
additionally carry shorter *aggregate* routes (which is what makes atomic
predicates interesting -- overlapping rules of different lengths), and the
"Stanford" dataset carries ingress ACLs like the real Stanford backbone
configs do.

:func:`inject_loop` and :func:`inject_blackhole` perturb a dataset so the
verifiers have real anomalies to find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netmodel.headerspace import HEADER_BITS, Prefix, split_address_space
from repro.netmodel.rules import (
    AclAction,
    AclRule,
    Device,
    DROP_PORT,
    ForwardingRule,
    SELF_PORT,
)
from repro.netmodel.topology import Topology
from repro.netmodel.topozoo import make_topology, _seed_for


@dataclass
class VerificationDataset:
    """A data plane: topology + per-device FIBs (+ optional ACLs)."""

    name: str
    topology: Topology
    devices: Dict[str, Device]
    prefix_of: Dict[str, Prefix]

    @property
    def total_rules(self) -> int:
        return sum(device.num_rules for device in self.devices.values())

    def device(self, name: str) -> Device:
        return self.devices[name]

    def all_rules(self) -> List[Tuple[str, ForwardingRule]]:
        """Every (device, rule) pair in deterministic order."""
        out: List[Tuple[str, ForwardingRule]] = []
        for node in sorted(self.devices):
            for rule in self.devices[node].rules:
                out.append((node, rule))
        return out

    def copy(self) -> "VerificationDataset":
        devices: Dict[str, Device] = {}
        for node, device in self.devices.items():
            clone = Device(node)
            for rule in device.rules:
                clone.add_rule(rule)
            for acl_rule in device.acl:
                clone.add_acl_rule(acl_rule)
            devices[node] = clone
        return VerificationDataset(
            self.name, self.topology.copy(), devices, dict(self.prefix_of)
        )


def build_verification_dataset(
    name: str,
    aggregate_fraction: float = 0.3,
    with_acls: Optional[bool] = None,
    rules_per_device: Optional[int] = None,
) -> VerificationDataset:
    """Build the named dataset (see module docstring).

    ``with_acls`` defaults to True only for "Stanford", matching the paper's
    datasets (the Stanford backbone snapshot is the one with ACLs).

    ``rules_per_device`` pads every FIB up to (at least) that many rules
    by repeatedly splitting existing routes into their two more-specific
    children pointing at the *same* next hop (see :func:`_pad_fib`).
    Padding scales raw rule counts -- the knob the shard benches turn --
    without changing forwarding semantics or the atomic-predicate
    structure, so every verifier answers identically on the padded and
    unpadded dataset.
    """
    topology = make_topology(name)
    if with_acls is None:
        with_acls = name == "Stanford"
    rng = np.random.RandomState(_seed_for(name) ^ 0x5EED)

    nodes = topology.nodes
    prefixes = split_address_space(len(nodes))
    prefix_of = dict(zip(nodes, prefixes))

    devices: Dict[str, Device] = {node: Device(node) for node in nodes}

    # Exact routes along shortest paths.
    for dst in nodes:
        dst_prefix = prefix_of[dst]
        for src in nodes:
            if src == dst:
                devices[src].add_rule(ForwardingRule.lpm(dst_prefix, SELF_PORT))
                continue
            path = topology.shortest_path(src, dst)
            if path is None or len(path) < 2:
                continue
            next_hop = path[1]
            devices[src].add_rule(ForwardingRule.lpm(dst_prefix, next_hop))

    # Aggregate (shorter-prefix) routes on a fraction of devices: route a
    # covering prefix toward the device's highest-degree neighbour.  These
    # lower-priority rules overlap the exact routes, which is what gives
    # the datasets a nontrivial atomic-predicate structure.
    for node in nodes:
        if rng.rand() >= aggregate_fraction:
            continue
        neighbors = topology.successors(node)
        if not neighbors:
            continue
        uplink = max(neighbors, key=lambda n: (topology.degree(n), n))
        own = prefix_of[node]
        if own.length >= 2:
            shorter_length = own.length - 2
            shorter_mask = Prefix(0, 0).mask if shorter_length == 0 else (
                Prefix(own.value, own.length).mask
                & ~((1 << (HEADER_BITS - shorter_length)) - 1)
            )
            shorter = Prefix(own.value & shorter_mask, shorter_length)
            devices[node].add_rule(ForwardingRule.lpm(shorter, uplink))

    if with_acls:
        _install_acls(devices, prefix_of, rng)

    if rules_per_device is not None:
        for node in nodes:
            _pad_fib(devices[node], rules_per_device)

    return VerificationDataset(name, topology, devices, prefix_of)


def _pad_fib(device: Device, target_rules: int) -> None:
    """Grow ``device``'s FIB to >= ``target_rules`` semantically inert rules.

    Splits routes breadth-first into their two half-length-longer
    children forwarding to the same port: the children jointly cover
    the parent and agree with it, so LPM behaviour -- and therefore
    every port predicate and atom -- is untouched while the raw rule
    count doubles per generation.  Deterministic (no RNG): the same
    target always yields the same FIB.
    """
    from collections import deque

    queue = deque(
        (rule.prefix, rule.port)
        for rule in sorted(
            device.rules, key=lambda r: (r.prefix.length, r.prefix.value)
        )
        if rule.prefix.length < HEADER_BITS
    )
    while device.num_rules < target_rules and queue:
        prefix, port = queue.popleft()
        child_length = prefix.length + 1
        half = 1 << (HEADER_BITS - child_length)
        for child_value in (prefix.value, prefix.value + half):
            child = Prefix(child_value, child_length)
            device.add_rule(ForwardingRule.lpm(child, port))
            if child_length < HEADER_BITS:
                queue.append((child, port))


def build_large_dataset(
    name: str = "Airtel",
    target_rules: int = 100_000,
    with_acls: Optional[bool] = None,
) -> VerificationDataset:
    """A deterministic large preset: ``name`` padded to >= ``target_rules``.

    The scale point the shard benches and the CI multi-core check run
    on: same topology and semantics as the named dataset, but with FIBs
    padded (see :func:`_pad_fib`) until the whole data plane carries at
    least ``target_rules`` forwarding rules.
    """
    base = build_verification_dataset(name, with_acls=with_acls)
    num_devices = max(1, len(base.devices))
    per_device = -(-target_rules // num_devices)  # ceil division
    dataset = build_verification_dataset(
        name, with_acls=with_acls, rules_per_device=per_device
    )
    dataset.name = f"{name}-large"
    return dataset


def _install_acls(
    devices: Dict[str, Device],
    prefix_of: Dict[str, Prefix],
    rng: np.random.RandomState,
    fraction: float = 0.25,
) -> None:
    """Deny a random foreign prefix at a fraction of devices."""
    nodes = sorted(devices)
    for node in nodes:
        if rng.rand() >= fraction:
            continue
        victim = nodes[rng.randint(len(nodes))]
        if victim == node:
            continue
        devices[node].add_acl_rule(
            AclRule(prefix_of[victim], AclAction.DENY, priority=10)
        )
        devices[node].add_acl_rule(
            AclRule(Prefix.full(), AclAction.PERMIT, priority=1)
        )


def random_dataset(
    num_nodes: int = 4,
    rules_per_device: int = 6,
    seed: int = 0,
    acl_fraction: float = 0.0,
    name: str = "random",
) -> VerificationDataset:
    """A fuzzing data plane: arbitrary overlapping rules, not routes.

    Unlike :func:`build_verification_dataset`, rules here are random
    prefixes with random priorities pointing at random neighbours (or
    drop/self), so they exercise the verifiers' shadowing, splitting and
    tie-breaking logic far harder than shortest-path FIBs do.  Used by
    the property-based AP-vs-APKeep equivalence tests.
    """
    if num_nodes < 2:
        raise ValueError("num_nodes must be >= 2")
    rng = np.random.RandomState(seed)
    topology = Topology(name)
    nodes = [f"{name}-n{i}" for i in range(num_nodes)]
    for node in nodes:
        topology.add_node(node)
    # Ring plus random chords: connected, with path diversity.
    for i in range(num_nodes):
        topology.add_bidi_link(nodes[i], nodes[(i + 1) % num_nodes], 1000.0)
    for _ in range(num_nodes // 2):
        a, b = rng.randint(num_nodes), rng.randint(num_nodes)
        if a != b and not topology.has_link(nodes[a], nodes[b]):
            topology.add_bidi_link(nodes[a], nodes[b], 1000.0)

    prefixes = split_address_space(num_nodes)
    prefix_of = dict(zip(nodes, prefixes))
    devices: Dict[str, Device] = {node: Device(node) for node in nodes}
    for node in nodes:
        neighbors = topology.successors(node)
        ports = neighbors + [DROP_PORT, SELF_PORT]
        for _ in range(rules_per_device):
            length = int(rng.randint(0, HEADER_BITS + 1))
            if length == 0:
                value = 0
            else:
                bits = int(rng.randint(0, 1 << length))
                value = bits << (HEADER_BITS - length)
            port = ports[int(rng.randint(len(ports)))]
            priority = int(rng.randint(0, 2 * HEADER_BITS))
            devices[node].add_rule(
                ForwardingRule(Prefix(value, length), port, priority)
            )
        if acl_fraction > 0 and rng.rand() < acl_fraction:
            victim = nodes[int(rng.randint(num_nodes))]
            devices[node].add_acl_rule(
                AclRule(prefix_of[victim], AclAction.DENY, priority=5)
            )
    return VerificationDataset(name, topology, devices, prefix_of)


def inject_loop(dataset: VerificationDataset, seed: int = 0) -> Tuple[VerificationDataset, Tuple[str, str]]:
    """Return a copy with a forwarding loop for one destination prefix.

    Picks two adjacent devices ``u, v`` on the path to some destination and
    makes ``v`` forward that destination's prefix back to ``u`` with a
    higher-priority rule.  Returns the perturbed dataset and ``(u, v)``.
    """
    rng = np.random.RandomState(seed)
    out = dataset.copy()
    nodes = out.topology.nodes
    for _ in range(200):
        dst = nodes[rng.randint(len(nodes))]
        src = nodes[rng.randint(len(nodes))]
        if src == dst:
            continue
        path = out.topology.shortest_path(src, dst)
        if path is None or len(path) < 3:
            continue
        u, v = path[0], path[1]
        if not out.topology.has_link(v, u):
            continue
        prefix = out.prefix_of[dst]
        out.devices[v].add_rule(
            ForwardingRule(prefix, u, priority=prefix.length + 1)
        )
        return out, (u, v)
    raise RuntimeError("could not find a place to inject a loop")


def inject_blackhole(dataset: VerificationDataset, seed: int = 0) -> Tuple[VerificationDataset, str]:
    """Return a copy where one transit device drops a destination prefix.

    Picks a device on the path to some destination (not the destination
    itself) and overrides the route with a higher-priority drop rule.
    Returns the perturbed dataset and the device name.
    """
    from repro.netmodel.rules import DROP_PORT

    rng = np.random.RandomState(seed)
    out = dataset.copy()
    nodes = out.topology.nodes
    for _ in range(200):
        dst = nodes[rng.randint(len(nodes))]
        src = nodes[rng.randint(len(nodes))]
        if src == dst:
            continue
        path = out.topology.shortest_path(src, dst)
        if path is None or len(path) < 3:
            continue
        middle = path[len(path) // 2]
        if middle == dst:
            continue
        prefix = out.prefix_of[dst]
        out.devices[middle].add_rule(
            ForwardingRule(prefix, DROP_PORT, priority=prefix.length + 1)
        )
        return out, middle
    raise RuntimeError("could not find a place to inject a blackhole")
