"""Packet header space: IPv4-style destination prefixes.

The verification systems (AP, APKeep) reason about sets of packets.  We
model a packet header as ``HEADER_BITS`` destination-address bits; a
:class:`Prefix` denotes the set of headers whose leading bits match.  The
BDD engines encode these sets; :meth:`Prefix.bdd_literals` yields the
(variable, polarity) pairs a BDD builder needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

#: Width of the modelled destination-address field.  32 matches IPv4 but
#: makes BDDs needlessly deep for synthetic datasets; 16 keeps the same
#: prefix semantics at a comfortable scale and is what the tests assume.
HEADER_BITS = 16


@dataclass(frozen=True, order=True)
class Prefix:
    """A ``value/length`` destination prefix over ``HEADER_BITS``-bit headers.

    ``value`` holds the prefix bits left-aligned in a ``HEADER_BITS``-bit
    integer with the don't-care bits zeroed, e.g. ``Prefix(0x1200, 8)`` is
    ``18.0.0.0/8`` scaled down to 16 bits.
    """

    value: int
    length: int

    def __post_init__(self):
        if not 0 <= self.length <= HEADER_BITS:
            raise ValueError(f"prefix length {self.length} out of [0, {HEADER_BITS}]")
        if not 0 <= self.value < (1 << HEADER_BITS):
            raise ValueError(f"prefix value {self.value:#x} out of range")
        mask = self.mask
        if self.value & ~mask & ((1 << HEADER_BITS) - 1):
            raise ValueError(
                f"prefix value {self.value:#x} has bits set outside /{self.length}"
            )

    @property
    def mask(self) -> int:
        """Bitmask with the ``length`` leading bits set."""
        if self.length == 0:
            return 0
        return ((1 << self.length) - 1) << (HEADER_BITS - self.length)

    @staticmethod
    def full() -> "Prefix":
        """The match-everything prefix ``0/0``."""
        return Prefix(0, 0)

    @staticmethod
    def host(address: int) -> "Prefix":
        """A /``HEADER_BITS`` prefix matching exactly one address."""
        return Prefix(address, HEADER_BITS)

    def contains_address(self, address: int) -> bool:
        return (address & self.mask) == self.value

    def covers(self, other: "Prefix") -> bool:
        """True when every header in ``other`` is also in ``self``."""
        return self.length <= other.length and (other.value & self.mask) == self.value

    def overlaps(self, other: "Prefix") -> bool:
        return self.covers(other) or other.covers(self)

    def num_addresses(self) -> int:
        return 1 << (HEADER_BITS - self.length)

    def bdd_literals(self) -> Iterator[Tuple[int, bool]]:
        """Yield ``(bit_index, polarity)`` for each constrained bit.

        Bit 0 is the most significant header bit, matching the variable
        ordering the BDD engines use (top-down MSB-first gives compact
        prefix BDDs).
        """
        for bit in range(self.length):
            shift = HEADER_BITS - 1 - bit
            yield bit, bool((self.value >> shift) & 1)

    def __str__(self) -> str:
        return f"{self.value:#06x}/{self.length}"


class HeaderSpace:
    """An explicit set of header addresses -- the slow reference semantics.

    The BDD-backed verifiers are validated against this brute-force
    representation in tests.  It is intentionally simple: a frozenset of
    integer addresses.  Only usable for small ``HEADER_BITS``.
    """

    __slots__ = ("addresses",)

    def __init__(self, addresses: frozenset):
        self.addresses = frozenset(addresses)

    @staticmethod
    def empty() -> "HeaderSpace":
        return HeaderSpace(frozenset())

    @staticmethod
    def all() -> "HeaderSpace":
        return HeaderSpace(frozenset(range(1 << HEADER_BITS)))

    @staticmethod
    def from_prefix(prefix: Prefix) -> "HeaderSpace":
        base = prefix.value
        span = prefix.num_addresses()
        return HeaderSpace(frozenset(range(base, base + span)))

    def union(self, other: "HeaderSpace") -> "HeaderSpace":
        return HeaderSpace(self.addresses | other.addresses)

    def intersect(self, other: "HeaderSpace") -> "HeaderSpace":
        return HeaderSpace(self.addresses & other.addresses)

    def minus(self, other: "HeaderSpace") -> "HeaderSpace":
        return HeaderSpace(self.addresses - other.addresses)

    def complement(self) -> "HeaderSpace":
        return HeaderSpace(frozenset(range(1 << HEADER_BITS)) - self.addresses)

    @property
    def is_empty(self) -> bool:
        return not self.addresses

    def __len__(self) -> int:
        return len(self.addresses)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HeaderSpace) and self.addresses == other.addresses

    def __hash__(self) -> int:
        return hash(self.addresses)


def split_address_space(count: int) -> List[Prefix]:
    """Partition the header space into ``count`` equal-size prefixes.

    Used to assign each router in a synthetic dataset its own destination
    block.  ``count`` is rounded up to the next power of two internally;
    only the first ``count`` prefixes are returned.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    length = 0
    while (1 << length) < count:
        length += 1
    if length > HEADER_BITS:
        raise ValueError(f"cannot split {HEADER_BITS}-bit space into {count} prefixes")
    stride = HEADER_BITS - length
    return [Prefix(i << stride, length) for i in range(count)]
