"""Canonical TE instances used by the experiments and benchmarks.

Participant A evaluated NCFlow on 13 TE instances, participant B evaluated
ARROW on 2; these builders produce the synthetic equivalents (named
topologies plus seeded gravity traffic) so every experiment runs on the
same inputs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.netmodel.topozoo import (
    ARROW_INSTANCE_NAMES,
    NCFLOW_INSTANCE_NAMES,
    make_topology,
)
from repro.netmodel.traffic import TEInstance, gravity_traffic_matrix


def make_te_instance(
    name: str,
    seed: Optional[int] = None,
    total_demand_fraction: float = 0.05,
    max_commodities: int = 300,
) -> TEInstance:
    """Build the named instance; the seed defaults to a per-name constant."""
    topology = make_topology(name)
    if seed is None:
        seed = sum(ord(c) for c in name)
    traffic = gravity_traffic_matrix(
        topology,
        seed=seed,
        total_demand_fraction=total_demand_fraction,
        max_commodities=max_commodities,
    )
    return TEInstance(name=name, topology=topology, traffic=traffic)


def ncflow_instances(**kwargs) -> List[TEInstance]:
    """The 13 instances of participant A's NCFlow evaluation."""
    return [make_te_instance(name, **kwargs) for name in NCFLOW_INSTANCE_NAMES]


def arrow_instances(**kwargs) -> List[TEInstance]:
    """The 2 instances of participant B's ARROW evaluation."""
    return [make_te_instance(name, **kwargs) for name in ARROW_INSTANCE_NAMES]
