"""JSON serialisation for network objects.

Downstream users need to pin down the exact inputs an experiment ran on;
these functions dump and load topologies, traffic matrices and full
verification datasets as plain JSON.  Round-trips are exact (tested).
"""

from __future__ import annotations

import json
from typing import Dict

from repro.netmodel.datasets import VerificationDataset
from repro.netmodel.headerspace import Prefix
from repro.netmodel.rules import AclAction, AclRule, Device, ForwardingRule
from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficMatrix


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------
def topology_to_dict(topology: Topology) -> Dict:
    return {
        "name": topology.name,
        "nodes": topology.nodes,
        "links": [
            {
                "src": link.src,
                "dst": link.dst,
                "capacity": link.capacity,
                "fiber_id": link.fiber_id,
            }
            for link in topology.links()
        ],
    }


def topology_from_dict(payload: Dict) -> Topology:
    topology = Topology(payload["name"])
    for node in payload["nodes"]:
        topology.add_node(node)
    for link in payload["links"]:
        topology.add_link(
            link["src"], link["dst"], link["capacity"], link.get("fiber_id")
        )
    return topology


# ----------------------------------------------------------------------
# Traffic
# ----------------------------------------------------------------------
def traffic_to_dict(traffic: TrafficMatrix) -> Dict:
    return {
        "demands": [
            {"src": src, "dst": dst, "mbps": amount}
            for (src, dst), amount in sorted(traffic.demands.items())
        ]
    }


def traffic_from_dict(payload: Dict) -> TrafficMatrix:
    matrix = TrafficMatrix()
    for entry in payload["demands"]:
        matrix.demands[(entry["src"], entry["dst"])] = entry["mbps"]
    return matrix


# ----------------------------------------------------------------------
# Verification datasets
# ----------------------------------------------------------------------
def dataset_to_dict(dataset: VerificationDataset) -> Dict:
    devices = {}
    for name in sorted(dataset.devices):
        device = dataset.devices[name]
        devices[name] = {
            "rules": [
                {
                    "prefix": {"value": rule.prefix.value, "length": rule.prefix.length},
                    "port": rule.port,
                    "priority": rule.priority,
                }
                for rule in device.rules
            ],
            "acl": [
                {
                    "prefix": {"value": rule.prefix.value, "length": rule.prefix.length},
                    "action": rule.action.value,
                    "priority": rule.priority,
                }
                for rule in device.acl
            ],
        }
    return {
        "name": dataset.name,
        "topology": topology_to_dict(dataset.topology),
        "devices": devices,
        "prefix_of": {
            node: {"value": prefix.value, "length": prefix.length}
            for node, prefix in sorted(dataset.prefix_of.items())
        },
    }


def dataset_from_dict(payload: Dict) -> VerificationDataset:
    topology = topology_from_dict(payload["topology"])
    devices: Dict[str, Device] = {}
    for name, entry in payload["devices"].items():
        device = Device(name)
        for rule in entry["rules"]:
            device.add_rule(
                ForwardingRule(
                    Prefix(rule["prefix"]["value"], rule["prefix"]["length"]),
                    rule["port"],
                    rule["priority"],
                )
            )
        for rule in entry["acl"]:
            device.add_acl_rule(
                AclRule(
                    Prefix(rule["prefix"]["value"], rule["prefix"]["length"]),
                    AclAction(rule["action"]),
                    rule["priority"],
                )
            )
        devices[name] = device
    prefix_of = {
        node: Prefix(entry["value"], entry["length"])
        for node, entry in payload["prefix_of"].items()
    }
    return VerificationDataset(payload["name"], topology, devices, prefix_of)


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
def save_json(obj, path: str) -> None:
    """Save a Topology, TrafficMatrix or VerificationDataset to a file."""
    if isinstance(obj, Topology):
        payload = {"type": "topology", "data": topology_to_dict(obj)}
    elif isinstance(obj, TrafficMatrix):
        payload = {"type": "traffic", "data": traffic_to_dict(obj)}
    elif isinstance(obj, VerificationDataset):
        payload = {"type": "dataset", "data": dataset_to_dict(obj)}
    else:
        raise TypeError(f"cannot serialise {type(obj).__name__}")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)


def load_json(path: str):
    """Load whatever :func:`save_json` wrote."""
    with open(path) as handle:
        payload = json.load(handle)
    kind = payload.get("type")
    if kind == "topology":
        return topology_from_dict(payload["data"])
    if kind == "traffic":
        return traffic_from_dict(payload["data"])
    if kind == "dataset":
        return dataset_from_dict(payload["data"])
    raise ValueError(f"unknown payload type {kind!r}")
