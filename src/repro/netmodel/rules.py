"""Forwarding rules, ACLs and devices -- the data plane the verifiers read.

A :class:`Device` owns a priority-ordered FIB of :class:`ForwardingRule`
entries (longest-prefix-match is expressed as priority = prefix length,
exactly how the AP/APKeep papers model it) plus an optional ACL applied to
packets entering the device.

Two distinguished ports exist on every device:

* ``DROP_PORT`` -- packets forwarded here are dropped (the default route
  when no rule matches);
* ``SELF_PORT`` -- packets delivered locally (the device owns the prefix).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.netmodel.headerspace import HeaderSpace, Prefix

DROP_PORT = "drop"
SELF_PORT = "self"


class AclAction(enum.Enum):
    PERMIT = "permit"
    DENY = "deny"


@dataclass(frozen=True)
class ForwardingRule:
    """One FIB entry: packets matching ``prefix`` leave via ``port``.

    ``port`` names the neighbour device for transit links, or one of the
    distinguished ``DROP_PORT`` / ``SELF_PORT`` values.  Higher ``priority``
    wins; ties are broken by insertion order (earlier wins), matching the
    APKeep rule model.
    """

    prefix: Prefix
    port: str
    priority: int

    @staticmethod
    def lpm(prefix: Prefix, port: str) -> "ForwardingRule":
        """Longest-prefix-match rule: priority equals prefix length."""
        return ForwardingRule(prefix, port, prefix.length)


@dataclass(frozen=True)
class AclRule:
    """One ACL entry; first match (by priority, then order) wins."""

    prefix: Prefix
    action: AclAction
    priority: int


class Device:
    """A forwarding device: name, FIB, optional ingress ACL."""

    def __init__(self, name: str):
        self.name = name
        self._rules: List[ForwardingRule] = []
        self._acl: List[AclRule] = []

    # ------------------------------------------------------------------
    # FIB
    # ------------------------------------------------------------------
    def add_rule(self, rule: ForwardingRule) -> None:
        self._rules.append(rule)

    def remove_rule(self, rule: ForwardingRule) -> None:
        """Remove one occurrence of ``rule``; raises ValueError if absent."""
        self._rules.remove(rule)

    @property
    def rules(self) -> List[ForwardingRule]:
        """Rules in decreasing match priority (stable for equal priority)."""
        return self._sorted_rules()

    def _sorted_rules(self) -> List[ForwardingRule]:
        indexed = list(enumerate(self._rules))
        indexed.sort(key=lambda item: (-item[1].priority, item[0]))
        return [rule for _, rule in indexed]

    @property
    def num_rules(self) -> int:
        return len(self._rules)

    def lookup(self, address: int) -> str:
        """Port the device forwards ``address`` to (``DROP_PORT`` default)."""
        for rule in self._sorted_rules():
            if rule.prefix.contains_address(address):
                return rule.port
        return DROP_PORT

    def forwarding_space(self, port: str) -> HeaderSpace:
        """Exact set of headers the device sends out of ``port``.

        Brute-force reference semantics used to validate the BDD verifiers.
        """
        matched = HeaderSpace.empty()
        remaining = HeaderSpace.all()
        result = HeaderSpace.empty()
        for rule in self._sorted_rules():
            space = HeaderSpace.from_prefix(rule.prefix).intersect(remaining)
            if rule.port == port:
                result = result.union(space)
            remaining = remaining.minus(space)
        if port == DROP_PORT:
            result = result.union(remaining)
        return result

    # ------------------------------------------------------------------
    # ACL
    # ------------------------------------------------------------------
    def add_acl_rule(self, rule: AclRule) -> None:
        self._acl.append(rule)

    @property
    def acl(self) -> List[AclRule]:
        indexed = list(enumerate(self._acl))
        indexed.sort(key=lambda item: (-item[1].priority, item[0]))
        return [rule for _, rule in indexed]

    @property
    def has_acl(self) -> bool:
        return bool(self._acl)

    def acl_permits(self, address: int) -> bool:
        """First-match ACL decision; default permit when no ACL/ no match."""
        for rule in self.acl:
            if rule.prefix.contains_address(address):
                return rule.action is AclAction.PERMIT
        return True

    def acl_permit_space(self) -> HeaderSpace:
        """Exact permitted header set (reference semantics)."""
        if not self._acl:
            return HeaderSpace.all()
        permitted = HeaderSpace.empty()
        remaining = HeaderSpace.all()
        for rule in self.acl:
            space = HeaderSpace.from_prefix(rule.prefix).intersect(remaining)
            if rule.action is AclAction.PERMIT:
                permitted = permitted.union(space)
            remaining = remaining.minus(space)
        return permitted.union(remaining)

    def ports(self) -> List[str]:
        """All ports referenced by the FIB plus the distinguished ports."""
        seen = {DROP_PORT}
        for rule in self._rules:
            seen.add(rule.port)
        return sorted(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Device(name={self.name!r}, rules={len(self._rules)}, acl={len(self._acl)})"
