"""Directed capacitated topologies.

A :class:`Topology` is a thin, explicit wrapper around ``networkx.DiGraph``
that fixes the conventions every other subsystem relies on:

* nodes are strings;
* every link is directed and has a ``capacity`` in Mbps;
* undirected physical links are added as two directed links sharing a
  ``fiber_id``, which the ARROW substrate uses to model fiber cuts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

import networkx as nx


@dataclass(frozen=True)
class Link:
    """One directed link."""

    src: str
    dst: str
    capacity: float
    fiber_id: Optional[str] = None

    @property
    def key(self) -> Tuple[str, str]:
        return (self.src, self.dst)


class Topology:
    """A directed capacitated graph with stable node ordering."""

    def __init__(self, name: str = "topology"):
        self.name = name
        self._graph = nx.DiGraph()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: str) -> None:
        self._graph.add_node(str(node))

    def add_link(
        self,
        src: str,
        dst: str,
        capacity: float,
        fiber_id: Optional[str] = None,
    ) -> Link:
        """Add one directed link; replaces any existing ``src -> dst`` link."""
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        src, dst = str(src), str(dst)
        if src == dst:
            raise ValueError(f"self-loop link on {src!r} is not allowed")
        self._graph.add_edge(src, dst, capacity=float(capacity), fiber_id=fiber_id)
        return Link(src, dst, float(capacity), fiber_id)

    def add_bidi_link(
        self,
        a: str,
        b: str,
        capacity: float,
        fiber_id: Optional[str] = None,
    ) -> Tuple[Link, Link]:
        """Add a physical (bidirectional) link as two directed links."""
        if fiber_id is None:
            fiber_id = f"fiber:{min(a, b)}--{max(a, b)}"
        return (
            self.add_link(a, b, capacity, fiber_id),
            self.add_link(b, a, capacity, fiber_id),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[str]:
        return sorted(self._graph.nodes)

    @property
    def num_nodes(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def num_links(self) -> int:
        return self._graph.number_of_edges()

    def links(self) -> Iterator[Link]:
        for src, dst, data in sorted(self._graph.edges(data=True)):
            yield Link(src, dst, data["capacity"], data.get("fiber_id"))

    def has_link(self, src: str, dst: str) -> bool:
        return self._graph.has_edge(src, dst)

    def capacity(self, src: str, dst: str) -> float:
        return self._graph.edges[src, dst]["capacity"]

    def set_capacity(self, src: str, dst: str, capacity: float) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._graph.edges[src, dst]["capacity"] = float(capacity)

    def fiber_of(self, src: str, dst: str) -> Optional[str]:
        return self._graph.edges[src, dst].get("fiber_id")

    def fibers(self) -> List[str]:
        """All distinct fiber ids, sorted."""
        found = {
            data.get("fiber_id")
            for _, _, data in self._graph.edges(data=True)
            if data.get("fiber_id") is not None
        }
        return sorted(found)

    def links_on_fiber(self, fiber_id: str) -> List[Link]:
        return [link for link in self.links() if link.fiber_id == fiber_id]

    def successors(self, node: str) -> List[str]:
        return sorted(self._graph.successors(node))

    def predecessors(self, node: str) -> List[str]:
        return sorted(self._graph.predecessors(node))

    def out_links(self, node: str) -> List[Link]:
        return [
            Link(node, dst, data["capacity"], data.get("fiber_id"))
            for dst, data in sorted(self._graph[node].items())
        ]

    def degree(self, node: str) -> int:
        return self._graph.degree(node)

    # ------------------------------------------------------------------
    # Algorithms
    # ------------------------------------------------------------------
    def shortest_path(self, src: str, dst: str) -> Optional[List[str]]:
        """Hop-count shortest path, or ``None`` when unreachable."""
        try:
            return nx.shortest_path(self._graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def k_shortest_paths(self, src: str, dst: str, k: int) -> List[List[str]]:
        """Up to ``k`` loop-free shortest paths by hop count."""
        if src == dst:
            return [[src]]
        try:
            generator = nx.shortest_simple_paths(self._graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return []
        paths: List[List[str]] = []
        try:
            for path in generator:
                paths.append(path)
                if len(paths) >= k:
                    break
        except nx.NetworkXNoPath:
            pass
        return paths

    def is_connected(self) -> bool:
        if self.num_nodes == 0:
            return True
        return nx.is_strongly_connected(self._graph)

    def subgraph(self, nodes: Iterable[str], name: Optional[str] = None) -> "Topology":
        """Topology induced by ``nodes`` (links with both ends inside)."""
        keep = set(nodes)
        sub = Topology(name or f"{self.name}/sub")
        for node in sorted(keep):
            sub.add_node(node)
        for link in self.links():
            if link.src in keep and link.dst in keep:
                sub.add_link(link.src, link.dst, link.capacity, link.fiber_id)
        return sub

    def without_fibers(self, cut_fibers: Iterable[str], name: Optional[str] = None) -> "Topology":
        """Copy of the topology with every link on a cut fiber removed."""
        cut = set(cut_fibers)
        out = Topology(name or f"{self.name}/cut")
        for node in self.nodes:
            out.add_node(node)
        for link in self.links():
            if link.fiber_id not in cut:
                out.add_link(link.src, link.dst, link.capacity, link.fiber_id)
        return out

    def copy(self) -> "Topology":
        out = Topology(self.name)
        out._graph = self._graph.copy()
        return out

    def to_networkx(self) -> nx.DiGraph:
        """The underlying graph (a copy, so callers cannot desync us)."""
        return self._graph.copy()

    def total_capacity(self) -> float:
        return sum(link.capacity for link in self.links())

    def __contains__(self, node: str) -> bool:
        return node in self._graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(name={self.name!r}, nodes={self.num_nodes}, "
            f"links={self.num_links})"
        )
