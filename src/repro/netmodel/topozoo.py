"""Deterministic synthetic topologies standing in for the paper's datasets.

The four reproduced systems were evaluated on proprietary or large public
datasets (Topology Zoo WANs for NCFlow, IBM/B4 backbones for ARROW,
Internet2/Stanford/Purdue/Airtel data planes for AP and APKeep).  None of
those are available offline, so this module generates *named* synthetic
topologies with the same structural character -- sparse, geographically
flavoured ISP meshes -- at a scale where the LP and BDD substrates finish
in seconds.  Every generator is seeded by the topology name, so each named
instance is bit-for-bit reproducible.

DESIGN.md records this substitution; the benchmark shapes (who wins, by
what factor) depend on graph scale and sparsity, which these generators
preserve, not on the exact Topology Zoo coordinates.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.netmodel.topology import Topology


@dataclass(frozen=True)
class TopologySpec:
    """Recipe for one named synthetic topology."""

    name: str
    num_nodes: int
    neighbors: int  # k in the k-nearest-neighbour mesh
    capacity_tiers: Tuple[float, ...]  # Mbps choices for physical links


#: The 13 TE instances participant A evaluated NCFlow on (scaled down from
#: the Topology Zoo graphs named in the NCFlow paper).
NCFLOW_INSTANCE_NAMES = [
    "Cogentco",
    "Colt",
    "Deltacom",
    "DialtelecomCz",
    "GtsCe",
    "Interoute",
    "Ion",
    "Kdl",
    "TataNld",
    "Uninett2010",
    "UsCarrier",
    "Erdos17",
    "Bell40",
]

#: The two TE instances participant B evaluated ARROW on (IBM and B4
#: backbones in the paper).
ARROW_INSTANCE_NAMES = ["IbmBackbone", "B4"]

#: Data planes for the verification experiments.  C used four datasets,
#: D used the first three.
VERIFICATION_DATASET_NAMES = ["Internet2", "Stanford", "Purdue", "Airtel"]

_SPECS: Dict[str, TopologySpec] = {}


def _register(name: str, num_nodes: int, neighbors: int, tiers: Tuple[float, ...]) -> None:
    _SPECS[name] = TopologySpec(name, num_nodes, neighbors, tiers)


# WAN instances for NCFlow (sizes scaled ~4x down from Topology Zoo).
_register("Cogentco", 49, 3, (1000.0, 2500.0, 10000.0))
_register("Colt", 38, 3, (1000.0, 2500.0, 10000.0))
_register("Deltacom", 28, 3, (1000.0, 2500.0))
_register("DialtelecomCz", 34, 2, (1000.0, 2500.0))
_register("GtsCe", 37, 3, (1000.0, 2500.0, 10000.0))
_register("Interoute", 27, 3, (1000.0, 2500.0, 10000.0))
_register("Ion", 31, 2, (1000.0, 2500.0))
_register("Kdl", 64, 2, (1000.0, 2500.0))
_register("TataNld", 36, 3, (1000.0, 2500.0))
_register("Uninett2010", 18, 3, (2500.0, 10000.0))
_register("UsCarrier", 39, 2, (1000.0, 2500.0))
_register("Erdos17", 17, 3, (1000.0, 2500.0))
_register("Bell40", 40, 3, (1000.0, 2500.0, 10000.0))

# ARROW backbones.
_register("IbmBackbone", 18, 3, (2000.0, 4000.0))
_register("B4", 12, 3, (2000.0, 4000.0))

# Verification data planes.
_register("Internet2", 9, 3, (10000.0,))
_register("Stanford", 16, 3, (10000.0,))
_register("Purdue", 24, 3, (10000.0,))
_register("Airtel", 30, 3, (10000.0,))


def topology_catalog() -> List[TopologySpec]:
    """All registered topology specs, sorted by name."""
    return [_SPECS[name] for name in sorted(_SPECS)]


def _seed_for(name: str) -> int:
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def make_topology(name: str) -> Topology:
    """Build the named synthetic topology (deterministic per name).

    The construction mirrors how ISP WANs look: nodes get 2-D positions,
    each node links to its ``k`` nearest neighbours, and a minimum
    spanning tree over the positions is added so the mesh is always
    connected.  Physical links are bidirectional with a capacity drawn
    from the spec's tier set.
    """
    if name not in _SPECS:
        raise KeyError(
            f"unknown topology {name!r}; known: {sorted(_SPECS)}"
        )
    spec = _SPECS[name]
    rng = np.random.RandomState(_seed_for(name))
    positions = rng.rand(spec.num_nodes, 2)
    node_names = [f"{name}-n{i}" for i in range(spec.num_nodes)]

    topo = Topology(name)
    for node in node_names:
        topo.add_node(node)

    # Pairwise distances.
    delta = positions[:, None, :] - positions[None, :, :]
    dist = np.sqrt((delta ** 2).sum(axis=2))
    np.fill_diagonal(dist, np.inf)

    pending: set = set()

    # k-nearest-neighbour mesh.
    for i in range(spec.num_nodes):
        order = np.argsort(dist[i])
        for j in order[: spec.neighbors]:
            a, b = min(i, int(j)), max(i, int(j))
            pending.add((a, b))

    # Minimum spanning tree (Prim) to guarantee connectivity.
    in_tree = {0}
    while len(in_tree) < spec.num_nodes:
        best: Tuple[float, int, int] = (np.inf, -1, -1)
        for i in in_tree:
            for j in range(spec.num_nodes):
                if j in in_tree:
                    continue
                if dist[i][j] < best[0]:
                    best = (dist[i][j], i, j)
        _, i, j = best
        in_tree.add(j)
        pending.add((min(i, j), max(i, j)))

    for a, b in sorted(pending):
        capacity = float(spec.capacity_tiers[rng.randint(len(spec.capacity_tiers))])
        topo.add_bidi_link(node_names[a], node_names[b], capacity)
    return topo


def waxman_topology(
    num_nodes: int,
    alpha: float = 0.6,
    beta: float = 0.3,
    seed: int = 0,
    capacity: float = 1000.0,
    name: str = "waxman",
) -> Topology:
    """Classic Waxman random graph, connectivity-patched with an MST.

    Waxman graphs are the other standard synthetic-WAN model in TE
    research: nodes get 2-D positions and each pair links with
    probability ``alpha * exp(-d / (beta * L))`` where ``d`` is their
    distance and ``L`` the diameter.  Provided for experiments beyond
    the named catalog; deterministic per seed.
    """
    if num_nodes < 2:
        raise ValueError("num_nodes must be >= 2")
    if not 0 < alpha <= 1 or not 0 < beta <= 1:
        raise ValueError("alpha and beta must be in (0, 1]")
    rng = np.random.RandomState(seed)
    positions = rng.rand(num_nodes, 2)
    node_names = [f"{name}-n{i}" for i in range(num_nodes)]
    topo = Topology(name)
    for node in node_names:
        topo.add_node(node)

    delta = positions[:, None, :] - positions[None, :, :]
    dist = np.sqrt((delta ** 2).sum(axis=2))
    diameter = float(dist.max()) or 1.0

    pending = set()
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            probability = alpha * np.exp(-dist[i][j] / (beta * diameter))
            if rng.rand() < probability:
                pending.add((i, j))

    # MST patch so the graph is always connected.
    np.fill_diagonal(dist, np.inf)
    in_tree = {0}
    while len(in_tree) < num_nodes:
        best = (np.inf, -1, -1)
        for i in in_tree:
            for j in range(num_nodes):
                if j not in in_tree and dist[i][j] < best[0]:
                    best = (dist[i][j], i, j)
        _, i, j = best
        in_tree.add(j)
        pending.add((min(i, j), max(i, j)))

    for a, b in sorted(pending):
        topo.add_bidi_link(node_names[a], node_names[b], capacity)
    return topo
