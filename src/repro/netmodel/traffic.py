"""Traffic matrices and TE instances.

NCFlow and ARROW consume a topology plus a demand matrix.  The paper's
instances use production matrices we cannot ship, so demands come from the
standard *gravity model*: demand(s, d) proportional to weight(s) *
weight(d), with node weights drawn log-normally (heavy-tailed, as real
PoP weights are).  Matrices are seeded per instance name for determinism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.netmodel.topology import Topology


@dataclass
class TrafficMatrix:
    """Demands in Mbps keyed by ``(src, dst)`` node-name pairs."""

    demands: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def demand(self, src: str, dst: str) -> float:
        return self.demands.get((src, dst), 0.0)

    def commodities(self) -> List[Tuple[str, str, float]]:
        """Nonzero demands sorted by key for deterministic iteration."""
        return [
            (src, dst, amount)
            for (src, dst), amount in sorted(self.demands.items())
            if amount > 0.0
        ]

    @property
    def total_demand(self) -> float:
        return sum(self.demands.values())

    @property
    def num_commodities(self) -> int:
        return sum(1 for amount in self.demands.values() if amount > 0.0)

    def scaled(self, factor: float) -> "TrafficMatrix":
        return TrafficMatrix(
            {key: amount * factor for key, amount in self.demands.items()}
        )

    def top_k(self, k: int) -> "TrafficMatrix":
        """Keep only the ``k`` largest demands (common TE preprocessing)."""
        ranked = sorted(self.demands.items(), key=lambda item: (-item[1], item[0]))
        return TrafficMatrix(dict(ranked[:k]))


@dataclass
class TEInstance:
    """One TE problem: a topology and its traffic matrix."""

    name: str
    topology: Topology
    traffic: TrafficMatrix

    @property
    def num_commodities(self) -> int:
        return self.traffic.num_commodities


def gravity_traffic_matrix(
    topology: Topology,
    seed: int,
    total_demand_fraction: float = 0.05,
    max_commodities: int = 600,
) -> TrafficMatrix:
    """Gravity-model demands scaled so total demand is a fraction of capacity.

    ``total_demand_fraction`` keeps instances feasible-but-loaded: the
    aggregate demand equals that fraction of the topology's total link
    capacity.  ``max_commodities`` caps LP size by keeping only the largest
    demands (the NCFlow evaluation similarly works on the dominant
    commodities).
    """
    if not 0.0 < total_demand_fraction <= 1.0:
        raise ValueError("total_demand_fraction must be in (0, 1]")
    nodes = topology.nodes
    rng = np.random.RandomState(seed)
    weights = rng.lognormal(mean=0.0, sigma=1.0, size=len(nodes))
    weight_of = dict(zip(nodes, weights))

    raw: Dict[Tuple[str, str], float] = {}
    for src in nodes:
        for dst in nodes:
            if src == dst:
                continue
            raw[(src, dst)] = weight_of[src] * weight_of[dst]

    matrix = TrafficMatrix(raw).top_k(max_commodities)
    target = topology.total_capacity() * total_demand_fraction
    current = matrix.total_demand
    if current <= 0.0:
        return matrix
    return matrix.scaled(target / current)


def uniform_traffic_matrix(topology: Topology, demand: float) -> TrafficMatrix:
    """Equal demand between every ordered node pair (tiny test instances)."""
    matrix = TrafficMatrix()
    for src in topology.nodes:
        for dst in topology.nodes:
            if src != dst:
                matrix.demands[(src, dst)] = demand
    return matrix
