"""``repro.obs`` -- unified tracing, metrics, and profiling.

The measurement layer everything else reports through:

* :mod:`repro.obs.tracer` -- nested spans with monotonic timings
  (``with obs.span("ncflow.solve", topology=name) as sp: ...``);
* :mod:`repro.obs.metrics` -- counters, gauges, fixed-bucket histograms
  (``obs.metrics.counter("lp.solves").inc()``);
* :mod:`repro.obs.export` -- JSON-lines traces, Chrome ``trace_event``
  flamegraphs, and plain-text span-tree / metrics tables.

Tracing is off by default (:data:`NOOP` is installed): disabled spans
still measure wall time -- the same two ``perf_counter`` calls the
hand-rolled timing pairs they replaced paid -- but record nothing.
Enable collection with :func:`set_tracer`/:class:`Tracer`, the
:func:`tracing` context manager, or the CLI ``--trace`` flag.
"""

from repro.obs import export, metrics
from repro.obs.tracer import (
    NOOP,
    NoopSpan,
    NoopTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    tracing,
)

__all__ = [
    "NOOP",
    "NoopSpan",
    "NoopTracer",
    "Span",
    "Tracer",
    "export",
    "get_tracer",
    "metrics",
    "set_tracer",
    "span",
    "tracing",
]
