"""``repro.obs`` -- unified tracing, metrics, profiling, live telemetry.

The measurement layer everything else reports through:

* :mod:`repro.obs.tracer` -- nested spans with monotonic timings
  (``with obs.span("ncflow.solve", topology=name) as sp: ...``);
* :mod:`repro.obs.metrics` -- labeled counters, gauges, and histograms
  with reservoir percentiles
  (``obs.metrics.counter("lp.solves", backend="fast-highs").inc()``);
* :mod:`repro.obs.progress` -- structured progress events (per-task
  start/finish/fail, completed-vs-total, ETA) from campaign fan-outs;
* :mod:`repro.obs.http` -- live exposition endpoint: Prometheus
  ``/metrics``, JSON ``/snapshot``, ``/health``;
* :mod:`repro.obs.profile` -- sampling thread-stack profiler emitting
  flamegraph collapsed stacks;
* :mod:`repro.obs.export` -- JSON-lines traces (spans + metrics +
  progress events), Chrome ``trace_event`` flamegraphs, and plain-text
  span-tree / metrics tables.

Tracing is off by default (:data:`NOOP` is installed): disabled spans
still measure wall time -- the same two ``perf_counter`` calls the
hand-rolled timing pairs they replaced paid -- but record nothing.
Enable collection with :func:`set_tracer`/:class:`Tracer`, the
:func:`tracing` context manager, or the CLI ``--trace`` flag.  The live
tier is likewise opt-in: nothing binds a port or starts a sampler
thread unless ``--serve-metrics`` / ``--profile`` (or the underlying
classes) are used explicitly.
"""

from repro.obs import export, metrics, profile, progress
from repro.obs import http as http  # noqa: PLC0414 (re-export)
from repro.obs.http import MetricsServer, prometheus_text
from repro.obs.profile import SamplingProfiler
from repro.obs.progress import PROGRESS, ProgressTracker
from repro.obs.tracer import (
    NOOP,
    NoopSpan,
    NoopTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    tracing,
)

__all__ = [
    "NOOP",
    "NoopSpan",
    "NoopTracer",
    "PROGRESS",
    "MetricsServer",
    "ProgressTracker",
    "SamplingProfiler",
    "Span",
    "Tracer",
    "export",
    "get_tracer",
    "http",
    "metrics",
    "profile",
    "progress",
    "prometheus_text",
    "set_tracer",
    "span",
    "tracing",
]
