"""Trace and metrics exporters.

Three formats:

* **JSON lines** (:func:`write_jsonl` / :func:`read_jsonl` /
  :func:`read_trace`) -- one JSON object per line:
  ``{"type": "span", ...}`` for spans, ``{"type": "metric", ...}`` for
  metrics, and ``{"type": "event", ...}`` for progress events
  (:mod:`repro.obs.progress`).  The round-trippable format
  ``repro trace-view`` reads back.
* **Chrome trace_event** (:func:`chrome_trace` / :func:`write_chrome_trace`)
  -- a ``{"traceEvents": [...]}`` document loadable in ``chrome://tracing``
  or https://ui.perfetto.dev for flamegraph viewing.
* **Plain text** (:func:`render_span_tree` / :func:`render_top_spans` /
  :func:`render_metrics` / :func:`render_events`) -- the span tree with
  self/total times, a slowest-spans rollup, a metrics summary table,
  and a progress-phase summary.

:func:`write_trace` dispatches on file extension: ``.json`` means Chrome
format, anything else means JSON lines.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple


def span_record(span) -> Dict[str, object]:
    """Normalise a :class:`~repro.obs.tracer.Span` (or a dict already in
    record form) to the JSONL record schema."""
    if isinstance(span, dict):
        return span
    return {
        "type": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "thread": span.thread_name,
        "start": span.start,
        "end": span.end,
        "dur": span.duration,
        "meta": span.meta,
    }


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------
def write_jsonl(
    path: str,
    spans,
    metrics: Optional[Dict] = None,
    events: Optional[List[Dict]] = None,
) -> int:
    """Write spans (plus optional metrics snapshot and progress-event
    records) as JSON lines.

    Returns the number of lines written.
    """
    lines = 0
    with open(path, "w") as handle:
        for span in spans:
            handle.write(json.dumps(span_record(span), sort_keys=True))
            handle.write("\n")
            lines += 1
        for name, snap in sorted((metrics or {}).items()):
            record = dict(snap)
            # The snapshot's own "type" is the metric kind; the JSONL
            # record "type" tags the line, so stash the kind separately.
            record["kind"] = record.pop("type", "?")
            record.update(type="metric", name=name)
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            lines += 1
        for event in events or []:
            record = dict(event)
            record["type"] = "event"
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            lines += 1
    return lines


def read_trace(path: str) -> Tuple[List[Dict], Dict[str, Dict], List[Dict]]:
    """Parse a JSONL trace into ``(spans, metrics, progress events)``."""
    spans: List[Dict] = []
    metrics: Dict[str, Dict] = {}
    events: List[Dict] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: not JSON: {exc}") from exc
            kind = record.get("type")
            if kind == "span":
                spans.append(record)
            elif kind == "metric":
                name = record.pop("name", f"metric{line_no}")
                record.pop("type", None)
                record["type"] = record.pop("kind", "?")
                metrics[name] = record
            elif kind == "event":
                events.append(record)
            else:
                raise ValueError(
                    f"{path}:{line_no}: unknown record type {kind!r}"
                )
    return spans, metrics, events


def read_jsonl(path: str) -> Tuple[List[Dict], Dict[str, Dict]]:
    """Parse a JSONL trace back into ``(span records, metrics snapshot)``.

    Kept for callers predating progress events; :func:`read_trace` also
    returns the event records.
    """
    spans, metrics, _ = read_trace(path)
    return spans, metrics


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def chrome_trace(spans, metrics: Optional[Dict] = None) -> Dict[str, object]:
    """Build a Chrome ``trace_event`` document (complete 'X' events).

    Timestamps are microseconds relative to the earliest span start, so
    the flamegraph begins at zero.
    """
    records = [span_record(span) for span in spans]
    origin = min((r["start"] for r in records), default=0.0)
    thread_ids: Dict[str, int] = {}
    events = []
    for record in records:
        tid = thread_ids.setdefault(record["thread"], len(thread_ids) + 1)
        events.append(
            {
                "name": record["name"],
                "ph": "X",
                "ts": round((record["start"] - origin) * 1e6, 3),
                "dur": round(record["dur"] * 1e6, 3),
                "pid": 1,
                "tid": tid,
                "args": record.get("meta") or {},
            }
        )
    events.sort(key=lambda e: e["ts"])
    document: Dict[str, object] = {"traceEvents": events, "displayTimeUnit": "ms"}
    for name, tid in thread_ids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": name},
            }
        )
    if metrics:
        document["otherData"] = {"metrics": metrics}
    return document


def write_chrome_trace(path: str, spans, metrics: Optional[Dict] = None) -> int:
    """Write a Chrome trace document; returns the number of spans."""
    spans = list(spans)
    with open(path, "w") as handle:
        json.dump(chrome_trace(spans, metrics), handle)
    return len(spans)


def write_trace(
    path: str,
    spans,
    metrics: Optional[Dict] = None,
    events: Optional[List[Dict]] = None,
) -> int:
    """Dispatch by extension: ``.json`` -> Chrome trace, else JSONL.

    Progress ``events`` are written in the JSONL format only (the
    Chrome ``trace_event`` schema has no place for them).  Returns the
    number of spans written.
    """
    spans = list(spans)
    if path.endswith(".json"):
        write_chrome_trace(path, spans, metrics)
    else:
        write_jsonl(path, spans, metrics, events)
    return len(spans)


# ----------------------------------------------------------------------
# Plain text
# ----------------------------------------------------------------------
def _format_meta(meta: Dict[str, object]) -> str:
    if not meta:
        return ""
    parts = []
    for key in sorted(meta):
        value = meta[key]
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{key}={value}")
    return " " + " ".join(parts)


def render_span_tree(spans, limit_meta: bool = False) -> str:
    """The span tree with total and self times, one line per span.

    ``total`` is the span's own wall time; ``self`` subtracts the wall
    time of its direct children, showing where time is actually spent.
    Accepts :class:`Span` objects or JSONL records.
    """
    records = [span_record(span) for span in spans]
    by_id = {r["id"]: r for r in records}
    children: Dict[Optional[int], List[Dict]] = {}
    for record in records:
        parent = record["parent"]
        if parent is not None and parent not in by_id:
            parent = None  # orphan (parent span never closed): treat as root
        children.setdefault(parent, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: r["start"])

    lines = [f"{'total':>12} {'self':>12}  span"]

    def walk(record: Dict, depth: int) -> None:
        kids = children.get(record["id"], [])
        self_time = record["dur"] - sum(kid["dur"] for kid in kids)
        meta = "" if limit_meta else _format_meta(record.get("meta") or {})
        lines.append(
            f"{record['dur']:>11.6f}s {self_time:>11.6f}s  "
            f"{'  ' * depth}{record['name']}{meta}"
        )
        for kid in kids:
            walk(kid, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    lines.append(f"{len(records)} spans")
    return "\n".join(lines)


def render_top_spans(spans, top: int = 10) -> str:
    """The slowest span *names* as a rollup table (``trace-view --top``).

    Aggregates by span name: call count, summed total time, summed self
    time (total minus direct children), and total as a percentage of
    the root spans' wall time.  Zero-duration traces render with a 0%
    column rather than dividing by zero.
    """
    records = [span_record(span) for span in spans]
    if not records:
        return "no spans recorded"
    by_id = {r["id"]: r for r in records}
    child_time: Dict[object, float] = {}
    root_total = 0.0
    for record in records:
        parent = record["parent"]
        if parent is not None and parent in by_id:
            child_time[parent] = child_time.get(parent, 0.0) + record["dur"]
        else:
            root_total += record["dur"]

    stats: Dict[str, List[float]] = {}  # name -> [count, total, self]
    for record in records:
        self_time = max(0.0, record["dur"] - child_time.get(record["id"], 0.0))
        entry = stats.setdefault(record["name"], [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += record["dur"]
        entry[2] += self_time

    ranked = sorted(stats, key=lambda name: (-stats[name][1], name))
    ranked = ranked[: max(0, top)]
    lines = [f"{'count':>6} {'total':>12} {'self':>12} {'total%':>7}  span"]
    for name in ranked:
        count, total, self_time = stats[name]
        share = 100.0 * total / root_total if root_total > 0 else 0.0
        lines.append(
            f"{count:>6} {total:>11.6f}s {self_time:>11.6f}s "
            f"{share:>6.1f}%  {name}"
        )
    lines.append(
        f"{len(records)} spans, {len(stats)} distinct names, "
        f"root wall time {root_total:.6f}s"
    )
    return "\n".join(lines)


def render_events(events: List[Dict]) -> str:
    """Plain-text progress summary from event records (one line per
    phase plus the failed tasks, if any)."""
    if not events:
        return "no progress events recorded"
    phases: Dict[str, Dict[str, object]] = {}
    failures: List[str] = []
    for event in events:
        phase = phases.setdefault(
            str(event.get("phase", "?")),
            {"total": 0, "completed": 0, "failed": 0},
        )
        kind = event.get("kind")
        if kind == "phase_start":
            phase["total"] = (event.get("meta") or {}).get("total", 0)
        elif kind == "task_finish":
            if event.get("ok", True):
                phase["completed"] += 1
            else:
                phase["failed"] += 1
                failures.append(
                    f"{event.get('phase')}: {event.get('label', '?')}"
                )
    lines = [f"{len(events)} progress events"]
    for name in sorted(phases):
        phase = phases[name]
        lines.append(
            f"  phase {name}: {phase['completed']}/{phase['total']} completed, "
            f"{phase['failed']} failed"
        )
    for failure in failures:
        lines.append(f"  failed task {failure}")
    return "\n".join(lines)


def render_metrics(snapshot: Dict[str, Dict]) -> str:
    """Plain-text summary table of a metrics snapshot."""
    if not snapshot:
        return "no metrics recorded"
    lines = [f"{'metric':<36} {'type':<10} value"]
    for name in sorted(snapshot):
        snap = snapshot[name]
        kind = snap.get("type", "?")
        if kind == "histogram":
            count = snap.get("count", 0)
            total = snap.get("sum", 0.0)
            # Empty histograms have no meaningful centre: render the
            # snapshot's nulls as "-" instead of a fabricated 0.
            mean = snap.get("mean")
            if mean is None and count:
                mean = total / count
            parts = [f"count={count}", f"sum={total:.6g}"]
            parts.append(f"mean={mean:.6g}" if mean is not None else "mean=-")
            for pct in ("p50", "p95", "p99"):
                if snap.get(pct) is not None:
                    parts.append(f"{pct}={snap[pct]:.6g}")
            value = " ".join(parts)
        else:
            raw = snap.get("value", 0)
            value = f"{raw:.6g}" if isinstance(raw, float) else str(raw)
        lines.append(f"{name:<36} {kind:<10} {value}")
    return "\n".join(lines)
