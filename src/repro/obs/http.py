"""Live exposition endpoint: ``/metrics``, ``/snapshot``, ``/health``.

The trace and metrics snapshot land on disk only after a run exits;
this module makes the same state scrapeable *while* a campaign runs,
which is what the ROADMAP's ``repro serve`` item and any external
Prometheus/alerting setup need.  Stdlib only: a
:class:`http.server.ThreadingHTTPServer` on a daemon thread.

Routes:

* ``GET /metrics`` -- Prometheus text exposition (version 0.0.4) of the
  metrics registry: one ``# TYPE`` header per family, labeled series as
  ``name{key="value"}``, histograms as cumulative ``_bucket`` series
  plus ``_sum`` / ``_count``.
* ``GET /snapshot`` -- the full JSON snapshot: raw metrics, live
  progress phases with completed/total counts and ETA
  (:data:`repro.obs.progress.PROGRESS`), and server uptime.
* ``GET /health`` -- ``200 {"status": "ok"}`` liveness probe.

Usage::

    server = MetricsServer(port=0)   # port 0: pick a free port
    server.start()
    ... work ...
    server.stop()

or from the CLI: ``repro obs serve --port 9109``, or ``--serve-metrics
PORT`` on ``campaign`` / ``te`` / ``bench``.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.obs import progress as _progress

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """A metric family name as a legal Prometheus identifier
    (``tunnel_cache.hit`` -> ``tunnel_cache_hit``)."""
    return _NAME_BAD.sub("_", name)


def _prom_labels(labels: Dict[str, str]) -> str:
    """Render a label dict as ``{k="v",...}`` with value escaping."""
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        value = str(labels[key]).replace("\\", r"\\").replace('"', r"\"")
        parts.append(f'{_prom_name(key)}="{value}"')
    return "{" + ",".join(parts) + "}"


def _split_series(series: str) -> str:
    """The family part of a snapshot key (``name{...}`` -> ``name``)."""
    return series.split("{", 1)[0]


def prometheus_text(snapshot: Dict[str, Dict[str, object]]) -> str:
    """A metrics snapshot in Prometheus text exposition format.

    Series are grouped by family (one ``# TYPE`` line each); histogram
    bucket counts are emitted cumulatively with an explicit ``+Inf``
    bucket, per the exposition spec.
    """
    families: Dict[str, Tuple[str, list]] = {}
    for series in sorted(snapshot):
        snap = snapshot[series]
        family = _split_series(series)
        kind = str(snap.get("type", "untyped"))
        families.setdefault(family, (kind, []))[1].append(snap)

    lines = []
    for family in sorted(families):
        kind, snaps = families[family]
        name = _prom_name(family)
        lines.append(f"# TYPE {name} {kind}")
        for snap in snaps:
            labels = {str(k): str(v) for k, v in (snap.get("labels") or {}).items()}
            if kind == "histogram":
                bounds = list(snap.get("bounds") or [])
                counts = list(snap.get("counts") or [])
                cumulative = 0
                for bound, count in zip(bounds + [float("inf")], counts):
                    cumulative += count
                    le = "+Inf" if bound == float("inf") else format(bound, "g")
                    bucket_labels = _prom_labels({**labels, "le": le})
                    lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
                lines.append(
                    f"{name}_sum{_prom_labels(labels)} "
                    f"{format(float(snap.get('sum', 0.0)), 'g')}"
                )
                lines.append(
                    f"{name}_count{_prom_labels(labels)} {int(snap.get('count', 0))}"
                )
            else:
                value = snap.get("value", 0)
                lines.append(f"{name}{_prom_labels(labels)} {format(value, 'g')}")
    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`MetricsServer` via the
    server object (``self.server.telemetry``)."""

    server_version = "repro-obs/1"

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        owner: "MetricsServer" = self.server.telemetry  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._send(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                prometheus_text(owner.registry.snapshot()),
            )
        elif path == "/snapshot":
            self._send(200, "application/json", json.dumps(owner.snapshot()))
        elif path == "/health":
            self._send(200, "application/json", '{"status": "ok"}')
        else:
            self._send(404, "text/plain; charset=utf-8", "not found\n")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr logging; scrapes are periodic."""


class MetricsServer:
    """Background HTTP server exposing live telemetry.

    ``port=0`` binds an OS-assigned free port (read it back from
    :attr:`port` after :meth:`start`); a busy explicit port raises
    :class:`OSError` from ``start()`` rather than dying silently on the
    serving thread.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[_metrics.MetricsRegistry] = None,
        progress: Optional[_progress.ProgressTracker] = None,
    ):
        self.host = host
        self.registry = registry if registry is not None else _metrics.REGISTRY
        self.progress = progress if progress is not None else _progress.PROGRESS
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        """Base URL of the running (or configured) endpoint."""
        return f"http://{self.host}:{self.port}"

    def snapshot(self) -> Dict[str, object]:
        """The ``/snapshot`` document as a plain dict."""
        return {
            "uptime_seconds": (
                time.time() - self._started_at if self._started_at else 0.0
            ),
            "metrics": self.registry.snapshot(),
            "progress": self.progress.snapshot(),
        }

    def start(self) -> "MetricsServer":
        """Bind and serve on a daemon thread; returns ``self``.

        Binding happens on the caller's thread so a port-in-use
        ``OSError`` surfaces here, synchronously.
        """
        if self._httpd is not None:
            raise RuntimeError("MetricsServer is already running")
        httpd = ThreadingHTTPServer((self.host, self._requested_port), _Handler)
        httpd.daemon_threads = True
        httpd.telemetry = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-obs-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join the serving thread (idempotent)."""
        httpd, thread = self._httpd, self._thread
        self._httpd = None
        self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
