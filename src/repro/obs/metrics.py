"""Metrics registry: labeled counters, gauges, and histograms.

A :class:`MetricsRegistry` holds named metric *series*; the module also
exposes a process-global default registry through module-level
``counter`` / ``gauge`` / ``histogram`` helpers, which is what the
instrumented code uses::

    from repro.obs import metrics

    metrics.counter("lp.solves", backend="fast-highs").inc()
    metrics.histogram("lp.solve_seconds", backend="fast-highs").observe(dt)

**Labels.**  Every helper accepts keyword labels.  ``name`` plus a
label set identifies one series; the same name with different labels is
a different series of the same *family*.  Incrementing a labeled
counter (or observing into a labeled histogram) also updates the
family's unlabeled base series, so ``lp.solves`` stays the process-wide
total while ``lp.solves{backend="fast-highs"}`` carries the breakdown.
Gauges do not aggregate (a "total" of last-write-wins values has no
meaning); each gauge series stands alone.

**Percentiles.**  Histograms keep a bounded reservoir of raw
observations alongside the fixed buckets: percentiles are *exact*
until the reservoir fills (:data:`RESERVOIR_SIZE` observations) and a
deterministic rolling sample afterwards.  Snapshots report ``p50`` /
``p95`` / ``p99`` next to ``mean``; all four are ``null`` when the
histogram is empty, never a misleading 0.

**Bucket presets.**  Histogram families default their bucket bounds by
domain -- the leading dotted segment of the name -- via
:data:`BUCKET_PRESETS` (sub-millisecond bounds for ``bdd.*``,
seconds-scale for ``lp.*``, ...), so a BDD op histogram and an LP solve
histogram both land observations in meaningful buckets without every
call site hand-picking bounds.

All mutation is lock-protected, so metrics can be bumped from worker
threads, and every snapshot (per-metric and registry-wide) is taken
under the relevant lock so concurrent registration or observation can
never tear it.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Maximum raw observations a histogram retains for exact percentiles.
#: Below this count percentiles are exact; beyond it, a deterministic
#: rolling replacement keeps a representative bounded sample.
RESERVOIR_SIZE = 512

#: Knuth's multiplicative-hash constant; scatters sequential overflow
#: observation indices across reservoir slots deterministically.
_RESERVOIR_STRIDE = 2654435761


def _series_name(name: str, labels: Optional[Mapping[str, object]]) -> str:
    """The registry key of a series: ``name`` or ``name{k="v",...}``.

    Label keys are sorted so ``counter("c", a=1, b=2)`` and
    ``counter("c", b=2, a=1)`` resolve to the same series.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def _normalise_labels(labels: Mapping[str, object]) -> Dict[str, str]:
    """Label values as strings (what exposition formats emit)."""
    return {key: str(value) for key, value in labels.items()}


class Counter:
    """Monotonically increasing integer/float counter.

    A labeled counter holds a reference to its family's unlabeled base
    series and forwards every increment, keeping the family total live.
    """

    kind = "counter"
    __slots__ = ("name", "family", "labels", "_value", "_lock", "_parent")

    def __init__(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        parent: Optional["Counter"] = None,
    ):
        self.name = name
        self.family = name.split("{", 1)[0]
        self.labels = labels or {}
        self._value = 0
        self._lock = threading.Lock()
        self._parent = parent

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount
        if self._parent is not None:
            self._parent.inc(amount)

    @property
    def value(self):
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            snap: Dict[str, object] = {"type": self.kind, "value": self._value}
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap


class Gauge:
    """Last-write-wins value (e.g. current node count).

    Gauges never propagate to a family base series: summing or
    last-writing across label sets would fabricate a value nobody set.
    """

    kind = "gauge"
    __slots__ = ("name", "family", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.family = name.split("{", 1)[0]
        self.labels = labels or {}
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            snap: Dict[str, object] = {"type": self.kind, "value": self._value}
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap


#: Default histogram bucket upper bounds; an implicit +inf bucket is
#: always appended, so any value is representable.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
)

#: Per-domain bucket presets keyed by a metric name's leading dotted
#: segment.  One bucket layout cannot serve both microsecond BDD ops
#: and minute-scale campaign runs; a family whose domain appears here
#: gets these bounds unless the call site passes ``buckets`` explicitly.
BUCKET_PRESETS: Dict[str, Tuple[float, ...]] = {
    # BDD node/apply operations: sub-millisecond up to a slow 10ms op.
    "bdd": (1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2),
    # LP solves: a millisecond floor up to a minute-long solve.
    "lp": (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0),
    # Artifact-store disk IO: tens of microseconds to a slow half second.
    "store": (1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.05, 0.5),
    # Whole campaign/pipeline runs: tenths of seconds to minutes.
    "campaign": (0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0),
    # Service jobs: a near-instant cached hit up to a minutes-long
    # campaign dispatched to a worker.
    "serve": (0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0),
    # Sharded verification: sub-millisecond stitches and streaming
    # updates up to multi-second cold shard builds.
    "shard": (1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0),
}


def buckets_for(name: str) -> Tuple[float, ...]:
    """The bucket preset for a metric family, by its domain prefix.

    The domain is the text before the first ``.`` (``lp.solve_seconds``
    -> ``lp``); unknown domains fall back to :data:`DEFAULT_BUCKETS`.
    """
    domain = name.split(".", 1)[0]
    return BUCKET_PRESETS.get(domain, DEFAULT_BUCKETS)


class Histogram:
    """Fixed-bucket histogram plus a bounded exact-percentile reservoir.

    ``bounds`` are the inclusive upper edges of the finite buckets; an
    overflow bucket catches everything larger.  Observation is O(log n)
    via bisection plus one reservoir slot write.  A labeled histogram
    forwards every observation to its family's base series, which is
    created with the same bounds.
    """

    kind = "histogram"
    __slots__ = (
        "name", "family", "labels", "bounds", "counts", "total", "count",
        "_reservoir", "_lock", "_parent",
    )

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labels: Optional[Dict[str, str]] = None,
        parent: Optional["Histogram"] = None,
    ):
        bounds = sorted(set(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.family = name.split("{", 1)[0]
        self.labels = labels or {}
        self.bounds: List[float] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # +1 overflow
        self.total = 0.0
        self.count = 0
        self._reservoir: List[float] = []
        self._lock = threading.Lock()
        self._parent = parent

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1
            if len(self._reservoir) < RESERVOIR_SIZE:
                self._reservoir.append(value)
            else:
                # Deterministic rolling replacement: the multiplicative
                # stride scatters sequential observation numbers across
                # slots, so the sample keeps drifting toward recency
                # without any RNG state to make reruns diverge.
                slot = (self.count * _RESERVOIR_STRIDE) % RESERVOIR_SIZE
                self._reservoir[slot] = value
        if self._parent is not None:
            self._parent.observe(value)

    @property
    def mean(self) -> Optional[float]:
        """Mean of all observations; ``None`` when empty."""
        with self._lock:
            return self.total / self.count if self.count else None

    def percentile(self, pct: float) -> Optional[float]:
        """The ``pct`` percentile (0-100) from the reservoir.

        Exact while the histogram has seen at most
        :data:`RESERVOIR_SIZE` observations; a deterministic sample
        estimate beyond that.  ``None`` when the histogram is empty.
        """
        if not 0 <= pct <= 100:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            sample = sorted(self._reservoir)
        if not sample:
            return None
        rank = max(0, -(-len(sample) * pct // 100) - 1)  # ceil - 1
        return sample[int(min(rank, len(sample) - 1))]

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """``(upper_bound, count)`` pairs; the last bound is +inf."""
        with self._lock:
            counts = list(self.counts)
        edges = self.bounds + [float("inf")]
        return list(zip(edges, counts))

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            count = self.count
            total = self.total
            counts = list(self.counts)
            sample = sorted(self._reservoir)

        def pick(pct: float) -> Optional[float]:
            if not sample:
                return None
            rank = max(0, -(-len(sample) * pct // 100) - 1)
            return sample[int(min(rank, len(sample) - 1))]

        snap: Dict[str, object] = {
            "type": self.kind,
            "bounds": list(self.bounds),
            "counts": counts,
            "sum": total,
            "count": count,
            "mean": (total / count) if count else None,
            "p50": pick(50),
            "p95": pick(95),
            "p99": pick(99),
        }
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap


class MetricsRegistry:
    """Named metric series with get-or-create semantics.

    Series are keyed by ``name`` plus a sorted label rendering; a
    *family* (every series sharing a name) must keep one kind, labeled
    or not.  Labeled counters and histograms are created with a link to
    their family's base series so family totals stay live without a
    second lookup on the hot path.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._kinds: Dict[str, str] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name, labels, factory, kind):
        series = _series_name(name, labels)
        with self._lock:
            metric = self._metrics.get(series)
            if metric is None:
                known = self._kinds.get(name)
                if known is not None and known != kind:
                    raise TypeError(
                        f"metric {name!r} already registered as {known}"
                    )
                metric = self._metrics[series] = factory()
                self._kinds[name] = kind
            elif metric.kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, **labels) -> Counter:
        """The counter series for ``name`` (+ labels), creating it on
        first use.  Labeled series forward increments to the family
        total ``name``."""
        if not labels:
            return self._get_or_create(
                name, None, lambda: Counter(name), "counter"
            )
        base = self.counter(name)
        rendered = _normalise_labels(labels)
        series = _series_name(name, rendered)
        return self._get_or_create(
            name, rendered,
            lambda: Counter(series, labels=rendered, parent=base),
            "counter",
        )

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge series for ``name`` (+ labels); gauges never
        aggregate into a family total."""
        rendered = _normalise_labels(labels) if labels else None
        series = _series_name(name, rendered)
        return self._get_or_create(
            name, rendered, lambda: Gauge(series, labels=rendered), "gauge"
        )

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels,
    ) -> Histogram:
        """The histogram series for ``name`` (+ labels).

        ``buckets=None`` picks the family's domain preset
        (:func:`buckets_for`).  Labeled series share bounds with -- and
        forward observations to -- the family total.
        """
        bounds = tuple(buckets) if buckets is not None else buckets_for(name)
        if not labels:
            return self._get_or_create(
                name, None, lambda: Histogram(name, bounds), "histogram"
            )
        base = self.histogram(name, buckets=bounds)
        rendered = _normalise_labels(labels)
        series = _series_name(name, rendered)
        return self._get_or_create(
            name, rendered,
            lambda: Histogram(series, bounds, labels=rendered, parent=base),
            "histogram",
        )

    def get(self, name: str, **labels):
        """The series registered under ``name`` (+ labels), or ``None``."""
        rendered = _normalise_labels(labels) if labels else None
        with self._lock:
            return self._metrics.get(_series_name(name, rendered))

    def names(self) -> List[str]:
        """Every registered series name, sorted (copied under the lock)."""
        with self._lock:
            return sorted(self._metrics)

    def metrics(self) -> List[object]:
        """Every registered metric object, sorted by series name.

        The list is a lock-protected copy, so callers (exposition
        formats, exporters) can iterate while workers register new
        series.
        """
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """``{series name: snapshot}`` for every registered metric.

        The metric map is copied under the registry lock (so concurrent
        registration cannot race the iteration) and each per-metric
        snapshot is taken under that metric's own lock (so concurrent
        observation cannot tear multi-field histogram state).
        """
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.snapshot() for name, metric in items}

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()


def _forward_labels(labels: Dict[str, object]) -> Dict[str, object]:
    """Hook point kept trivial: labels pass through unchanged."""
    return labels


#: The process-global default registry used by the instrumented code.
REGISTRY = MetricsRegistry()


def counter(name: str, **labels) -> Counter:
    """:meth:`MetricsRegistry.counter` on the global registry."""
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    """:meth:`MetricsRegistry.gauge` on the global registry."""
    return REGISTRY.gauge(name, **labels)


def histogram(
    name: str, buckets: Optional[Sequence[float]] = None, **labels
) -> Histogram:
    """:meth:`MetricsRegistry.histogram` on the global registry."""
    return REGISTRY.histogram(name, buckets, **labels)


def snapshot() -> Dict[str, Dict[str, object]]:
    """:meth:`MetricsRegistry.snapshot` of the global registry."""
    return REGISTRY.snapshot()


def reset() -> None:
    """Clear the global registry (tests and CLI entry points)."""
    REGISTRY.reset()
