"""Metrics registry: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` holds named metrics; the module also exposes
a process-global default registry through module-level ``counter`` /
``gauge`` / ``histogram`` helpers, which is what the instrumented code
uses::

    from repro.obs import metrics

    metrics.counter("lp.solves").inc()
    metrics.histogram("lp.iterations").observe(result.iterations)

All mutation is lock-protected, so metrics can be bumped from worker
threads.  Snapshots are plain dicts suitable for JSON export.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Optional, Sequence, Tuple


class Counter:
    """Monotonically increasing integer/float counter."""

    kind = "counter"
    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self._value}


class Gauge:
    """Last-write-wins value (e.g. current node count)."""

    kind = "gauge"
    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self._value}


#: Default histogram bucket upper bounds; an implicit +inf bucket is
#: always appended, so any value is representable.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
)


class Histogram:
    """Fixed-bucket histogram (cumulative counts are left to readers).

    ``bounds`` are the inclusive upper edges of the finite buckets; an
    overflow bucket catches everything larger.  Observation is O(log n)
    via bisection.
    """

    kind = "histogram"
    __slots__ = ("name", "bounds", "counts", "total", "count", "_lock")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = sorted(set(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.bounds: List[float] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # +1 overflow
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """``(upper_bound, count)`` pairs; the last bound is +inf."""
        edges = self.bounds + [float("inf")]
        return list(zip(edges, self.counts))

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": self.kind,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """Named metrics with get-or-create semantics."""

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name, factory, kind):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif metric.kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), "gauge")

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        factory = lambda: Histogram(name, buckets or DEFAULT_BUCKETS)
        return self._get_or_create(name, factory, "histogram")

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """``{name: metric snapshot}`` for every registered metric."""
        with self._lock:
            items = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(items)}

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


#: The process-global default registry used by the instrumented code.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
    return REGISTRY.histogram(name, buckets)


def snapshot() -> Dict[str, Dict[str, object]]:
    return REGISTRY.snapshot()


def reset() -> None:
    REGISTRY.reset()
