"""Sampling profiler: periodic thread-stack capture, zero dependencies.

Instrumented spans tell you how long the *annotated* regions took; they
cannot tell you where time goes inside a 30-second LP solve or a BDD
sweep that was never annotated.  This profiler fills that gap the way
py-spy does, but in-process and stdlib-only: a daemon thread wakes
every ``interval`` seconds, grabs every thread's current frame via
``sys._current_frames()``, and tallies the call stacks.

Output is the flamegraph **collapsed stack** format -- one line per
distinct stack, root-first frames joined by ``;`` followed by the
sample count::

    repro.cli:main;repro.lp.backends:_run_linprog 42

which feeds straight into ``flamegraph.pl``, speedscope, or the
built-in ``repro profile-view`` top-N rollup (:func:`render_top`).

Sampling bias caveats apply: an ``interval`` of 5ms sees anything that
runs for tens of milliseconds, and sample *counts* are proportional to
wall time per stack, not call counts.  The profiler thread excludes
itself from capture.
"""

from __future__ import annotations

import sys
import threading
from typing import Dict, List, Optional, Tuple

#: Default seconds between stack captures: coarse enough to be
#: unmeasurable overhead, fine enough to see >=10ms regions.
DEFAULT_INTERVAL = 0.005


def _format_frame(frame) -> str:
    """One frame as ``module:function`` (file basename if no module)."""
    module = frame.f_globals.get("__name__")
    if not module:
        module = frame.f_code.co_filename.rsplit("/", 1)[-1]
    return f"{module}:{frame.f_code.co_name}"


def _collapse_frame(frame) -> str:
    """A thread's live frame as a root-first ``;``-joined stack."""
    frames: List[str] = []
    while frame is not None:
        frames.append(_format_frame(frame))
        frame = frame.f_back
    return ";".join(reversed(frames))


class SamplingProfiler:
    """Wall-clock thread-stack sampler.

    ``start()`` / ``stop()`` bracket the profiled region; ``stop()`` is
    idempotent and joins the sampler thread, after which
    :meth:`collapsed` / :meth:`write` expose the tally.  Also usable as
    a context manager.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.interval = interval
        self._counts: Dict[str, int] = {}
        self._samples = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def samples(self) -> int:
        """Total capture sweeps taken so far."""
        with self._lock:
            return self._samples

    def _sample(self) -> None:
        me = threading.get_ident()
        frames = sys._current_frames()
        stacks = [
            _collapse_frame(frame)
            for ident, frame in frames.items()
            if ident != me
        ]
        with self._lock:
            self._samples += 1
            for stack in stacks:
                self._counts[stack] = self._counts.get(stack, 0) + 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample()

    def start(self) -> "SamplingProfiler":
        """Begin sampling on a daemon thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("profiler is already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling and join the sampler thread (idempotent)."""
        thread = self._thread
        self._thread = None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def collapsed(self) -> List[str]:
        """The tally as sorted collapsed-stack lines (``stack count``)."""
        with self._lock:
            return [
                f"{stack} {count}"
                for stack, count in sorted(self._counts.items())
            ]

    def write(self, path: str) -> int:
        """Write the collapsed stacks to ``path``; returns line count."""
        lines = self.collapsed()
        with open(path, "w") as handle:
            for line in lines:
                handle.write(line)
                handle.write("\n")
        return len(lines)


def read_collapsed(path: str) -> Dict[str, int]:
    """Parse a collapsed-stack file back into ``{stack: count}``.

    Malformed lines raise :class:`ValueError` with the line number so a
    truncated or non-profile file fails loudly.
    """
    counts: Dict[str, int] = {}
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            stack, _, count = line.rpartition(" ")
            if not stack or not count.isdigit():
                raise ValueError(
                    f"{path}:{line_no}: not a collapsed stack line: {line!r}"
                )
            counts[stack] = counts.get(stack, 0) + int(count)
    return counts


def render_top(counts: Dict[str, int], top: int = 10) -> str:
    """Top-N frames by self and total samples, as a plain-text table.

    *self* counts samples where the frame was the leaf (actually
    executing); *total* counts samples where it appears anywhere on the
    stack (executing or waiting on a callee).  Frames repeated in one
    stack (recursion) count once toward that stack's total.
    """
    if not counts:
        return "no samples recorded"
    grand_total = sum(counts.values())
    self_counts: Dict[str, int] = {}
    total_counts: Dict[str, int] = {}
    for stack, count in counts.items():
        frames = stack.split(";")
        leaf = frames[-1]
        self_counts[leaf] = self_counts.get(leaf, 0) + count
        for frame in set(frames):
            total_counts[frame] = total_counts.get(frame, 0) + count

    ranked = sorted(
        total_counts,
        key=lambda frame: (-total_counts[frame], frame),
    )[: max(0, top)]
    lines = [f"{'total':>7} {'total%':>7} {'self':>7} {'self%':>7}  frame"]
    for frame in ranked:
        total = total_counts[frame]
        self_ = self_counts.get(frame, 0)
        total_pct = 100.0 * total / grand_total if grand_total else 0.0
        self_pct = 100.0 * self_ / grand_total if grand_total else 0.0
        lines.append(
            f"{total:>7} {total_pct:>6.1f}% {self_:>7} {self_pct:>6.1f}%  {frame}"
        )
    lines.append(f"{grand_total} samples, {len(counts)} distinct stacks")
    return "\n".join(lines)
