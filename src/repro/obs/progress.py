"""Structured progress events: live heartbeat for long-running fan-outs.

Campaigns and sweeps run for minutes behind a thread pool; the trace
tells you what happened only after exit.  This module gives the running
process a pulse: a phase declares its total task count up front, each
task reports start/finish/fail, and anything holding the tracker -- the
``/snapshot`` endpoint, ``trace-view``, a checkpoint hook -- can read
completed-vs-total counts and an ETA while work is still in flight.

Usage::

    phase = PROGRESS.phase("campaign", total=len(pending))
    for combo in pending:          # really a run_ordered fan-out
        phase.task_start(label)
        try:
            ...
        except Exception:
            phase.task_finish(label, ok=False)
            raise
        phase.task_finish(label)
    phase.finish()

Every transition appends a JSON-able event record (``{"type": "event",
"kind": "task_finish", ...}``) to a bounded in-memory log;
:func:`repro.obs.export.write_jsonl` persists them next to spans and
metrics, and :func:`~repro.obs.export.read_trace` reads them back.
Counts are mirrored into ``progress.*`` gauges so a plain ``/metrics``
scrape shows them too.

Everything is lock-protected; the tracker is shared by worker threads
by design.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.obs import metrics as _metrics

#: Cap on retained event records; a campaign emits 2 events per task
#: plus 2 per phase, so this covers thousands of tasks before rolling.
MAX_EVENTS = 10_000


class Phase:
    """One tracked unit of fan-out work (a campaign, a sweep).

    Handed out by :meth:`ProgressTracker.phase`; all mutation goes
    through the owning tracker's lock.
    """

    __slots__ = (
        "name", "total", "completed", "failed", "running",
        "started_at", "finished_at", "_tracker",
    )

    def __init__(self, name: str, total: int, tracker: "ProgressTracker"):
        self.name = name
        self.total = total
        self.completed = 0
        self.failed = 0
        self.running = 0
        self.started_at = time.time()
        self.finished_at: Optional[float] = None
        self._tracker = tracker

    def task_start(self, label: str) -> None:
        """Record that the task called ``label`` began executing."""
        self._tracker._task_start(self, label)

    def task_finish(self, label: str, ok: bool = True, **meta) -> None:
        """Record that ``label`` finished; ``ok=False`` counts a failure."""
        self._tracker._task_finish(self, label, ok, meta)

    def finish(self) -> None:
        """Close the phase (all tasks done or the fan-out aborted)."""
        self._tracker._phase_finish(self)

    def snapshot(self) -> Dict[str, object]:
        """Live counts plus an ETA estimate (requires the tracker lock;
        callers use :meth:`ProgressTracker.snapshot`)."""
        now = time.time()
        elapsed = (self.finished_at or now) - self.started_at
        eta = None
        done = self.completed + self.failed
        if self.finished_at is None and done and self.total > done:
            eta = elapsed / done * (self.total - done)
        return {
            "phase": self.name,
            "total": self.total,
            "completed": self.completed,
            "failed": self.failed,
            "running": self.running,
            "done": self.finished_at is not None,
            "elapsed_seconds": elapsed,
            "eta_seconds": eta,
        }


class ProgressTracker:
    """Process-wide registry of phases and their event log."""

    def __init__(self):
        self._lock = threading.Lock()
        self._phases: List[Phase] = []
        self._events: List[Dict[str, object]] = []
        self._seq = 0
        self._dropped = 0

    # -- event plumbing -------------------------------------------------
    def _emit(self, kind: str, phase: Phase, label: Optional[str] = None,
              ok: Optional[bool] = None, meta: Optional[Dict] = None) -> None:
        record: Dict[str, object] = {
            "type": "event",
            "seq": self._seq,
            "time_unix": time.time(),
            "kind": kind,
            "phase": phase.name,
        }
        self._seq += 1
        if label is not None:
            record["label"] = label
        if ok is not None:
            record["ok"] = ok
        if meta:
            record["meta"] = dict(meta)
        self._events.append(record)
        if len(self._events) > MAX_EVENTS:
            del self._events[0]
            self._dropped += 1

    def _mirror_gauges(self, phase: Phase) -> None:
        # Mirror counts into labeled gauges so a bare /metrics scrape
        # (no /snapshot) still shows campaign progress.
        _metrics.gauge("progress.total", phase=phase.name).set(phase.total)
        _metrics.gauge("progress.completed", phase=phase.name).set(phase.completed)
        _metrics.gauge("progress.failed", phase=phase.name).set(phase.failed)
        _metrics.gauge("progress.running", phase=phase.name).set(phase.running)

    # -- phase lifecycle ------------------------------------------------
    def phase(self, name: str, total: int, **meta) -> Phase:
        """Open a new phase expecting ``total`` tasks."""
        if total < 0:
            raise ValueError("total must be >= 0")
        phase = Phase(name, total, self)
        with self._lock:
            self._phases.append(phase)
            self._emit("phase_start", phase, meta={"total": total, **meta})
            self._mirror_gauges(phase)
        return phase

    def _task_start(self, phase: Phase, label: str) -> None:
        with self._lock:
            phase.running += 1
            self._emit("task_start", phase, label=label)
            self._mirror_gauges(phase)

    def _task_finish(self, phase: Phase, label: str, ok: bool, meta: Dict) -> None:
        with self._lock:
            phase.running = max(0, phase.running - 1)
            if ok:
                phase.completed += 1
            else:
                phase.failed += 1
            self._emit("task_finish", phase, label=label, ok=ok, meta=meta)
            self._mirror_gauges(phase)

    def _phase_finish(self, phase: Phase) -> None:
        with self._lock:
            if phase.finished_at is None:
                phase.finished_at = time.time()
                self._emit(
                    "phase_finish", phase,
                    meta={"completed": phase.completed, "failed": phase.failed},
                )
                self._mirror_gauges(phase)

    # -- readers --------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Live view: every phase's counts, ETA, and event-log stats."""
        with self._lock:
            return {
                "phases": [phase.snapshot() for phase in self._phases],
                "events": len(self._events),
                "events_dropped": self._dropped,
            }

    def events(self) -> List[Dict[str, object]]:
        """A copy of the retained event records, oldest first."""
        with self._lock:
            return [dict(record) for record in self._events]

    def reset(self) -> None:
        """Drop all phases and events (tests, CLI entry points)."""
        with self._lock:
            self._phases.clear()
            self._events.clear()
            self._seq = 0
            self._dropped = 0


#: The process-global tracker, mirroring :data:`repro.obs.metrics.REGISTRY`.
PROGRESS = ProgressTracker()
