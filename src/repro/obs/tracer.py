"""Dependency-free tracing: nested spans with monotonic timings.

One process-global tracer is active at any time, defaulting to
:data:`NOOP`.  The no-op tracer's spans still measure wall time (two
``perf_counter`` calls, exactly what the hand-rolled timing pairs they
replace paid), so instrumented code can keep populating
``solve_seconds``-style fields whether or not tracing is on -- but they
allocate nothing else and record nothing, keeping the disabled path
effectively free.

Usage::

    from repro import obs

    with obs.span("ncflow.solve", topology=topo.name) as sp:
        ...
    solution.solve_seconds = sp.duration

Nesting is tracked per thread: a span opened while another span of the
same thread is active becomes its child.  Finished spans are collected
behind a lock, so concurrent threads can trace safely; span ids are
process-unique.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time
from typing import Dict, List, Optional


class Span:
    """One timed, possibly-nested region of execution.

    Use as a context manager; ``duration`` is valid after exit.  Extra
    metadata can be attached at open time (keyword arguments to
    :func:`span`) or later via :meth:`set`.
    """

    __slots__ = (
        "name", "meta", "span_id", "parent_id", "thread_name",
        "start", "end", "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, meta: Optional[Dict] = None):
        self._tracer = tracer
        self.name = name
        self.meta: Dict[str, object] = dict(meta) if meta else {}
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.thread_name = ""
        self.start = 0.0
        self.end = 0.0

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.span_id = next(tracer._ids)
        self.thread_name = threading.current_thread().name
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.meta.setdefault("error", exc_type.__name__)
        self._tracer._record(self)
        return False

    @property
    def duration(self) -> float:
        return self.end - self.start

    def set(self, **meta) -> "Span":
        """Attach metadata; returns self for chaining."""
        self.meta.update(meta)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, dur={self.duration:.6f})"


class NoopSpan:
    """Span stand-in when tracing is off: times itself, records nothing."""

    __slots__ = ("start", "end")

    def __enter__(self) -> "NoopSpan":
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        return False

    @property
    def duration(self) -> float:
        return self.end - self.start

    def set(self, **meta) -> "NoopSpan":
        return self


class Tracer:
    """Collects finished spans; thread-safe, one span stack per thread."""

    enabled = True

    def __init__(self):
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        self._local = threading.local()
        #: perf_counter at construction; exporters use it as time zero.
        self.epoch = time.perf_counter()

    def span(self, name: str, meta: Optional[Dict] = None) -> Span:
        return Span(self, name, meta)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    def finished_spans(self) -> List[Span]:
        """Finished spans in completion order (children before parents)."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()


class NoopTracer:
    """The default tracer: mints :class:`NoopSpan`, keeps nothing."""

    enabled = False

    def span(self, name: str, meta: Optional[Dict] = None) -> NoopSpan:
        return NoopSpan()

    def finished_spans(self) -> List[Span]:
        return []

    def clear(self) -> None:
        pass


#: The process-wide no-op tracer (also the initial active tracer).
NOOP = NoopTracer()

_active = NOOP
_swap_lock = threading.Lock()


def get_tracer():
    """The currently active tracer (:data:`NOOP` unless installed)."""
    return _active


def set_tracer(tracer):
    """Install ``tracer`` globally; returns the previous tracer."""
    global _active
    with _swap_lock:
        previous = _active
        _active = tracer if tracer is not None else NOOP
    return previous


def span(name: str, **meta):
    """Open a span on the active tracer (the main instrumentation entry)."""
    return _active.span(name, meta or None)


@contextlib.contextmanager
def tracing(tracer: Optional[Tracer] = None):
    """Temporarily install ``tracer`` (a fresh :class:`Tracer` by default).

    Yields the installed tracer and restores the previous one on exit::

        with obs.tracing() as tracer:
            run_workload()
        spans = tracer.finished_spans()
    """
    installed = tracer if tracer is not None else Tracer()
    previous = set_tracer(installed)
    try:
        yield installed
    finally:
        set_tracer(previous)
