"""Deterministic thread fan-out used by sweeps and campaigns.

One helper, one contract: results come back in submission order, so a
parallel run is indistinguishable from a serial run except in wall
time.  Threads (not processes) are the right grain here -- the heavy
lifting inside each task is ``scipy.optimize.linprog``, which releases
the GIL while HiGHS runs -- and they keep the process-wide tunnel cache
and metrics registry shared, which is what makes repeated sweep points
cheap.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Sequence, TypeVar

from repro import obs

T = TypeVar("T")


def run_ordered(tasks: Sequence[Callable[[], T]], workers: int = 1) -> List[T]:
    """Run every task, returning results in submission order.

    ``workers <= 1`` (or a single task) degrades to a plain serial loop
    with no executor overhead.  A task that raises propagates its
    exception at its position; later tasks may or may not have run.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    tasks = list(tasks)
    if workers == 1 or len(tasks) <= 1:
        return [task() for task in tasks]
    with obs.span("parallel.run", workers=workers, tasks=len(tasks)):
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-worker"
        ) as pool:
            futures = [pool.submit(task) for task in tasks]
            return [future.result() for future in futures]
