"""Deterministic thread fan-out used by sweeps and campaigns.

One helper, one contract: results come back in submission order, so a
parallel run is indistinguishable from a serial run except in wall
time.  Threads (not processes) are the right grain here -- the heavy
lifting inside each task is ``scipy.optimize.linprog``, which releases
the GIL while HiGHS runs -- and they keep the process-wide tunnel cache
and metrics registry shared, which is what makes repeated sweep points
cheap.

Failure handling is explicit (``on_error``):

* ``"raise"`` (default) -- the first failing position's exception
  propagates; its completion immediately cancels every not-yet-started
  future, so a poisoned task cannot waste the rest of the pool.
* ``"collect"`` -- every task runs; failing positions come back as
  structured :class:`TaskFailure` records in place of results, which is
  what fail-soft sweeps and campaigns build partial results from.

Each task runs behind the ``parallel.task`` fault-injection point
(keyed by task index, so an installed
:class:`~repro.resilience.FaultPlan` injects the same schedule at any
worker count).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Sequence, TypeVar, Union

from repro import obs

T = TypeVar("T")

#: Marker returned by a worker that declined to start its task because
#: an earlier task had already failed (``on_error="raise"`` only).
_SKIPPED = object()


@dataclass(frozen=True)
class TaskFailure:
    """One failed slot of a fail-soft ``run_ordered`` call."""

    index: int
    error: str    # exception class name
    message: str

    def __str__(self) -> str:
        return f"task {self.index}: {self.error}: {self.message}"


def _guarded(index: int, task: Callable[[], T]) -> T:
    from repro.resilience import faults

    injector = faults.active()
    if injector is not None:
        injector.maybe_fail("parallel.task", key=f"task{index}")
    return task()


def run_ordered(
    tasks: Sequence[Callable[[], T]],
    workers: int = 1,
    on_error: str = "raise",
) -> List[Union[T, TaskFailure]]:
    """Run every task, returning results in submission order.

    ``workers <= 1`` (or a single task) degrades to a plain serial loop
    with no executor overhead.  Under ``on_error="raise"`` a failing
    task propagates its exception at its position and cancels every
    future that has not started yet; under ``on_error="collect"`` the
    returned list carries a :class:`TaskFailure` at each failed position
    and real results everywhere else.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if on_error not in ("raise", "collect"):
        raise ValueError(
            f"on_error must be 'raise' or 'collect', got {on_error!r}"
        )
    tasks = list(tasks)
    if workers == 1 or len(tasks) <= 1:
        results: List[Union[T, TaskFailure]] = []
        for index, task in enumerate(tasks):
            try:
                results.append(_guarded(index, task))
            except Exception as exc:
                if on_error == "raise":
                    raise
                obs.metrics.counter(
                    "parallel.task_failures", error=type(exc).__name__
                ).inc()
                results.append(
                    TaskFailure(index, type(exc).__name__, str(exc))
                )
        return results
    with obs.span("parallel.run", workers=workers, tasks=len(tasks)):
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-worker"
        ) as pool:
            futures = []
            poisoned = threading.Event()

            def run_or_skip(index, task):
                # The flag is set in the failing worker thread *before*
                # its exception propagates, so no worker can start a
                # queued task after a failure it could have observed.
                # Future cancellation alone races with submission.
                if poisoned.is_set():
                    return _SKIPPED
                try:
                    return _guarded(index, task)
                except BaseException:
                    poisoned.set()
                    raise

            def cancel_later(done_index):
                def callback(future):
                    if not future.cancelled() and future.exception() is not None:
                        for later in futures[done_index + 1:]:
                            later.cancel()
                return callback

            entry = run_or_skip if on_error == "raise" else _guarded
            for index, task in enumerate(tasks):
                future = pool.submit(entry, index, task)
                if on_error == "raise":
                    future.add_done_callback(cancel_later(index))
                futures.append(future)

            results = []
            first_error = None
            for index, future in enumerate(futures):
                if future.cancelled():
                    results.append(None)
                    continue
                exc = future.exception()  # waits for completion
                if exc is None:
                    value = future.result()
                    results.append(None if value is _SKIPPED else value)
                elif on_error == "raise":
                    if first_error is None:
                        first_error = exc
                    results.append(None)
                else:
                    obs.metrics.counter(
                        "parallel.task_failures", error=type(exc).__name__
                    ).inc()
                    results.append(
                        TaskFailure(index, type(exc).__name__, str(exc))
                    )
            if first_error is not None:
                raise first_error
            return results
