"""CSV export of every figure/experiment series.

``python -m repro export --out results/`` writes one CSV per paper
artifact so the series can be plotted or diffed outside Python.  Each
function returns the rows it wrote (header first) for testing.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List

from repro import obs


def _write(path: str, rows: List[List]) -> List[List]:
    with open(path, "w", newline="") as handle:
        csv.writer(handle).writerows(rows)
    return rows


def export_fig1(out_dir: str) -> List[List]:
    from repro.study import build_corpus, opensource_stats

    stats = opensource_stats(build_corpus())
    rows: List[List] = [["venue", "year", "open_source", "total", "fraction"]]
    for venue, year, opened, total, fraction in stats.rows():
        rows.append([venue, year, opened, total, round(fraction, 4)])
    return _write(os.path.join(out_dir, "fig1_opensource.csv"), rows)


def export_fig2(out_dir: str) -> List[List]:
    from repro.study import build_corpus, comparison_stats

    stats = comparison_stats(build_corpus())
    rows: List[List] = [["metric", "value"]]
    rows.append(["frac_compared_ge2", round(stats.frac_compared_ge2, 4)])
    rows.append(["mean_manual_given_any", round(stats.mean_manual_given_any, 4)])
    rows.append(["frac_manual_ge1", round(stats.frac_manual_ge1, 4)])
    rows.append(["frac_manual_ge2", round(stats.frac_manual_ge2, 4)])
    for count in sorted(stats.manual_histogram):
        rows.append([f"manual_histogram_{count}", stats.manual_histogram[count]])
    return _write(os.path.join(out_dir, "fig2_comparisons.csv"), rows)


def export_fig4_fig5(out_dir: str) -> Dict[str, List[List]]:
    from repro.experiments import figure4_rows, figure5_rows, run_experiment

    result = run_experiment()
    fig4: List[List] = [["participant", "system", "prompts", "words"]]
    for row in figure4_rows(result):
        fig4.append(list(row))
    fig5: List[List] = [
        ["participant", "system", "reproduced_loc", "reference_loc", "ratio"]
    ]
    for participant, system, reproduced, reference, ratio in figure5_rows(result):
        fig5.append([participant, system, reproduced, reference, round(ratio, 4)])
    _write(os.path.join(out_dir, "fig4_prompts.csv"), fig4)
    _write(os.path.join(out_dir, "fig5_loc.csv"), fig5)
    return {"fig4": fig4, "fig5": fig5}


def export_exp_a(out_dir: str) -> List[List]:
    from repro.core.knowledge import get_knowledge, get_paper_spec
    from repro.core.assembly import assemble_module
    from repro.core.llm import CodeArtifact
    from repro.netmodel.instances import ncflow_instances
    from repro.te import registry

    knowledge = get_knowledge("ncflow")
    artifacts = [
        CodeArtifact(c.name, "python", knowledge.components[c.name].final_source, 9)
        for c in get_paper_spec("ncflow").components
    ]
    module = assemble_module(artifacts, "export_ncflow")
    rows: List[List] = [
        ["instance", "reference_objective", "reproduced_objective",
         "reference_seconds", "reproduced_seconds"]
    ]
    for instance in ncflow_instances(max_commodities=300, total_demand_fraction=0.1):
        with obs.span("export.reference", instance=instance.name) as ref_sp:
            reference = registry.solve(
                "ncflow", instance.topology, instance.traffic
            )
        reference_seconds = ref_sp.duration
        with obs.span("export.reproduced", instance=instance.name) as rep_sp:
            reproduced = module.solve_ncflow(instance.topology, instance.traffic)
        reproduced_seconds = rep_sp.duration
        rows.append(
            [
                instance.name,
                round(reference.objective, 2),
                round(reproduced, 2),
                round(reference_seconds, 4),
                round(reproduced_seconds, 4),
            ]
        )
    return _write(os.path.join(out_dir, "expA_ncflow.csv"), rows)


def export_exp_b(out_dir: str) -> List[List]:
    from repro.netmodel.instances import arrow_instances
    from repro.te import registry
    from repro.te.arrow import single_fiber_scenarios

    rows: List[List] = [["instance", "none", "paper", "ticket", "code"]]
    for instance in arrow_instances(max_commodities=120):
        scenarios = single_fiber_scenarios(instance.topology, limit=12)
        record = [instance.name]
        for variant in ("none", "paper", "ticket", "code"):
            solution = registry.solve(
                f"arrow-{variant}", instance.topology, instance.traffic,
                scenarios=scenarios,
            )
            record.append(round(solution.objective, 2))
        rows.append(record)
    return _write(os.path.join(out_dir, "expB_arrow.csv"), rows)


def export_exp_cd(out_dir: str) -> List[List]:
    from repro.ap import APVerifier
    from repro.apkeep import APKeepVerifier
    from repro.netmodel.datasets import build_verification_dataset

    rows: List[List] = [
        ["dataset", "rules", "ap_atoms", "apkeep_atoms",
         "ap_seconds", "apkeep_seconds"]
    ]
    for name in ("Internet2", "Stanford", "Purdue", "Airtel"):
        dataset = build_verification_dataset(name)
        ap = APVerifier(dataset)
        apkeep = APKeepVerifier(dataset)
        rows.append(
            [
                name,
                dataset.total_rules,
                ap.num_atoms,
                apkeep.num_atoms_minimal,
                round(ap.predicate_seconds, 5),
                round(apkeep.build_seconds, 5),
            ]
        )
    return _write(os.path.join(out_dir, "expCD_verifiers.csv"), rows)


def export_run_metrics(out_dir: str) -> List[List]:
    """Per-run pipeline telemetry (``ReproductionReport.metrics``) as CSV."""
    from repro.experiments import run_experiment

    result = run_experiment()
    rows: List[List] = [["participant", "system", "metric", "value"]]
    for participant in sorted(result.reports):
        report = result.reports[participant]
        for metric, value in sorted(report.metrics.items()):
            rows.append(
                [participant, report.paper_key, metric, round(value, 6)]
            )
    return _write(os.path.join(out_dir, "run_metrics.csv"), rows)


def export_all(out_dir: str) -> List[str]:
    """Write every CSV; returns the file names written."""
    os.makedirs(out_dir, exist_ok=True)
    with obs.span("export.all", out_dir=out_dir):
        export_fig1(out_dir)
        export_fig2(out_dir)
        export_fig4_fig5(out_dir)
        export_exp_a(out_dir)
        export_exp_b(out_dir)
        export_exp_cd(out_dir)
        export_run_metrics(out_dir)
    return sorted(os.listdir(out_dir))
