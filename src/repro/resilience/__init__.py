"""``repro.resilience`` -- fault injection and fault tolerance.

The dependency-free chaos layer (ISSUE 3): reproduce the paper's core
operational lesson -- an LLM-assisted workflow only works if it survives
flaky components -- as infrastructure every layer shares:

* :mod:`repro.resilience.faults` -- seed-driven :class:`FaultPlan` /
  :class:`FaultInjector` with named injection points (``llm.chat``,
  ``lp.solve``, ``parallel.task``, ``tunnel_cache.get``); same seed,
  same faults.
* :mod:`repro.resilience.retry` -- :class:`RetryPolicy` (bounded
  attempts, exponential backoff with seeded jitter, deadline),
  :class:`CircuitBreaker`, and :class:`ResilientLLMClient`, the
  retrying wrapper over any :class:`~repro.core.llm.LLMClient`.
* :mod:`repro.resilience.fallback` -- :class:`FallbackLPBackend`, an LP
  backend chain that degrades from the fast personality to the slow one
  without masking genuine infeasibility.

``RESILIENCE_ERRORS`` is the exception tuple fail-soft layers (the
pipeline, campaigns) catch to degrade instead of crash.
"""

from repro.resilience.errors import RESILIENCE_ERRORS
from repro.resilience.faults import (
    FaultError,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultRecord,
    InjectedTimeout,
    TransientFault,
    active,
    chaos,
    install,
    uninstall,
)
from repro.resilience.retry import (
    CircuitBreaker,
    CircuitOpenError,
    ResilientLLMClient,
    RetryExhaustedError,
    RetryPolicy,
    corrupt_response,
    default_retryable,
    truncate_response,
)
from repro.resilience.fallback import FallbackLPBackend

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "FallbackLPBackend",
    "FaultError",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRecord",
    "InjectedTimeout",
    "RESILIENCE_ERRORS",
    "ResilientLLMClient",
    "RetryExhaustedError",
    "RetryPolicy",
    "TransientFault",
    "active",
    "chaos",
    "corrupt_response",
    "default_retryable",
    "install",
    "truncate_response",
    "uninstall",
]
