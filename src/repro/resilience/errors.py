"""Fault kinds and the resilience exception hierarchy.

A leaf module with no ``repro.core`` dependency, so fail-soft layers
(the pipeline, campaigns) can import :data:`RESILIENCE_ERRORS` without
pulling in :mod:`repro.resilience.retry` -- which imports the LLM types
and would otherwise close an import cycle through ``repro.core``.
"""

from __future__ import annotations

import enum


class FaultKind(enum.Enum):
    """What an injected fault does at its site."""

    TRANSIENT = "transient"  # raise a retryable TransientFault
    TIMEOUT = "timeout"      # raise a retryable InjectedTimeout
    TRUNCATE = "truncate"    # cut an LLM response short (no artifacts)
    CORRUPT = "corrupt"      # garble a generated code artifact


class FaultError(RuntimeError):
    """Base class of every injected failure."""

    def __init__(self, site: str, key: str, kind: FaultKind):
        self.site = site
        self.key = key
        self.kind = kind
        super().__init__(
            f"injected {kind.value} fault at {site} (key {key!r})"
        )


class TransientFault(FaultError):
    """An injected failure that a retry is expected to clear."""

    def __init__(self, site: str, key: str):
        super().__init__(site, key, FaultKind.TRANSIENT)


class InjectedTimeout(TransientFault):
    """An injected timeout; transient, so also retryable."""

    def __init__(self, site: str, key: str):
        FaultError.__init__(self, site, key, FaultKind.TIMEOUT)


class RetryExhaustedError(RuntimeError):
    """Every attempt failed; ``__cause__`` is the last failure."""

    def __init__(self, site: str, attempts: int, last: BaseException):
        self.site = site
        self.attempts = attempts
        self.last = last
        super().__init__(
            f"{site}: gave up after {attempts} attempt(s); "
            f"last failure: {type(last).__name__}: {last}"
        )


class CircuitOpenError(RuntimeError):
    """The circuit breaker is open; the call was not attempted."""


#: What a fail-soft caller catches: anything the resilience layer can
#: throw once retries and fallbacks are exhausted.
RESILIENCE_ERRORS = (FaultError, RetryExhaustedError, CircuitOpenError)
