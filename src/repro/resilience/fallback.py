"""LP backend fallback chains: try the fast path, degrade gracefully.

:class:`FallbackLPBackend` wraps a primary backend plus any number of
fallbacks.  A solve walks the chain until a backend returns a usable
result: exceptions (including injected ``lp.solve`` faults) and
*recoverable* statuses (:data:`~repro.lp.model.RECOVERABLE_STATUSES`:
``ERROR``, ``ITERATION_LIMIT``) fall through to the next backend, while
``OPTIMAL``, ``INFEASIBLE``, and ``UNBOUNDED`` return immediately --
infeasibility is a property of the model, and retrying it on a slower
solver would only mask a genuine modelling bug.

The chain is itself an :class:`~repro.lp.backends.LPBackend`, so it
injects anywhere a backend does: ``Model.solve(backend=...)``,
``repro.te.registry.make_solver(name, backend="fallback")``, or the CLI
``--lp-backend fallback``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro import obs
from repro.lp.backends import FastLPBackend, LPBackend, SlowLPBackend
from repro.lp.model import (
    Model,
    RECOVERABLE_STATUSES,
    SolveResult,
)
from repro.lp.session import SolveSession


class _FallbackSession(SolveSession):
    """Warm session over a fallback chain's primary backend.

    Solves go through the primary backend's own (possibly warm)
    session; anything the chain would have rescued -- an exception or a
    *recoverable* status -- retries as a full cold solve of the whole
    chain, so session mode keeps exactly the fallback semantics
    (INFEASIBLE/UNBOUNDED still return immediately, never masked).
    """

    def __init__(self, chain_backend: "FallbackLPBackend"):
        super().__init__(chain_backend)
        primary = chain_backend.chain[0]
        session_of = getattr(primary, "session", None)
        self._primary = (
            session_of() if callable(session_of) else SolveSession(primary)
        )

    def solve(
        self, model: Model, warm_start: Optional[SolveResult] = None
    ) -> SolveResult:
        """Warm-solve on the primary; degrade to the cold chain."""
        try:
            result = self._primary.solve(model, warm_start=warm_start)
        except Exception:
            obs.metrics.counter("lp.fallback.errors").inc()
            result = None
        if result is None or result.status in RECOVERABLE_STATUSES:
            result = self.backend.solve(model)
            self.stats.fallbacks += 1
        else:
            self.stats.warm_solves += 1
        self.last = result if result.ok else self.last
        return result


class FallbackLPBackend(LPBackend):
    """Solve with ``primary``; fall through the ``fallbacks`` on failure.

    With no arguments the chain is the two stock personalities,
    ``FastLPBackend() -> SlowLPBackend()`` -- the "Gurobi died, shell
    out to CBC" story.  Metrics: ``lp.fallback.used`` counts solves
    rescued by a non-primary backend, ``lp.fallback.errors`` counts
    backend attempts that raised, ``lp.fallback.exhausted`` counts
    solves no backend could complete.
    """

    name = "fallback"

    def __init__(self, primary: Optional[LPBackend] = None, *fallbacks: LPBackend):
        if primary is None:
            if fallbacks:
                raise ValueError("fallbacks given without a primary backend")
            chain: Sequence[LPBackend] = (FastLPBackend(), SlowLPBackend())
        else:
            chain = (primary, *fallbacks)
        self.chain: List[LPBackend] = list(chain)
        self.name = "fallback(" + ">".join(b.name for b in self.chain) + ")"
        # The chain warm-starts whenever its primary can: session solves
        # run on the primary's warm session and degrade to the cold
        # chain on anything the chain would have rescued.
        # getattr: duck-typed primaries (tests, stubs) need not carry
        # the LPBackend class attributes.
        self.supports_warm_start = bool(
            getattr(self.chain[0], "supports_warm_start", False)
        )

    def session(self) -> _FallbackSession:
        """A session that warms on the primary, degrades to the chain."""
        return _FallbackSession(self)

    def solve(self, model: Model) -> SolveResult:
        """Walk the chain until a backend returns a usable result.

        Exceptions and *recoverable* statuses fall through to the next
        backend; OPTIMAL/INFEASIBLE/UNBOUNDED return immediately (an
        infeasible model is a model property, never masked).  Raises
        the last error when every backend is exhausted.
        """
        last_exc: Optional[BaseException] = None
        last_result: Optional[SolveResult] = None
        with obs.span(
            "lp.fallback", model=model.name, chain=len(self.chain)
        ) as sp:
            for position, backend in enumerate(self.chain):
                try:
                    result = backend.solve(model)
                except Exception as exc:
                    last_exc = exc
                    obs.metrics.counter("lp.fallback.errors").inc()
                    continue
                if result.status in RECOVERABLE_STATUSES:
                    last_result = result
                    continue
                if position > 0:
                    obs.metrics.counter("lp.fallback.used").inc()
                    obs.metrics.counter(
                        f"lp.fallback.used.{backend.name}"
                    ).inc()
                    sp.set(rescued_by=backend.name)
                return result
            sp.set(exhausted=True)
        obs.metrics.counter("lp.fallback.exhausted").inc()
        if last_result is not None:
            # Every backend agreed the solve is broken (ERROR /
            # ITERATION_LIMIT); hand the last result back so callers see
            # the honest status (require_optimal turns it into a
            # descriptive LPSolveError).
            return last_result
        raise RuntimeError(
            f"all {len(self.chain)} LP backends failed for model "
            f"{model.name!r}"
        ) from last_exc
