"""LP backend fallback chains: try the fast path, degrade gracefully.

:class:`FallbackLPBackend` wraps a primary backend plus any number of
fallbacks.  A solve walks the chain until a backend returns a usable
result: exceptions (including injected ``lp.solve`` faults) and
*recoverable* statuses (:data:`~repro.lp.model.RECOVERABLE_STATUSES`:
``ERROR``, ``ITERATION_LIMIT``) fall through to the next backend, while
``OPTIMAL``, ``INFEASIBLE``, and ``UNBOUNDED`` return immediately --
infeasibility is a property of the model, and retrying it on a slower
solver would only mask a genuine modelling bug.

The chain is itself an :class:`~repro.lp.backends.LPBackend`, so it
injects anywhere a backend does: ``Model.solve(backend=...)``,
``repro.te.registry.make_solver(name, backend="fallback")``, or the CLI
``--lp-backend fallback``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro import obs
from repro.lp.backends import FastLPBackend, LPBackend, SlowLPBackend
from repro.lp.model import (
    Model,
    RECOVERABLE_STATUSES,
    SolveResult,
)


class FallbackLPBackend(LPBackend):
    """Solve with ``primary``; fall through the ``fallbacks`` on failure.

    With no arguments the chain is the two stock personalities,
    ``FastLPBackend() -> SlowLPBackend()`` -- the "Gurobi died, shell
    out to CBC" story.  Metrics: ``lp.fallback.used`` counts solves
    rescued by a non-primary backend, ``lp.fallback.errors`` counts
    backend attempts that raised, ``lp.fallback.exhausted`` counts
    solves no backend could complete.
    """

    name = "fallback"

    def __init__(self, primary: Optional[LPBackend] = None, *fallbacks: LPBackend):
        if primary is None:
            if fallbacks:
                raise ValueError("fallbacks given without a primary backend")
            chain: Sequence[LPBackend] = (FastLPBackend(), SlowLPBackend())
        else:
            chain = (primary, *fallbacks)
        self.chain: List[LPBackend] = list(chain)
        self.name = "fallback(" + ">".join(b.name for b in self.chain) + ")"

    def solve(self, model: Model) -> SolveResult:
        """Walk the chain until a backend returns a usable result.

        Exceptions and *recoverable* statuses fall through to the next
        backend; OPTIMAL/INFEASIBLE/UNBOUNDED return immediately (an
        infeasible model is a model property, never masked).  Raises
        the last error when every backend is exhausted.
        """
        last_exc: Optional[BaseException] = None
        last_result: Optional[SolveResult] = None
        with obs.span(
            "lp.fallback", model=model.name, chain=len(self.chain)
        ) as sp:
            for position, backend in enumerate(self.chain):
                try:
                    result = backend.solve(model)
                except Exception as exc:
                    last_exc = exc
                    obs.metrics.counter("lp.fallback.errors").inc()
                    continue
                if result.status in RECOVERABLE_STATUSES:
                    last_result = result
                    continue
                if position > 0:
                    obs.metrics.counter("lp.fallback.used").inc()
                    obs.metrics.counter(
                        f"lp.fallback.used.{backend.name}"
                    ).inc()
                    sp.set(rescued_by=backend.name)
                return result
            sp.set(exhausted=True)
        obs.metrics.counter("lp.fallback.exhausted").inc()
        if last_result is not None:
            # Every backend agreed the solve is broken (ERROR /
            # ITERATION_LIMIT); hand the last result back so callers see
            # the honest status (require_optimal turns it into a
            # descriptive LPSolveError).
            return last_result
        raise RuntimeError(
            f"all {len(self.chain)} LP backends failed for model "
            f"{model.name!r}"
        ) from last_exc
