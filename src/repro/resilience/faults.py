"""Deterministic, seed-driven fault injection.

A :class:`FaultPlan` names a seed, a fault rate, and optionally the
injection *sites* and fault *kinds* it covers; a :class:`FaultInjector`
turns the plan into per-call decisions.  Instrumented code asks the
process-wide injector (:func:`active`) whether to fail at a named site:

* ``llm.chat``         -- the LLM seam (:class:`~repro.resilience.retry.ResilientLLMClient`);
* ``lp.solve``         -- every scipy/HiGHS solve (:meth:`LPBackend._run_linprog`);
* ``lp.session.warm``  -- the reduced-model (warm/decomposed) solve path;
  an injected fault there makes the session fall back to a full cold
  solve, so chaos degrades warm starts without ever corrupting results;
* ``parallel.task``    -- each task of a :func:`repro.parallel.run_ordered` fan-out;
* ``tunnel_cache.get`` -- tunnel-cache lookups feeding model builds.

Decisions are pure functions of ``(seed, site, key)`` hashed with
BLAKE2b -- no wall-clock time, no :mod:`random` state -- so the same
plan replays the same fault schedule run after run.  Sites whose call
order is thread-dependent pass an explicit ``key`` (task index, session
name + prompt number) to keep the schedule independent of scheduling;
``key=None`` falls back to a per-site call counter, which is
deterministic for serial workloads.

With no plan installed :func:`active` returns ``None`` and every
instrumented site skips injection after a single global read -- the
zero-fault hot path stays unchanged.
"""

from __future__ import annotations

import contextlib
import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.resilience.errors import (
    FaultError,
    FaultKind,
    InjectedTimeout,
    TransientFault,
)

__all__ = [
    "FaultError",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRecord",
    "InjectedTimeout",
    "SITE_KINDS",
    "TransientFault",
    "active",
    "chaos",
    "install",
    "uninstall",
]

#: Which fault kinds make sense at each known injection point.  Only
#: the LLM seam produces *responses* that can be truncated or corrupted;
#: everything else fails by raising.
SITE_KINDS: Dict[str, Tuple[FaultKind, ...]] = {
    "llm.chat": (
        FaultKind.TRANSIENT,
        FaultKind.TIMEOUT,
        FaultKind.TRUNCATE,
        FaultKind.CORRUPT,
    ),
    "lp.solve": (FaultKind.TRANSIENT, FaultKind.TIMEOUT),
    "lp.session.warm": (FaultKind.TRANSIENT, FaultKind.TIMEOUT),
    "parallel.task": (FaultKind.TRANSIENT,),
    "tunnel_cache.get": (FaultKind.TRANSIENT,),
}


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible chaos schedule: seed, rate, covered sites/kinds.

    ``sites``/``kinds`` empty means "every known site" / "every kind the
    site supports".  ``rate`` is the per-decision fault probability.
    """

    seed: int = 0
    rate: float = 0.0
    sites: Tuple[str, ...] = ()
    kinds: Tuple[FaultKind, ...] = ()

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        for site in self.sites:
            if site not in SITE_KINDS:
                raise ValueError(
                    f"unknown fault site {site!r} "
                    f"(known: {', '.join(sorted(SITE_KINDS))})"
                )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a CLI spec string.

        Format: comma-separated ``key=value`` pairs, e.g.
        ``"rate=0.2,seed=7,sites=llm.chat+parallel.task,kinds=transient"``.
        ``sites`` and ``kinds`` take ``+``-separated lists.
        """
        seed, rate = 0, 0.0
        sites: Tuple[str, ...] = ()
        kinds: Tuple[FaultKind, ...] = ()
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"cannot parse fault-plan entry {part!r}; expected key=value"
                )
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "seed":
                seed = int(value)
            elif key == "rate":
                rate = float(value)
            elif key == "sites":
                sites = tuple(s for s in value.split("+") if s)
            elif key == "kinds":
                try:
                    kinds = tuple(FaultKind(k) for k in value.split("+") if k)
                except ValueError:
                    raise ValueError(
                        f"unknown fault kind in {value!r} "
                        f"(known: {', '.join(k.value for k in FaultKind)})"
                    ) from None
            else:
                raise ValueError(
                    f"unknown fault-plan key {key!r} "
                    "(known: seed, rate, sites, kinds)"
                )
        return cls(seed=seed, rate=rate, sites=sites, kinds=kinds)

    def describe(self) -> str:
        """The plan as its parseable spec string (``seed=...,rate=...``)."""
        parts = [f"seed={self.seed}", f"rate={self.rate:g}"]
        if self.sites:
            parts.append("sites=" + "+".join(self.sites))
        if self.kinds:
            parts.append("kinds=" + "+".join(k.value for k in self.kinds))
        return ",".join(parts)

    def covers(self, site: str) -> bool:
        """Whether this plan injects at ``site`` (no sites = all sites)."""
        return not self.sites or site in self.sites

    def kinds_at(self, site: str) -> Tuple[FaultKind, ...]:
        """Fault kinds the plan may inject at ``site``: the site's
        supported kinds intersected with the plan's ``kinds`` filter."""
        supported = SITE_KINDS.get(site, ())
        if not self.kinds:
            return supported
        return tuple(k for k in supported if k in self.kinds)


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, for post-run reporting."""

    site: str
    key: str
    kind: FaultKind

    def __str__(self) -> str:
        return f"{self.site}[{self.key}]: {self.kind.value}"


class FaultInjector:
    """Turns a :class:`FaultPlan` into per-call fault decisions.

    Thread-safe: the fault log and the per-site fallback counters are
    lock-protected, and keyed decisions are pure hashes.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._records: List[FaultRecord] = []

    # ------------------------------------------------------------------
    def _auto_key(self, site: str, prefix: str = "") -> str:
        counter_key = f"{site}|{prefix}"
        with self._lock:
            count = self._counters.get(counter_key, 0)
            self._counters[counter_key] = count + 1
        return f"{prefix}#{count}"

    def _hash(self, site: str, key: str) -> Tuple[float, int]:
        digest = hashlib.blake2b(
            f"{self.plan.seed}|{site}|{key}".encode(), digest_size=16
        ).digest()
        roll = int.from_bytes(digest[:8], "big") / 2**64
        pick = int.from_bytes(digest[8:], "big")
        return roll, pick

    def decide(
        self, site: str, key: Optional[str] = None, prefix: str = ""
    ) -> Optional[FaultKind]:
        """The fault (if any) to inject for this call, or ``None``.

        ``key`` makes the decision a pure function of the call identity,
        independent of call order.  Without one, a per-``(site, prefix)``
        counter keys the call -- fully deterministic for serial
        workloads; under worker threads the *multiset* of injected
        faults stays seed-stable but their assignment to callers can
        vary with scheduling.
        """
        plan = self.plan
        if plan.rate <= 0.0 or not plan.covers(site):
            return None
        kinds = plan.kinds_at(site)
        if not kinds:
            return None
        if key is None:
            key = self._auto_key(site, prefix)
        roll, pick = self._hash(site, key)
        if roll >= plan.rate:
            return None
        kind = kinds[pick % len(kinds)]
        with self._lock:
            self._records.append(FaultRecord(site, key, kind))
        obs.metrics.counter("faults.injected").inc()
        obs.metrics.counter(f"faults.injected.{site}").inc()
        return kind

    def maybe_fail(
        self, site: str, key: Optional[str] = None, prefix: str = ""
    ) -> Optional[FaultKind]:
        """Decide and *raise* raising kinds; return response-level kinds.

        :class:`TransientFault`/:class:`InjectedTimeout` are raised in
        place; ``TRUNCATE``/``CORRUPT`` (which need the site's response
        object to apply) are returned to the caller.
        """
        kind = self.decide(site, key, prefix)
        if kind is FaultKind.TRANSIENT:
            raise TransientFault(site, key or "?")
        if kind is FaultKind.TIMEOUT:
            raise InjectedTimeout(site, key or "?")
        return kind

    def records(self) -> List[FaultRecord]:
        """Every injected fault so far, in injection order (a copy)."""
        with self._lock:
            return list(self._records)

    def summary(self) -> str:
        """Deterministic per-site/kind counts of every injected fault."""
        counts: Dict[Tuple[str, str], int] = {}
        for record in self.records():
            bucket = (record.site, record.kind.value)
            counts[bucket] = counts.get(bucket, 0) + 1
        lines = [f"fault plan {self.plan.describe()}: {sum(counts.values())} injected"]
        for (site, kind), count in sorted(counts.items()):
            lines.append(f"  {site} {kind}: {count}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Process-wide installation (mirrors obs.set_tracer)
# ----------------------------------------------------------------------
_active: Optional[FaultInjector] = None
_swap_lock = threading.Lock()


def active() -> Optional[FaultInjector]:
    """The installed injector, or ``None`` when chaos is off."""
    return _active


def install(plan: FaultPlan) -> FaultInjector:
    """Install a fresh injector for ``plan``; returns it."""
    global _active
    injector = FaultInjector(plan)
    with _swap_lock:
        _active = injector
    return injector


def uninstall() -> Optional[FaultInjector]:
    """Remove the active injector; returns it for post-run inspection."""
    global _active
    with _swap_lock:
        injector = _active
        _active = None
    return injector


@contextlib.contextmanager
def chaos(plan: FaultPlan):
    """Temporarily install ``plan``; yields the injector::

        with faults.chaos(FaultPlan(seed=7, rate=0.2)) as injector:
            run_workload()
        print(injector.summary())
    """
    global _active
    with _swap_lock:
        previous = _active
    injector = install(plan)
    try:
        yield injector
    finally:
        with _swap_lock:
            _active = previous
