"""Retry policies, circuit breaking, and the resilient LLM seam.

:class:`RetryPolicy` is a reusable attempt loop: bounded attempts,
exponential backoff with *seeded* jitter (deterministic per
``(seed, key, attempt)``), an optional wall-clock deadline, and a
retryable-exception predicate.  :class:`CircuitBreaker` trips after N
consecutive failures and recovers after a fixed number of rejected
calls -- counted in calls, not seconds, so chaos runs stay reproducible.

:class:`ResilientLLMClient` wraps any :class:`~repro.core.llm.LLMClient`
with both, plus the ``llm.chat`` fault-injection point: transient chat
failures are retried with backoff, truncated responses degrade into a
re-prompt, and repeated giveups open the breaker.  Everything reports
through :mod:`repro.obs` (``llm.retries`` / ``llm.giveups`` /
``breaker.open`` counters, ``resilience.retry`` spans).
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro import obs
from repro.core.llm import ChatSession, CodeArtifact, LLMClient, LLMResponse
from repro.core.prompts import Prompt
from repro.resilience.errors import (
    CircuitOpenError,
    FaultKind,
    InjectedTimeout,
    RetryExhaustedError,
    TransientFault,
)
from repro.resilience.faults import active

T = TypeVar("T")


def default_retryable(exc: BaseException) -> bool:
    """Transient by default: injected faults, timeouts, connection blips."""
    return isinstance(
        exc, (TransientFault, InjectedTimeout, TimeoutError, ConnectionError)
    )


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry a flaky call.

    ``backoff_delay`` is ``base_delay * multiplier**(attempt-1)`` capped
    at ``max_delay``, scaled by a jitter factor drawn deterministically
    from ``(seed, key, attempt)`` in ``[1-jitter, 1+jitter)``.
    ``deadline`` (seconds, optional) bounds the whole attempt loop.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.5
    deadline: Optional[float] = None
    seed: int = 0
    retryable: Callable[[BaseException], bool] = default_retryable

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_delay(self, attempt: int, key: str = "") -> float:
        """Seconds to wait after failed attempt number ``attempt`` (1-based)."""
        delay = min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )
        if self.jitter <= 0.0 or delay <= 0.0:
            return delay
        digest = hashlib.blake2b(
            f"{self.seed}|{key}|{attempt}".encode(), digest_size=8
        ).digest()
        unit = int.from_bytes(digest, "big") / 2**64
        return delay * (1.0 - self.jitter + 2.0 * self.jitter * unit)

    def call(
        self,
        fn: Callable[[], T],
        site: str = "retry",
        key: str = "",
        sleep: Callable[[float], None] = time.sleep,
    ) -> T:
        """Run ``fn`` under this policy; raises :class:`RetryExhaustedError`
        (from the last failure) when the budget runs out, or the failure
        itself when it is not retryable."""
        started = time.monotonic() if self.deadline is not None else 0.0
        last: Optional[BaseException] = None
        with obs.span("resilience.retry", site=site) as sp:
            for attempt in range(1, self.max_attempts + 1):
                try:
                    result = fn()
                    sp.set(attempts=attempt)
                    return result
                except Exception as exc:
                    last = exc
                    if not self.retryable(exc):
                        sp.set(attempts=attempt, gave_up="non-retryable")
                        raise
                    out_of_time = (
                        self.deadline is not None
                        and time.monotonic() - started >= self.deadline
                    )
                    if attempt >= self.max_attempts or out_of_time:
                        break
                    obs.metrics.counter("retries", site=site).inc()
                    sleep(self.backoff_delay(attempt, key))
            sp.set(attempts=self.max_attempts, gave_up=type(last).__name__)
        raise RetryExhaustedError(site, self.max_attempts, last) from last


class CircuitBreaker:
    """Open after N consecutive failures; recover after K rejected calls.

    The cooldown is counted in *rejected calls* rather than wall time so
    breaker behaviour is a pure function of the call sequence -- the
    property the chaos determinism tests rely on.  After ``cooldown``
    rejections the next call runs as a half-open probe: success closes
    the breaker, failure re-opens it.
    """

    def __init__(self, failure_threshold: int = 5, cooldown: int = 3):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._open = False
        self._rejected_since_open = 0

    @property
    def is_open(self) -> bool:
        with self._lock:
            return self._open

    def allow(self) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        with self._lock:
            if not self._open:
                return
            if self._rejected_since_open >= self.cooldown:
                # Half-open: let one probe through.
                self._rejected_since_open = 0
                return
            self._rejected_since_open += 1
        raise CircuitOpenError(
            f"circuit breaker open after {self.failure_threshold} "
            "consecutive failures"
        )

    def record_success(self) -> None:
        """Reset the failure streak and close the breaker."""
        with self._lock:
            self._consecutive_failures = 0
            self._open = False
            self._rejected_since_open = 0

    def record_failure(self) -> None:
        """Count one failure; trips the breaker at the threshold."""
        with self._lock:
            self._consecutive_failures += 1
            tripped = (
                not self._open
                and self._consecutive_failures >= self.failure_threshold
            )
            if tripped:
                self._open = True
                self._rejected_since_open = 0
        if tripped:
            obs.metrics.counter("breaker.open").inc()


# ----------------------------------------------------------------------
# Response degradation (the fault kinds that need the response object)
# ----------------------------------------------------------------------
def truncate_response(response: LLMResponse) -> LLMResponse:
    """An interrupted reply: half the prose, no artifacts, flagged."""
    text = response.text[: max(1, len(response.text) // 2)]
    return LLMResponse(text=text, artifacts=[], truncated=True)


def corrupt_response(response: LLMResponse) -> LLMResponse:
    """Garble every artifact the way a mangled code block would arrive."""
    corrupted = [
        CodeArtifact(
            component=artifact.component,
            language=artifact.language,
            source=artifact.source[: len(artifact.source) // 2]
            + "\n<<corrupted by fault injection>>\n",
            revision=artifact.revision,
        )
        for artifact in response.artifacts
    ]
    return LLMResponse(text=response.text, artifacts=corrupted)


class ResilientLLMClient(LLMClient):
    """Retry/backoff/circuit-breaker wrapper over any :class:`LLMClient`.

    With no fault plan installed and a healthy inner client this is a
    pass-through: one inner call, identical response, no sleeps -- the
    zero-fault path adds only the breaker check and one injector read.
    """

    def __init__(
        self,
        inner: LLMClient,
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self._sleep = sleep
        self.name = f"resilient({inner.name})"

    def chat(self, session: ChatSession, prompt: Prompt) -> LLMResponse:
        """Chat with retries: transient failures back off and re-try,
        truncated replies become a re-prompt while attempts remain, and
        an exhausted budget raises ``RetryExhaustedError`` toward the
        circuit breaker.
        """
        self.breaker.allow()
        injector = active()
        policy = self.policy
        last: Optional[BaseException] = None
        with obs.span(
            "resilience.retry", site="llm.chat", session=session.name
        ) as sp:
            for attempt in range(1, policy.max_attempts + 1):
                key = f"{session.name}|p{session.num_prompts}|a{attempt}"
                try:
                    kind = (
                        injector.maybe_fail("llm.chat", key)
                        if injector is not None
                        else None
                    )
                    response = self.inner.chat(session, prompt)
                except Exception as exc:
                    last = exc
                    if not policy.retryable(exc):
                        sp.set(attempts=attempt, gave_up="non-retryable")
                        self.breaker.record_failure()
                        raise
                    if attempt >= policy.max_attempts:
                        break
                    obs.metrics.counter("llm.retries", reason="transient").inc()
                    self._sleep(policy.backoff_delay(attempt, key))
                    continue
                if kind is FaultKind.TRUNCATE:
                    response = truncate_response(response)
                    if attempt < policy.max_attempts:
                        # Degrade the truncation into a re-prompt.
                        obs.metrics.counter("llm.retries", reason="truncated").inc()
                        self._sleep(policy.backoff_delay(attempt, key))
                        continue
                    # Out of budget: hand back the truncated reply; the
                    # pipeline records the component as failed.
                elif kind is FaultKind.CORRUPT:
                    response = corrupt_response(response)
                sp.set(attempts=attempt)
                self.breaker.record_success()
                return response
            sp.set(attempts=policy.max_attempts, gave_up=type(last).__name__)
        obs.metrics.counter("llm.giveups").inc()
        self.breaker.record_failure()
        raise RetryExhaustedError("llm.chat", policy.max_attempts, last) from last
