"""The service tier: a long-lived reproduction daemon (``repro serve``).

The package turns the one-shot CLI flows into a persistent service --
the ROADMAP's "millions of users" direction.  Five modules, one per
concern:

* :mod:`repro.serve.jobs`    -- job specs/records and the per-kind
  execution dispatch (campaign, solve, verify, probe), memoized
  through the artifact store;
* :mod:`repro.serve.pool`    -- the multi-process spawn worker pool
  with crash/budget supervision, its in-process twin, the ordered
  :func:`run_jobs` batch helper, and the process-wide
  :func:`shared_pool`;
* :mod:`repro.serve.daemon`  -- the HTTP daemon: admission-controlled
  queue, scheduler, live ``serve.*`` metrics;
* :mod:`repro.serve.client`  -- the stdlib HTTP client;
* :mod:`repro.serve.loadgen` -- the ``repro loadgen`` workload.

Quick use::

    from repro.serve import ReproDaemon, ServeClient

    with ReproDaemon(mode="inprocess", workers=2) as daemon:
        client = ServeClient(daemon.url)
        job = client.submit("solve", {"instance": "B4", "solver": "pf4"})
        print(client.wait(job["id"])["state"])

See ``docs/SERVICE.md`` for the full tier documentation.
"""

from repro.serve.client import (
    DEFAULT_HTTP_TIMEOUT,
    JobTimeoutError,
    ServeAPIError,
    ServeClient,
)
from repro.serve.daemon import (
    DEFAULT_PORT,
    DEFAULT_QUEUE_LIMIT,
    QueueFullError,
    ReproDaemon,
)
from repro.serve.jobs import (
    CAMPAIGN_PAPERS,
    CAMPAIGN_STYLES,
    JOB_KINDS,
    JOB_STATES,
    JobRecord,
    JobSpec,
    PROBE_ACTIONS,
    execute_job,
    execute_job_stored,
    job_key,
)
from repro.serve.loadgen import (
    DEFAULT_CONCURRENCY,
    DEFAULT_JOBS,
    LoadgenReport,
    loadgen_spec,
    run_loadgen,
)
from repro.serve.pool import (
    DEFAULT_WORKERS,
    InProcessPool,
    JobOutcome,
    WorkerPool,
    make_pool,
    run_jobs,
    shared_pool,
)

__all__ = [
    "CAMPAIGN_PAPERS",
    "CAMPAIGN_STYLES",
    "DEFAULT_CONCURRENCY",
    "DEFAULT_HTTP_TIMEOUT",
    "DEFAULT_JOBS",
    "DEFAULT_PORT",
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_WORKERS",
    "InProcessPool",
    "JOB_KINDS",
    "JOB_STATES",
    "JobOutcome",
    "JobRecord",
    "JobSpec",
    "JobTimeoutError",
    "LoadgenReport",
    "PROBE_ACTIONS",
    "QueueFullError",
    "ReproDaemon",
    "ServeAPIError",
    "ServeClient",
    "WorkerPool",
    "execute_job",
    "execute_job_stored",
    "job_key",
    "loadgen_spec",
    "make_pool",
    "run_jobs",
    "run_loadgen",
    "shared_pool",
]
