"""A small stdlib HTTP client for the reproduction service.

:class:`ServeClient` speaks the daemon's JSON API over
``urllib.request`` -- no dependencies, mirroring the stdlib-only HTTP
server on the other side.  Non-2xx responses raise
:class:`ServeAPIError` carrying the decoded JSON error payload, so a
429 queue-full rejection arrives as the same structured document the
daemon built (``{"error": "queue-full", "queue_depth": ..., ...}``)
rather than as an opaque exception string.

Typical flow (the ``docs/SERVICE.md`` examples run exactly this)::

    client = ServeClient("http://127.0.0.1:8642")
    job = client.submit("campaign", {"papers": ["rps"]})
    done = client.wait(job["id"])
    payload = client.result(job["id"])["payload"]
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

#: Default per-request HTTP timeout in seconds.
DEFAULT_HTTP_TIMEOUT = 10.0


class ServeAPIError(RuntimeError):
    """A non-2xx response from the daemon, with its JSON payload.

    ``status`` is the HTTP status code; ``payload`` is the decoded
    error document (``{}`` when the body was not JSON).
    """

    def __init__(self, status: int, payload: Dict):
        self.status = status
        self.payload = payload
        detail = payload.get("message") or payload.get("error") or ""
        super().__init__(f"serve API error {status}: {detail}")

    @property
    def queue_full(self) -> bool:
        """True for an admission-control rejection (HTTP 429)."""
        return self.status == 429


class JobTimeoutError(TimeoutError):
    """:meth:`ServeClient.wait` gave up before the job finished."""

    def __init__(self, job_id: int, timeout: float, state: str):
        self.job_id = job_id
        self.state = state
        super().__init__(
            f"job {job_id} still {state!r} after {timeout:g}s"
        )


class ServeClient:
    """Client for one daemon base URL (``http://host:port``)."""

    def __init__(self, url: str, timeout: float = DEFAULT_HTTP_TIMEOUT):
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Dict:
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.url + path, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode())
            except (ValueError, OSError):
                payload = {}
            raise ServeAPIError(exc.code, payload) from None

    def submit(self, kind: str, params: Optional[Dict] = None,
               seed: int = 0,
               budget_seconds: Optional[float] = None) -> Dict:
        """``POST /jobs``; returns the created job record."""
        return self._request("POST", "/jobs", {
            "kind": kind,
            "params": params or {},
            "seed": seed,
            "budget_seconds": budget_seconds,
        })

    def job(self, job_id: int) -> Dict:
        """``GET /jobs/<id>``."""
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[Dict]:
        """``GET /jobs`` (most recent first)."""
        return self._request("GET", "/jobs")["jobs"]

    def result(self, job_id: int) -> Dict:
        """``GET /jobs/<id>/result``: the completed record with payload."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def wait(self, job_id: int, timeout: float = 60.0,
             poll_seconds: float = 0.05) -> Dict:
        """Poll until the job is terminal; returns its final record.

        Raises :class:`JobTimeoutError` if the job is still queued or
        running after ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("completed", "failed"):
                return record
            if time.monotonic() >= deadline:
                raise JobTimeoutError(job_id, timeout, record["state"])
            time.sleep(poll_seconds)

    def health(self) -> Dict:
        """``GET /health``."""
        return self._request("GET", "/health")

    def stats(self) -> Dict:
        """``GET /stats``."""
        return self._request("GET", "/stats")

    def metrics_text(self) -> str:
        """``GET /metrics`` as raw Prometheus text."""
        with urllib.request.urlopen(self.url + "/metrics",
                                    timeout=self.timeout) as response:
            return response.read().decode()

    def shutdown(self) -> Dict:
        """``POST /shutdown``: ask the daemon to stop cleanly."""
        return self._request("POST", "/shutdown")
