"""The reproduction daemon: HTTP job API, queue, scheduler, metrics.

:class:`ReproDaemon` is the long-lived half of ``repro serve``.  It
owns three cooperating pieces:

* an **HTTP API** on a stdlib :class:`~http.server.ThreadingHTTPServer`
  (the :mod:`repro.obs.http` pattern: bind on the caller's thread so a
  busy port raises synchronously, handlers reach the daemon through a
  back-pointer on the server object);
* an **admission-controlled job queue**: submissions past the queue
  depth limit are rejected with a structured 429 (:class:`QueueFullError`)
  instead of queueing unboundedly, and memoizable jobs whose result is
  already in the artifact store complete at admission time without
  touching a worker (``cached=True``, a ``store.hit``);
* a **scheduler thread** dispatching queued jobs in submission order to
  the worker pool's idle slots and folding
  :class:`~repro.serve.pool.JobOutcome` records back into
  :class:`~repro.serve.jobs.JobRecord` state.

Routes::

    POST /jobs             submit {"kind", "params", "seed", "budget_seconds"}
    GET  /jobs             job listing (most recent first)
    GET  /jobs/<id>        one job record
    GET  /jobs/<id>/result the completed job's payload
    GET  /metrics          Prometheus text (repro.obs registry)
    GET  /stats            daemon stats JSON (states, queue, workers)
    GET  /health           {"status": "ok"} liveness probe
    POST /shutdown         request a clean daemon stop

Telemetry is live throughout: ``serve.jobs{state=...}`` counters count
every lifecycle transition, ``serve.queue_depth`` gauges the waiting
line, and ``serve.job_seconds`` (a reservoir histogram) carries the
p50/p95/p99 job latency the bench layer and ``repro loadgen`` report.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional

from repro import obs
from repro.obs.http import prometheus_text
from repro.serve.jobs import JobRecord, JobSpec
from repro.serve.pool import DEFAULT_WORKERS, make_pool
from repro.store import ArtifactStore

#: Default admission-control queue depth limit.
DEFAULT_QUEUE_LIMIT = 64

#: Default port for ``repro serve`` (0 picks a free port).
DEFAULT_PORT = 8642


class QueueFullError(RuntimeError):
    """Admission control rejected a submission (structured, never a hang).

    Carries the JSON payload the HTTP layer returns with status 429,
    so in-process callers and HTTP clients see the same shape.
    """

    def __init__(self, queue_depth: int, queue_limit: int):
        self.payload = {
            "error": "queue-full",
            "queue_depth": queue_depth,
            "queue_limit": queue_limit,
        }
        super().__init__(
            f"job queue is full ({queue_depth}/{queue_limit}); retry later"
        )


class _ServeHandler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`ReproDaemon` via the server
    object (``self.server.daemon_ref``), the :mod:`repro.obs.http`
    idiom."""

    server_version = "repro-serve/1"

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, doc: object) -> None:
        self._send(status, "application/json", json.dumps(doc))

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        daemon: "ReproDaemon" = self.server.daemon_ref  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._send(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                prometheus_text(obs.metrics.snapshot()),
            )
        elif path == "/health":
            self._send_json(200, {"status": "ok", "mode": daemon.mode,
                                  "workers": daemon.workers})
        elif path == "/stats":
            self._send_json(200, daemon.stats())
        elif path == "/jobs":
            self._send_json(200, {"jobs": daemon.list_jobs()})
        elif path.startswith("/jobs/"):
            parts = [part for part in path.split("/") if part]
            try:
                job_id = int(parts[1])
            except (IndexError, ValueError):
                self._send_json(404, {"error": "not-found"})
                return
            record = daemon.job(job_id)
            if record is None:
                self._send_json(404, {"error": "unknown-job", "id": job_id})
            elif len(parts) == 2:
                self._send_json(200, record.to_dict())
            elif len(parts) == 3 and parts[2] == "result":
                if record.state != "completed":
                    self._send_json(409, {
                        "error": "job-not-completed",
                        "id": job_id,
                        "state": record.state,
                        "failure_kind": record.failure_kind,
                        "message": record.message,
                    })
                else:
                    self._send_json(200, record.to_dict(include_payload=True))
            else:
                self._send_json(404, {"error": "not-found"})
        else:
            self._send_json(404, {"error": "not-found"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        daemon: "ReproDaemon" = self.server.daemon_ref  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/shutdown":
            daemon.request_shutdown()
            self._send_json(200, {"status": "stopping"})
            return
        if path != "/jobs":
            self._send_json(404, {"error": "not-found"})
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            doc = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(doc, dict):
                raise ValueError("request body must be a JSON object")
            spec = JobSpec.from_dict(doc)
            record = daemon.submit_spec(spec)
        except QueueFullError as exc:
            self._send_json(429, exc.payload)
            return
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": "bad-request", "message": str(exc)})
            return
        self._send_json(201, record.to_dict())

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr logging (the metrics tell the story)."""


class ReproDaemon:
    """The long-lived reproduction service: queue, pool, HTTP, metrics.

    ``mode`` selects the execution tier: ``"process"`` (the spawn
    :class:`~repro.serve.pool.WorkerPool`, crash-isolated, the real
    deployment shape) or ``"inprocess"`` (daemon threads, cheap for
    tests and docs).  ``store`` attaches the artifact store used both
    for admission-time memoization in the daemon and for
    content-addressed result writes in the workers.  ``port=0`` binds
    a free port (read :attr:`url` after :meth:`start`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = DEFAULT_WORKERS,
        mode: str = "process",
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        default_budget: Optional[float] = None,
        store: Optional[ArtifactStore] = None,
    ):
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.host = host
        self.workers = workers
        self.mode = mode
        self.queue_limit = queue_limit
        self.default_budget = default_budget
        self.store = store
        self._requested_port = port
        self._pool = make_pool(
            mode, workers=workers,
            store_root=str(store.root) if store is not None else None,
        )
        self._jobs: Dict[int, JobRecord] = {}
        self._queue: List[int] = []
        self._next_id = 1
        self._lock = threading.Lock()
        self._wakeup = threading.Event()
        self._stop = threading.Event()
        self.shutdown_requested = threading.Event()
        self._scheduler: Optional[threading.Thread] = None
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        """Base URL of the running (or configured) service."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproDaemon":
        """Bind HTTP, start the pool and scheduler; returns ``self``.

        Binding happens on the caller's thread so a port-in-use
        ``OSError`` surfaces synchronously, before any worker spawns.
        """
        if self._httpd is not None:
            raise RuntimeError("ReproDaemon is already running")
        httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), _ServeHandler
        )
        httpd.daemon_threads = True
        httpd.daemon_ref = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._started_at = time.time()
        self._pool.start()
        self._stop.clear()
        self._scheduler = threading.Thread(
            target=self._schedule_loop, name="repro-serve-scheduler",
            daemon=True,
        )
        self._scheduler.start()
        self._http_thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-http",
            daemon=True,
        )
        self._http_thread.start()
        obs.metrics.gauge("serve.workers").set(self.workers)
        return self

    def request_shutdown(self) -> None:
        """Mark the daemon for shutdown (``POST /shutdown``); the owner
        of the daemon object observes :attr:`shutdown_requested` and
        calls :meth:`stop` -- the HTTP handler must not tear down the
        server that is serving it."""
        self.shutdown_requested.set()

    def stop(self) -> None:
        """Stop HTTP, the scheduler, and the pool (idempotent)."""
        httpd, http_thread = self._httpd, self._http_thread
        self._httpd = None
        self._http_thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if http_thread is not None:
            http_thread.join(timeout=5.0)
        self._stop.set()
        self._wakeup.set()
        if self._scheduler is not None:
            self._scheduler.join(timeout=5.0)
            self._scheduler = None
        self._pool.shutdown()

    def __enter__(self) -> "ReproDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission and queries
    # ------------------------------------------------------------------
    def submit(self, kind: str, params: Optional[Dict] = None,
               seed: int = 0,
               budget_seconds: Optional[float] = None) -> JobRecord:
        """Convenience wrapper building a :class:`JobSpec` and submitting."""
        return self.submit_spec(JobSpec(
            kind=kind, params=params or {}, seed=seed,
            budget_seconds=budget_seconds,
        ))

    def submit_spec(self, spec: JobSpec) -> JobRecord:
        """Admit ``spec``: validate, memo-check, enqueue (or reject).

        Raises ``ValueError`` on a malformed spec and
        :class:`QueueFullError` when the queue is at its depth limit.
        A store hit completes the job here, at admission, marked
        ``cached`` -- repeat submissions are near-free by design.
        """
        if spec.budget_seconds is None and self.default_budget is not None:
            spec = JobSpec(kind=spec.kind, params=spec.params,
                           seed=spec.seed,
                           budget_seconds=self.default_budget)
        spec.validate()
        cached_payload = None
        key = spec.key()
        if self.store is not None and key is not None:
            cached_payload = self.store.get(key)
        with self._lock:
            if cached_payload is None and len(self._queue) >= self.queue_limit:
                obs.metrics.counter("serve.jobs", state="rejected").inc()
                raise QueueFullError(len(self._queue), self.queue_limit)
            job_id = self._next_id
            self._next_id += 1
            record = JobRecord(job_id=job_id, spec=spec)
            self._jobs[job_id] = record
            obs.metrics.counter("serve.jobs", state="submitted").inc()
            if cached_payload is not None:
                now = time.time()
                record.state = "completed"
                record.cached = True
                record.payload = cached_payload
                record.started_unix = now
                record.finished_unix = now
                obs.metrics.counter("serve.jobs", state="completed").inc()
                obs.metrics.histogram("serve.job_seconds").observe(
                    record.elapsed_seconds
                )
            else:
                record.state = "queued"
                self._queue.append(job_id)
                obs.metrics.gauge("serve.queue_depth").set(len(self._queue))
        if not record.cached:
            self._wakeup.set()
        return record

    def job(self, job_id: int) -> Optional[JobRecord]:
        """The record for ``job_id``, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self, limit: int = 200) -> List[Dict]:
        """Most-recent-first job summaries for ``GET /jobs``."""
        with self._lock:
            records = sorted(self._jobs.values(),
                             key=lambda r: r.job_id, reverse=True)
            return [record.to_dict() for record in records[:limit]]

    def counts_by_state(self) -> Dict[str, int]:
        """``{state: count}`` over every record."""
        with self._lock:
            counts: Dict[str, int] = {}
            for record in self._jobs.values():
                counts[record.state] = counts.get(record.state, 0) + 1
            return counts

    def stats(self) -> Dict:
        """The ``GET /stats`` document."""
        with self._lock:
            queue_depth = len(self._queue)
        return {
            "uptime_seconds": (
                time.time() - self._started_at if self._started_at else 0.0
            ),
            "mode": self.mode,
            "workers": self.workers,
            "worker_restarts": self._pool.restarts,
            "queue_depth": queue_depth,
            "queue_limit": self.queue_limit,
            "jobs": self.counts_by_state(),
            "store": str(self.store.root) if self.store is not None else None,
        }

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _schedule_loop(self) -> None:
        """Dispatch queued jobs in id order; fold outcomes into records."""
        while not self._stop.is_set():
            self._dispatch_ready()
            for outcome in self._pool.poll(timeout=0.05):
                self._apply_outcome(outcome)
            if self._pool.busy_workers == 0:
                with self._lock:
                    idle = not self._queue
                if idle:
                    self._wakeup.wait(timeout=0.2)
                    self._wakeup.clear()

    def _dispatch_ready(self) -> None:
        """Move queued jobs into idle pool slots, oldest job first."""
        while self._pool.idle_workers > 0:
            with self._lock:
                if not self._queue:
                    return
                job_id = self._queue.pop(0)
                record = self._jobs[job_id]
                obs.metrics.gauge("serve.queue_depth").set(len(self._queue))
            try:
                worker = self._pool.submit(job_id, record.spec)
            except RuntimeError:
                # Raced another dispatcher for the last slot: requeue at
                # the front and retry on the next loop pass.
                with self._lock:
                    self._queue.insert(0, job_id)
                    obs.metrics.gauge("serve.queue_depth").set(
                        len(self._queue)
                    )
                return
            with self._lock:
                record.state = "running"
                record.worker = worker
                record.started_unix = time.time()
                obs.metrics.counter("serve.jobs", state="running").inc()

    def _apply_outcome(self, outcome) -> None:
        """Fold one pool outcome into its job record + metrics."""
        with self._lock:
            record = self._jobs.get(outcome.job_id)
            if record is None or record.done:
                return
            record.finished_unix = time.time()
            record.worker = outcome.worker
            if outcome.ok:
                record.state = "completed"
                record.payload = outcome.payload
            else:
                record.state = "failed"
                record.error = outcome.error
                record.message = outcome.message
                record.failure_kind = outcome.failure
            elapsed = record.elapsed_seconds
            state = record.state
        obs.metrics.counter("serve.jobs", state=state).inc()
        obs.metrics.histogram("serve.job_seconds").observe(elapsed)
