"""The service's job model: specs, records, and the execution dispatch.

A *job* is one unit of reproduction work submitted to the daemon: a
campaign, a TE solve, a data-plane verification, or a ``probe`` (the
test/CI workload that can sleep, spin CPU, raise, or hard-crash on
demand).  The
two halves of the model mirror :mod:`repro.parallel`:

* :class:`JobSpec` is the immutable request -- kind, canonicalised
  parameters, a per-job seed, and an optional wall-clock budget.  Specs
  are plain-JSON both ways (:meth:`JobSpec.to_dict` /
  :meth:`JobSpec.from_dict`) so they cross the process boundary to
  spawn workers and land in HTTP bodies unchanged.
* :class:`JobRecord` is the daemon-side lifecycle: ``queued ->
  running -> completed | failed``, with structured failure fields
  (error type, message, failure kind) in the style of
  :class:`repro.parallel.TaskFailure` -- a crashed worker becomes a
  record, never a dead daemon.

The artifact store is the result tier: :func:`job_key` derives a
content-addressed ``serve/1/<kind>/<fingerprint>`` key from the
canonical spec, and :func:`execute_job_stored` memoizes through it so a
repeat submission is a store hit instead of a recompute.  ``probe``
jobs are deliberately unkeyed -- their side effects (sleeping,
crashing) *are* the workload, so caching them would defeat the tests
and load generators that rely on them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.store import ArtifactStore, fingerprint, memoized

#: Store-key schema version for serve results; bump to retire entries.
SCHEMA_VERSION = 1

#: Job kinds the service executes, in catalogue order.
JOB_KINDS = ("campaign", "solve", "verify", "shard-build", "probe")

#: Job lifecycle states (``rejected`` appears only in metrics: a
#: rejected submission never becomes a record).
JOB_STATES = ("queued", "running", "completed", "failed")

#: Paper keys a campaign job may reference (the campaign CLI's set).
CAMPAIGN_PAPERS = ("ncflow", "arrow", "apkeep", "ap", "rps")

#: Prompting styles a campaign job may reference.
CAMPAIGN_STYLES = ("monolithic", "modular-text", "modular-pseudocode")

#: Probe actions: benign, slow, CPU-bound, raising, and hard-crashing.
PROBE_ACTIONS = ("ok", "sleep", "spin", "error", "crash")


@dataclass(frozen=True)
class JobSpec:
    """One submitted unit of work: kind, parameters, seed, budget.

    ``params`` is kind-specific plain JSON (validated by
    :meth:`validate`); ``seed`` is part of the job's identity so two
    submissions differing only in seed are distinct store entries;
    ``budget_seconds`` bounds wall-clock execution (enforced by the
    worker pool, not by the executing code itself).
    """

    kind: str
    params: Dict = field(default_factory=dict)
    seed: int = 0
    budget_seconds: Optional[float] = None

    def validate(self) -> None:
        """Raise ``ValueError`` on an unknown kind or malformed params."""
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}"
            )
        if not isinstance(self.params, dict):
            raise ValueError(f"params must be a dict, got {type(self.params).__name__}")
        if self.budget_seconds is not None and self.budget_seconds <= 0:
            raise ValueError(f"budget_seconds must be > 0, got {self.budget_seconds}")
        canonical = self.canonical_params()
        if self.kind == "campaign":
            papers = canonical["papers"]
            if not papers:
                raise ValueError("campaign job needs at least one paper")
            unknown = [p for p in papers if p not in CAMPAIGN_PAPERS]
            if unknown:
                raise ValueError(
                    f"unknown campaign papers {unknown}; "
                    f"expected a subset of {CAMPAIGN_PAPERS}"
                )
            bad_styles = [
                s for s in canonical["styles"] if s not in CAMPAIGN_STYLES
            ]
            if bad_styles:
                raise ValueError(
                    f"unknown campaign styles {bad_styles}; "
                    f"expected a subset of {CAMPAIGN_STYLES}"
                )
        elif self.kind == "verify":
            if canonical["shards"] < 1:
                raise ValueError(
                    f"shards must be >= 1, got {canonical['shards']}"
                )
        elif self.kind == "shard-build":
            if not isinstance(canonical["dataset_doc"], dict):
                raise ValueError("shard-build needs a dataset_doc dict")
            if not canonical["members"]:
                raise ValueError("shard-build needs a non-empty members list")
        elif self.kind == "probe":
            if canonical["action"] not in PROBE_ACTIONS:
                raise ValueError(
                    f"unknown probe action {canonical['action']!r}; "
                    f"expected one of {PROBE_ACTIONS}"
                )

    def canonical_params(self) -> Dict:
        """The params dict with defaults filled, in a stable shape.

        Two submissions that mean the same work produce byte-identical
        canonical params, which is what :func:`job_key` fingerprints --
        so ``{"papers": ["rps"]}`` and ``{"papers": ["rps"], "styles":
        ["modular-pseudocode"]}`` share one store entry.
        """
        params = self.params
        if self.kind == "campaign":
            # A bare string means a one-element list, so the CLI's
            # ``--param papers=rps`` works without JSON quoting.
            papers = params.get("papers", [])
            styles = params.get("styles", ["modular-pseudocode"])
            if isinstance(papers, str):
                papers = [papers]
            if isinstance(styles, str):
                styles = [styles]
            return {
                "papers": [str(p) for p in papers],
                "styles": [str(s) for s in styles],
                "max_debug_rounds": int(params.get("max_debug_rounds", 6)),
            }
        if self.kind == "solve":
            return {
                "instance": str(params.get("instance", "B4")),
                "solver": str(params.get("solver", "pf4")),
                "commodities": int(params.get("commodities", 30)),
                "load": float(params.get("load", 0.1)),
            }
        if self.kind == "verify":
            return {
                "dataset": str(params.get("dataset", "Internet2")),
                "shards": int(params.get("shards", 1)),
            }
        if self.kind == "shard-build":
            return {
                "dataset_doc": params.get("dataset_doc", {}),
                "members": [str(m) for m in params.get("members", [])],
                "index": int(params.get("index", 0)),
                "profile": str(params.get("profile", "jdd")),
            }
        # probe
        return {
            "action": str(params.get("action", "ok")),
            "seconds": float(params.get("seconds", 0.0)),
            "iterations": int(params.get("iterations", 50_000)),
        }

    def key(self) -> Optional[str]:
        """Content-addressed store key, or ``None`` for unkeyed kinds."""
        return job_key(self)

    def to_dict(self) -> Dict:
        """Plain-JSON form (HTTP bodies, worker task queues)."""
        return {
            "kind": self.kind,
            "params": dict(self.params),
            "seed": self.seed,
            "budget_seconds": self.budget_seconds,
        }

    @staticmethod
    def from_dict(payload: Dict) -> "JobSpec":
        """Rebuild a spec serialized by :meth:`to_dict`."""
        budget = payload.get("budget_seconds")
        return JobSpec(
            kind=str(payload.get("kind", "")),
            params=dict(payload.get("params") or {}),
            seed=int(payload.get("seed", 0)),
            budget_seconds=float(budget) if budget is not None else None,
        )


def job_key(spec: JobSpec) -> Optional[str]:
    """``serve/1/<kind>/<fingerprint>`` for memoizable kinds.

    ``probe`` jobs return ``None``: their effects are the point, so
    they are executed every time and never stored.  ``shard-build``
    jobs are unkeyed too -- their results live under the
    ``shard/1/artifact/...`` key family, persisted by the parent
    :class:`~repro.shard.verifier.ShardVerifier`, so keying them here
    would double-store every artifact.
    """
    if spec.kind in ("probe", "shard-build"):
        return None
    return (
        f"serve/{SCHEMA_VERSION}/{spec.kind}/"
        f"{fingerprint(spec.kind, sorted(spec.canonical_params().items()), spec.seed)}"
    )


@dataclass
class JobRecord:
    """Daemon-side lifecycle of one submitted job.

    ``failure_kind`` distinguishes how a failed job failed: ``error``
    (the job raised), ``crash`` (the worker process died under it), or
    ``budget`` (it exceeded its wall-clock budget and was killed) --
    the same classification split the fuzz runner uses.  ``cached``
    marks completions served straight from the artifact store at
    admission time, without ever reaching a worker.
    """

    job_id: int
    spec: JobSpec
    state: str = "queued"
    created_unix: float = field(default_factory=time.time)
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    worker: Optional[int] = None
    cached: bool = False
    payload: Optional[Dict] = None
    error: Optional[str] = None
    message: Optional[str] = None
    failure_kind: Optional[str] = None

    @property
    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self.state in ("completed", "failed")

    @property
    def elapsed_seconds(self) -> float:
        """Queue-to-terminal wall time (0 while not yet finished)."""
        if self.finished_unix is None:
            return 0.0
        return max(0.0, self.finished_unix - self.created_unix)

    def to_dict(self, include_payload: bool = False) -> Dict:
        """Plain-JSON form for the HTTP API (payload opt-in: job
        listings stay small, ``/jobs/<id>/result`` ships the data)."""
        doc = {
            "id": self.job_id,
            "kind": self.spec.kind,
            "state": self.state,
            "seed": self.spec.seed,
            "cached": self.cached,
            "worker": self.worker,
            "created_unix": self.created_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "elapsed_seconds": self.elapsed_seconds,
            "store_key": self.spec.key(),
            "error": self.error,
            "message": self.message,
            "failure_kind": self.failure_kind,
            "spec": self.spec.to_dict(),
        }
        if include_payload:
            doc["payload"] = self.payload
        return doc


# ----------------------------------------------------------------------
# Execution: one function per kind, dispatched by execute_job.
# ----------------------------------------------------------------------
def _execute_campaign(params: Dict) -> Dict:
    from repro.core.prompts import PromptStyle
    from repro.experiments import run_campaign

    result = run_campaign(
        params["papers"],
        styles=[PromptStyle(style) for style in params["styles"]],
        max_debug_rounds=params["max_debug_rounds"],
        workers=1,
        on_error="collect",
    )
    return {
        "ok": result.num_succeeded == result.num_runs,
        "summary": result.summary(),
        "num_runs": result.num_runs,
        "num_succeeded": result.num_succeeded,
        "num_failed": result.num_failed_runs,
    }


def _execute_solve(params: Dict) -> Dict:
    from repro.netmodel.instances import make_te_instance
    from repro.te import registry

    instance = make_te_instance(
        params["instance"],
        max_commodities=params["commodities"],
        total_demand_fraction=params["load"],
    )
    solution = registry.solve(
        params["solver"], instance.topology, instance.traffic
    )
    return {
        "ok": solution.ok,
        "solver": params["solver"],
        "instance": params["instance"],
        "objective": round(float(solution.objective), 9),
        "status": solution.status,
        "lp_count": solution.lp_count,
        "commodities": instance.num_commodities,
    }


def _execute_verify(params: Dict) -> Dict:
    from repro.ap import APVerifier
    from repro.netmodel.datasets import build_verification_dataset

    dataset = build_verification_dataset(params["dataset"])
    if params["shards"] > 1:
        # Sharded path: serial artifact builds inside this worker (a
        # serve worker is already one of N processes; nesting another
        # spawn fan-out under it would oversubscribe the host).
        from repro.shard import ShardVerifier

        sharded = ShardVerifier(
            dataset, shards=params["shards"], mode="serial"
        )
        return {
            "ok": True,
            "dataset": params["dataset"],
            "devices": dataset.topology.num_nodes,
            "rules": dataset.total_rules,
            "shards": sharded.num_shards,
            "plan": sharded.plan.describe(),
            "atoms_per_shard": [a["atoms"] for a in sharded.artifacts],
            "blackholes": len(sharded.blackholes()),
        }
    verifier = APVerifier(dataset)
    loops = verifier.find_loops()
    blackholes = verifier.find_blackholes(scope=verifier.allocated_atoms())
    return {
        "ok": True,
        "dataset": params["dataset"],
        "devices": dataset.topology.num_nodes,
        "rules": dataset.total_rules,
        "atoms": verifier.num_atoms,
        "loops": len(loops),
        "blackholes": len(blackholes),
    }


def _execute_shard_build(params: Dict) -> Dict:
    from repro.shard.artifacts import build_shard_artifact_from_doc

    return build_shard_artifact_from_doc(
        params["dataset_doc"],
        params["members"],
        params["index"],
        profile=params["profile"],
    )


def _execute_probe(params: Dict, seed: int) -> Dict:
    action = params["action"]
    if action == "sleep":
        time.sleep(params["seconds"])
        return {"ok": True, "action": action, "slept": params["seconds"],
                "seed": seed}
    if action == "spin":
        # GIL-holding CPU work: a blake2b hash chain seeded by the job
        # seed.  The digest makes the result deterministic and the loop
        # impossible to elide, so the serve bench pair measures real
        # parallelism (threads serialize here, spawn workers do not).
        import hashlib

        digest = str(seed).encode()
        for _ in range(params["iterations"]):
            digest = hashlib.blake2b(digest, digest_size=16).digest()
        return {"ok": True, "action": action,
                "iterations": params["iterations"],
                "digest": digest.hex(), "seed": seed}
    if action == "error":
        raise RuntimeError(f"probe error (seed {seed})")
    if action == "crash":
        import os

        os._exit(13)
    return {"ok": True, "action": action, "seed": seed}


def execute_job(spec: JobSpec) -> Dict:
    """Validate and run ``spec``; returns the plain-JSON result payload.

    Every payload carries an ``"ok"`` bool -- the store layer persists
    only ``ok`` payloads (the repo-wide no-cached-failures rule), and
    clients use it without inspecting kind-specific fields.
    """
    spec.validate()
    params = spec.canonical_params()
    if spec.kind == "campaign":
        return _execute_campaign(params)
    if spec.kind == "solve":
        return _execute_solve(params)
    if spec.kind == "verify":
        return _execute_verify(params)
    if spec.kind == "shard-build":
        return _execute_shard_build(params)
    return _execute_probe(params, spec.seed)


def execute_job_stored(
    spec: JobSpec, store: Optional[ArtifactStore] = None
) -> Dict:
    """:func:`execute_job` memoized through the artifact store.

    With no store (or an unkeyed kind) this is a transparent call.
    Only ``ok`` payloads persist, so a failed campaign or an
    infeasible solve is recomputed on resubmission rather than
    replayed from disk.
    """
    key = spec.key()
    if key is None:
        return execute_job(spec)
    return memoized(
        key,
        lambda: execute_job(spec),
        store=store,
        should_store=lambda payload: bool(payload.get("ok")),
    )
