"""``repro loadgen``: hammer a running daemon and report throughput.

The load generator is the service tier's proof-of-life: N deterministic
jobs submitted from C concurrent client threads against a live daemon,
with per-job submit-to-terminal latency recorded client-side.  The
report carries jobs/sec and the p50/p95/p99 latency percentiles -- the
same numbers the ``serve.job_seconds`` histogram tracks daemon-side, so
the two views can be cross-checked in one run.

The default ``mix`` workload cycles solve / verify / probe specs and
*repeats* specs across the cycle on purpose: with a store attached to
the daemon, every repeat is an admission-time store hit (``cached``
completions), which is how a load run demonstrates repeat submissions
are near-free.  Admission-control rejections (HTTP 429) are retried
with a short backoff and counted, never dropped -- a saturated daemon
sheds load visibly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.serve.client import ServeAPIError, ServeClient
from repro.serve.jobs import JobSpec

#: Default number of jobs a load run submits.
DEFAULT_JOBS = 50

#: Default client-side submission concurrency.
DEFAULT_CONCURRENCY = 8

#: Backoff between retries of a 429-rejected submission.
_REJECT_BACKOFF_SECONDS = 0.05


@dataclass
class LoadgenReport:
    """Outcome of one load run: counts, throughput, latency percentiles."""

    jobs: int
    completed: int = 0
    failed: int = 0
    cached: int = 0
    rejections: int = 0
    wall_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)

    @property
    def jobs_per_second(self) -> float:
        """Terminal jobs per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return (self.completed + self.failed) / self.wall_seconds

    def percentile(self, q: float) -> float:
        """Nearest-rank latency percentile (``q`` in [0, 100])."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(0, min(len(ordered) - 1,
                          int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    @property
    def ok(self) -> bool:
        """True when every submitted job completed."""
        return self.completed == self.jobs

    def render(self) -> str:
        """Human-readable report (the ``repro loadgen`` output)."""
        lines = [
            f"loadgen: {self.jobs} jobs in {self.wall_seconds:.2f}s "
            f"({self.jobs_per_second:.1f} jobs/s)",
            f"  completed={self.completed} failed={self.failed} "
            f"cached={self.cached} rejections={self.rejections}",
            f"  latency p50={self.percentile(50) * 1000:.1f}ms "
            f"p95={self.percentile(95) * 1000:.1f}ms "
            f"p99={self.percentile(99) * 1000:.1f}ms",
        ]
        return "\n".join(lines)


def loadgen_spec(kind: str, index: int, seed: int = 0) -> JobSpec:
    """The deterministic spec for job ``index`` of a load run.

    ``kind`` is a concrete job kind or ``"mix"``.  The mix cycles
    cheap solve / verify / probe jobs through a *small* spec alphabet
    (three distinct solves, one verify), so later cycles resubmit
    earlier specs verbatim -- the store-hit workload.
    """
    if kind == "mix":
        slot = index % 5
        if slot in (0, 3):
            return JobSpec("solve", {
                "instance": ("B4", "Internet2", "Uninett2010")[index % 3],
                "solver": "pf4", "commodities": 20, "load": 0.1,
            }, seed=seed)
        if slot == 1:
            return JobSpec("verify", {"dataset": "Internet2"}, seed=seed)
        return JobSpec("probe", {"action": "ok"}, seed=seed + index)
    if kind == "probe":
        return JobSpec("probe", {"action": "ok"}, seed=seed + index)
    if kind == "solve":
        return JobSpec("solve", {
            "instance": ("B4", "Internet2", "Uninett2010")[index % 3],
            "solver": "pf4", "commodities": 20, "load": 0.1,
        }, seed=seed)
    if kind == "verify":
        return JobSpec("verify", {"dataset": "Internet2"}, seed=seed)
    if kind == "campaign":
        return JobSpec("campaign", {
            "papers": [("rps", "apkeep", "ap")[index % 3]],
        }, seed=seed)
    raise ValueError(f"unknown loadgen kind {kind!r}")


def run_loadgen(
    url: str,
    jobs: int = DEFAULT_JOBS,
    concurrency: int = DEFAULT_CONCURRENCY,
    kind: str = "mix",
    seed: int = 0,
    timeout: float = 120.0,
    budget_seconds: Optional[float] = None,
) -> LoadgenReport:
    """Submit ``jobs`` deterministic jobs at ``concurrency`` and report.

    Each worker thread claims the next job index, submits it (retrying
    429 rejections with backoff until ``timeout``), waits for the
    terminal state, and records the submit-to-terminal latency.  The
    run fails loudly -- a job that never terminates surfaces as a
    :class:`~repro.serve.client.JobTimeoutError` from the worker.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    report = LoadgenReport(jobs=jobs)
    counter = {"next": 0}
    lock = threading.Lock()
    errors: List[BaseException] = []

    def worker() -> None:
        client = ServeClient(url)
        while True:
            with lock:
                index = counter["next"]
                if index >= jobs:
                    return
                counter["next"] += 1
            spec = loadgen_spec(kind, index, seed)
            started = time.monotonic()
            deadline = started + timeout
            try:
                while True:
                    try:
                        record = client.submit(
                            spec.kind, spec.params, seed=spec.seed,
                            budget_seconds=budget_seconds,
                        )
                        break
                    except ServeAPIError as exc:
                        if not exc.queue_full or time.monotonic() > deadline:
                            raise
                        with lock:
                            report.rejections += 1
                        time.sleep(_REJECT_BACKOFF_SECONDS)
                final = (
                    record if record["state"] in ("completed", "failed")
                    else client.wait(record["id"], timeout=timeout)
                )
                latency = time.monotonic() - started
                with lock:
                    report.latencies.append(latency)
                    if final["state"] == "completed":
                        report.completed += 1
                        if final.get("cached"):
                            report.cached += 1
                    else:
                        report.failed += 1
            except BaseException as exc:
                with lock:
                    errors.append(exc)
                return

    started = time.monotonic()
    threads = [
        threading.Thread(target=worker, name=f"repro-loadgen-{i}",
                         daemon=True)
        for i in range(max(1, concurrency))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout + 30.0)
    report.wall_seconds = time.monotonic() - started
    if errors:
        raise errors[0]
    return report
