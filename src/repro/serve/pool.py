"""Worker pools: multi-process (spawn) and in-process execution tiers.

:class:`WorkerPool` is the service's real unlock: ``run_ordered``'s
thread fan-out is GIL-bound on pure-Python BDD and LP model building,
so the daemon fans jobs out to ``multiprocessing`` *spawn* workers
instead.  Each worker slot owns a dedicated task queue and result
queue (single-producer/single-consumer both ways, so a killed worker
can never corrupt a sibling's channel), executes jobs through
:func:`repro.serve.jobs.execute_job_stored` against its own handle on
the shared artifact store, and reports structured
:class:`JobOutcome` records -- the
:class:`~repro.parallel.TaskFailure` idiom, one process boundary out.

Supervision lives in :meth:`WorkerPool.poll`: it drains finished
results, detects worker hard-crashes (``process.is_alive()`` false
under a live job -> a ``crash`` outcome, never a dead daemon), kills
and respawns workers whose job exceeded its wall-clock budget
(``budget`` outcomes), and keeps the slot count constant.

:class:`InProcessPool` is the same interface on daemon threads with
the fuzz watchdog's :func:`~repro.fuzz.watchdog.call_with_timeout`
for budgets -- the single-process baseline the "serve" bench layer
compares against, and the cheap mode for tests and docs.  It cannot
survive a hard crash (``os._exit`` takes the whole process); process
isolation is exactly what :class:`WorkerPool` buys.

:func:`run_jobs` is the ordered batch helper mirroring
:func:`repro.parallel.run_ordered`: outcomes return in submission
order regardless of completion order.  :func:`shared_pool` hands out
one process-wide spawn pool per configuration so the fuzz oracle and
the bench layer amortize worker start-up across calls.
"""

from __future__ import annotations

import atexit
import multiprocessing
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.serve.jobs import JobSpec, execute_job_stored

#: Default worker count for pools and the daemon.
DEFAULT_WORKERS = 2

#: Grace period between ``terminate()`` and ``kill()`` on a budget kill.
_KILL_GRACE_SECONDS = 1.0

#: Supervisor sleep quantum while waiting for results.
_POLL_SLEEP = 0.01


@dataclass(frozen=True)
class JobOutcome:
    """Terminal report for one job, in :class:`~repro.parallel.TaskFailure`
    style: either a payload (``ok``) or a structured failure with the
    exception type, message, and failure kind (``error`` | ``crash`` |
    ``budget``)."""

    job_id: int
    ok: bool
    payload: Optional[Dict] = None
    error: Optional[str] = None
    message: Optional[str] = None
    failure: Optional[str] = None
    worker: Optional[int] = None


def _worker_main(slot: int, store_root: Optional[str],
                 task_queue, result_queue) -> None:
    """Spawn-worker loop: execute task-queue jobs until the sentinel.

    Runs in the child process.  Each worker opens its own
    :class:`~repro.store.ArtifactStore` on the shared root, so results
    are written content-addressed from wherever they were computed.
    A ``None`` task is the shutdown sentinel; a job that raises
    becomes a structured failure message; a job that hard-crashes the
    process produces nothing -- the parent's liveness check turns that
    silence into a ``crash`` outcome.
    """
    from repro.store import ArtifactStore

    store = ArtifactStore(store_root) if store_root else None
    while True:
        item = task_queue.get()
        if item is None:
            return
        job_id, spec_doc = item
        try:
            payload = execute_job_stored(JobSpec.from_dict(spec_doc), store)
            result_queue.put(
                {"job_id": job_id, "ok": True, "payload": payload}
            )
        except BaseException as exc:  # structured failure, never a dead worker
            result_queue.put({
                "job_id": job_id,
                "ok": False,
                "error": type(exc).__name__,
                "message": str(exc),
            })


class _Slot:
    """One worker seat: process handle, queues, and the job it holds."""

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.task_queue = None
        self.result_queue = None
        self.job_id: Optional[int] = None
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        """True while a job is assigned and unresolved."""
        return self.job_id is not None


class WorkerPool:
    """A fixed set of spawn workers with crash/budget supervision.

    ``submit`` assigns a job to the lowest-numbered idle slot (the
    deterministic placement rule); ``poll`` drains outcomes and
    performs supervision; ``shutdown`` drains the seats.  All public
    methods are thread-safe: the daemon calls ``submit`` from HTTP
    handler threads while its scheduler thread polls.
    """

    mode = "process"

    def __init__(
        self,
        workers: int = DEFAULT_WORKERS,
        store_root: Optional[str] = None,
        mp_context: str = "spawn",
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.store_root = store_root
        self._ctx = multiprocessing.get_context(mp_context)
        self._slots = [_Slot(index) for index in range(workers)]
        self._lock = threading.Lock()
        self._restarts = 0
        self._started = False

    def start(self) -> "WorkerPool":
        """Spawn every worker; returns ``self`` (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            for slot in self._slots:
                self._spawn(slot)
        return self

    def _spawn(self, slot: _Slot) -> None:
        """(Re)start the process behind ``slot`` with fresh queues."""
        slot.task_queue = self._ctx.SimpleQueue()
        slot.result_queue = self._ctx.SimpleQueue()
        slot.process = self._ctx.Process(
            target=_worker_main,
            args=(slot.index, self.store_root,
                  slot.task_queue, slot.result_queue),
            name=f"repro-serve-worker-{slot.index}",
            daemon=True,
        )
        slot.process.start()

    @property
    def restarts(self) -> int:
        """Workers respawned after a crash or budget kill."""
        with self._lock:
            return self._restarts

    @property
    def idle_workers(self) -> int:
        """Slots currently free to accept a job."""
        with self._lock:
            return sum(1 for slot in self._slots if not slot.busy)

    @property
    def busy_workers(self) -> int:
        """Slots currently executing a job."""
        return self.workers - self.idle_workers

    def submit(self, job_id: int, spec: JobSpec) -> int:
        """Dispatch ``spec`` to the lowest idle slot; returns its index.

        Raises ``RuntimeError`` when every worker is busy -- callers
        (the daemon scheduler, :func:`run_jobs`) hold their own queue
        and dispatch only into free capacity.
        """
        if not self._started:
            self.start()
        with self._lock:
            for slot in self._slots:
                if not slot.busy:
                    slot.job_id = job_id
                    budget = spec.budget_seconds
                    slot.deadline = (
                        time.monotonic() + budget if budget else None
                    )
                    slot.task_queue.put((job_id, spec.to_dict()))
                    return slot.index
        raise RuntimeError("no idle worker (pool is saturated)")

    def poll(self, timeout: float = 0.0) -> List[JobOutcome]:
        """Drain outcomes; supervise crashes and budgets.

        Returns immediately once at least one outcome is available (or
        after ``timeout`` seconds with none).  Budget enforcement and
        crash detection happen here, on the supervisor's clock: a
        worker past its job's deadline is terminated and respawned
        (``budget`` outcome); a dead worker under a live job is
        respawned too (``crash`` outcome).
        """
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            outcomes = self._sweep()
            if outcomes or time.monotonic() >= deadline:
                return outcomes
            time.sleep(_POLL_SLEEP)

    def _sweep(self) -> List[JobOutcome]:
        """One supervision pass over every slot (lock held per slot)."""
        outcomes: List[JobOutcome] = []
        with self._lock:
            for slot in self._slots:
                if not slot.busy:
                    continue
                # 1. Finished normally (result or structured error).
                if not slot.result_queue.empty():
                    doc = slot.result_queue.get()
                    outcomes.append(JobOutcome(
                        job_id=slot.job_id,
                        ok=bool(doc.get("ok")),
                        payload=doc.get("payload"),
                        error=doc.get("error"),
                        message=doc.get("message"),
                        failure=None if doc.get("ok") else "error",
                        worker=slot.index,
                    ))
                    slot.job_id = None
                    slot.deadline = None
                    continue
                # 2. Over budget: kill the worker, respawn the seat.
                if (slot.deadline is not None
                        and time.monotonic() > slot.deadline):
                    outcomes.append(JobOutcome(
                        job_id=slot.job_id,
                        ok=False,
                        error="JobBudgetExceeded",
                        message="job exceeded its wall-clock budget and "
                                "the worker was killed",
                        failure="budget",
                        worker=slot.index,
                    ))
                    self._kill_and_respawn(slot)
                    continue
                # 3. Hard crash: the process died under a live job.
                if not slot.process.is_alive():
                    exitcode = slot.process.exitcode
                    outcomes.append(JobOutcome(
                        job_id=slot.job_id,
                        ok=False,
                        error="WorkerCrashed",
                        message=(
                            f"worker {slot.index} died with exit code "
                            f"{exitcode} while running the job"
                        ),
                        failure="crash",
                        worker=slot.index,
                    ))
                    self._kill_and_respawn(slot)
        return outcomes

    def _kill_and_respawn(self, slot: _Slot) -> None:
        """Terminate ``slot``'s process (if alive) and reseat it."""
        process = slot.process
        if process.is_alive():
            process.terminate()
            process.join(_KILL_GRACE_SECONDS)
            if process.is_alive():
                process.kill()
                process.join(_KILL_GRACE_SECONDS)
        slot.job_id = None
        slot.deadline = None
        self._restarts += 1
        obs.metrics.counter("serve.worker_restarts").inc()
        self._spawn(slot)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Send every worker the sentinel and join; kill stragglers."""
        with self._lock:
            if not self._started:
                return
            self._started = False
            for slot in self._slots:
                if slot.process is None:
                    continue
                if slot.process.is_alive():
                    slot.task_queue.put(None)
            for slot in self._slots:
                if slot.process is None:
                    continue
                slot.process.join(timeout)
                if slot.process.is_alive():
                    slot.process.kill()
                    slot.process.join(_KILL_GRACE_SECONDS)
                slot.process = None
                slot.job_id = None


class InProcessPool:
    """The same pool interface on threads in the daemon's process.

    Budgets use the fuzz watchdog (:func:`call_with_timeout`): an
    over-budget job is *abandoned* on its daemon thread rather than
    killed, the honest in-process trade-off the watchdog documents.  A
    hard crash (``os._exit``) is not survivable here -- that isolation
    is what :class:`WorkerPool` exists for.
    """

    mode = "inprocess"

    def __init__(self, workers: int = DEFAULT_WORKERS,
                 store_root: Optional[str] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._store = None
        if store_root:
            from repro.store import ArtifactStore

            self._store = ArtifactStore(store_root)
        self._lock = threading.Lock()
        self._busy: Dict[int, int] = {}  # slot -> job_id
        self._results: List[JobOutcome] = []
        self.restarts = 0

    def start(self) -> "InProcessPool":
        """No-op (threads start per job); returns ``self``."""
        return self

    @property
    def idle_workers(self) -> int:
        """Slots currently free to accept a job."""
        with self._lock:
            return self.workers - len(self._busy)

    @property
    def busy_workers(self) -> int:
        """Slots currently executing a job."""
        with self._lock:
            return len(self._busy)

    def submit(self, job_id: int, spec: JobSpec) -> int:
        """Run ``spec`` on a fresh daemon thread in a free slot."""
        from repro.fuzz.watchdog import CaseTimeout, call_with_timeout

        with self._lock:
            free = [i for i in range(self.workers) if i not in self._busy]
            if not free:
                raise RuntimeError("no idle worker (pool is saturated)")
            slot = free[0]
            self._busy[slot] = job_id

        def run() -> None:
            try:
                payload = call_with_timeout(
                    lambda: execute_job_stored(spec, self._store),
                    spec.budget_seconds,
                )
                outcome = JobOutcome(job_id=job_id, ok=True,
                                     payload=payload, worker=slot)
            except CaseTimeout:
                outcome = JobOutcome(
                    job_id=job_id, ok=False, error="JobBudgetExceeded",
                    message=(f"job exceeded its {spec.budget_seconds:g}s "
                             "budget and was abandoned"),
                    failure="budget", worker=slot,
                )
            except BaseException as exc:
                outcome = JobOutcome(
                    job_id=job_id, ok=False, error=type(exc).__name__,
                    message=str(exc), failure="error", worker=slot,
                )
            with self._lock:
                self._busy.pop(slot, None)
                self._results.append(outcome)

        threading.Thread(
            target=run, name=f"repro-serve-inproc-{slot}", daemon=True
        ).start()
        return slot

    def poll(self, timeout: float = 0.0) -> List[JobOutcome]:
        """Drain finished outcomes (waits up to ``timeout`` for one)."""
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            with self._lock:
                outcomes, self._results = self._results, []
            if outcomes or time.monotonic() >= deadline:
                return outcomes
            time.sleep(_POLL_SLEEP)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Wait briefly for in-flight jobs; abandons stragglers."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._busy:
                    return
            time.sleep(_POLL_SLEEP)


def make_pool(mode: str, workers: int = DEFAULT_WORKERS,
              store_root: Optional[str] = None):
    """Construct a pool by mode name (``process`` | ``inprocess``)."""
    if mode == "process":
        return WorkerPool(workers=workers, store_root=store_root)
    if mode == "inprocess":
        return InProcessPool(workers=workers, store_root=store_root)
    raise ValueError(
        f"unknown pool mode {mode!r}; expected 'process' or 'inprocess'"
    )


def run_jobs(
    specs: Sequence[JobSpec],
    workers: int = DEFAULT_WORKERS,
    mode: str = "process",
    store_root: Optional[str] = None,
    pool=None,
) -> List[JobOutcome]:
    """Execute ``specs`` through a pool; outcomes in submission order.

    The ordering contract mirrors :func:`repro.parallel.run_ordered`:
    result ``i`` is the outcome of spec ``i`` however completion
    interleaved.  Passing ``pool`` reuses an already-started pool
    (e.g. :func:`shared_pool`) and leaves it running; otherwise a
    fresh pool is created and shut down.
    """
    own_pool = pool is None
    target = pool if pool is not None else make_pool(
        mode, workers=workers, store_root=store_root
    )
    target.start()
    try:
        by_id: Dict[int, JobOutcome] = {}
        next_index = 0
        while len(by_id) < len(specs):
            while (next_index < len(specs)
                   and target.idle_workers > 0):
                target.submit(next_index, specs[next_index])
                next_index += 1
            for outcome in target.poll(timeout=0.1):
                by_id[outcome.job_id] = outcome
        return [by_id[index] for index in range(len(specs))]
    finally:
        if own_pool:
            target.shutdown()


_SHARED: Dict[Tuple[int, Optional[str]], WorkerPool] = {}
_SHARED_LOCK = threading.Lock()


def _shutdown_shared() -> None:
    """``atexit`` hook: drain every shared pool."""
    with _SHARED_LOCK:
        pools = list(_SHARED.values())
        _SHARED.clear()
    for pool in pools:
        pool.shutdown()


def shared_pool(workers: int = DEFAULT_WORKERS,
                store_root: Optional[str] = None) -> WorkerPool:
    """A process-wide started :class:`WorkerPool` per configuration.

    Spawn start-up costs a full interpreter boot and package import
    per worker; the fuzz oracle and the bench layer run many small
    batches, so they share one pool instead of paying that per call.
    The pool is shut down at interpreter exit.
    """
    key = (workers, store_root)
    with _SHARED_LOCK:
        pool = _SHARED.get(key)
        if pool is None:
            if not _SHARED:
                atexit.register(_shutdown_shared)
            pool = WorkerPool(workers=workers, store_root=store_root).start()
            _SHARED[key] = pool
        return pool
