"""``repro.shard`` -- sharded data-plane verification.

The scale-out tier of the verification stack: cut the network into
device shards (:mod:`repro.shard.partition`), verify each shard with a
**shard-local** BDD engine -- in this process or fanned out over spawn
workers (:mod:`repro.shard.artifacts`, :mod:`repro.shard.verifier`) --
and stitch per-shard canonical interval sets back into whole-network
answers provably byte-identical to the unsharded
:class:`~repro.ap.verifier.APVerifier`
(:mod:`repro.shard.intervals`, :mod:`repro.shard.stitch`).
:mod:`repro.shard.streaming` adds the incremental form: APKeep-style
deltas from a rule-change feed, re-verified per affected shard only
with bounded per-update latency.

Quick start::

    from repro.netmodel.datasets import build_verification_dataset
    from repro.shard import ShardVerifier, whole_reference_document

    dataset = build_verification_dataset("Internet2")
    sharded = ShardVerifier(dataset, shards=4)
    assert sharded.comparison_document() == whole_reference_document(dataset)
"""

from repro.shard import intervals
from repro.shard.artifacts import (
    SCHEMA,
    build_shard_artifact,
    build_shard_artifact_from_doc,
    check_artifact,
)
from repro.shard.codec import (
    dataset_fingerprint,
    dataset_from_doc,
    dataset_to_doc,
    shard_dataset,
)
from repro.shard.partition import (
    STRATEGIES,
    NetworkPartitioner,
    ShardPlan,
)
from repro.shard.stitch import (
    allocated_intervals,
    build_adjacency,
    merge_artifacts,
    result_document,
    stitched_blackholes,
    stitched_reachability,
    whole_blackhole_intervals,
    whole_reachability_intervals,
)
from repro.shard.streaming import StreamingVerifier
from repro.shard.verifier import (
    MODES,
    ShardVerifier,
    artifact_store_key,
    documents_equal,
    whole_reference_document,
)

__all__ = [
    "MODES",
    "SCHEMA",
    "STRATEGIES",
    "NetworkPartitioner",
    "ShardPlan",
    "ShardVerifier",
    "StreamingVerifier",
    "allocated_intervals",
    "artifact_store_key",
    "build_adjacency",
    "build_shard_artifact",
    "build_shard_artifact_from_doc",
    "check_artifact",
    "dataset_fingerprint",
    "dataset_from_doc",
    "dataset_to_doc",
    "documents_equal",
    "intervals",
    "merge_artifacts",
    "result_document",
    "shard_dataset",
    "stitched_blackholes",
    "stitched_reachability",
    "whole_blackhole_intervals",
    "whole_reachability_intervals",
    "whole_reference_document",
]
