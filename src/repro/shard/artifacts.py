"""Per-shard verification artifacts: local BDD work, portable results.

A *shard artifact* is everything the cross-shard stitcher needs from
one shard, as plain JSON: per member device the canonical interval set
forwarded to each port, the interval set its ingress ACL permits, the
shard's atomic-predicate count, and the telemetry of the **shard-local
BDD engine** that computed it all.  Building an artifact allocates a
fresh engine, extracts only the shard members' predicates
(:func:`repro.ap.predicates.extract_predicates` with a device subset),
computes the shard's atomic predicates, and exports every predicate
through :func:`repro.shard.intervals.bdd_to_intervals` -- after which
the engine is garbage; no node id ever leaves the shard.

That isolation is the point: two shards never share a node table, so a
shard build parallelises across spawn processes with zero coordination,
and the engine stats embedded in each artifact let tests prove the
node counts are decoupled (building shard *i* alone allocates exactly
the nodes building it alongside every other shard does).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro import obs
from repro.ap.atomic import compute_atomic_predicates
from repro.ap.predicates import extract_predicates
from repro.bdd.builder import new_engine
from repro.bdd.engine import BDD_TRUE
from repro.netmodel.datasets import VerificationDataset
from repro.shard import intervals
from repro.shard.codec import dataset_from_doc

#: Artifact schema tag; bump to retire stored shard artifacts.
SCHEMA = "repro.shard/1"


def build_shard_artifact(
    dataset: VerificationDataset,
    members: List[str],
    index: int,
    profile: str = "jdd",
) -> Dict:
    """Build the artifact of shard ``index`` owning ``members``.

    Pure function of (member FIBs/ACLs, profile): the BDD engine is
    created and discarded inside the call, so concurrent builds -- in
    threads, spawn workers, or separate machines -- cannot interact.
    """
    start = time.perf_counter()
    engine = new_engine(profile)
    table = extract_predicates(dataset, engine, devices=members)
    atomics = compute_atomic_predicates(
        engine, table.distinct_predicates()
    )

    ports: Dict[str, Dict[str, List[List[int]]]] = {}
    for (device, port), bdd in sorted(table.forwarding.items()):
        ports.setdefault(device, {})[port] = intervals.to_json(
            intervals.bdd_to_intervals(engine, bdd)
        )
    acl: Dict[str, List[List[int]]] = {}
    for device in sorted(table.acl):
        bdd = table.acl[device]
        if bdd == BDD_TRUE:
            acl[device] = intervals.to_json(intervals.FULL)
        else:
            acl[device] = intervals.to_json(
                intervals.bdd_to_intervals(engine, bdd)
            )

    elapsed = time.perf_counter() - start
    obs.metrics.counter("shard.builds", shard=str(index)).inc()
    obs.metrics.histogram("shard.build.seconds").observe(elapsed)
    stats = engine.stats()
    return {
        "ok": True,
        "schema": SCHEMA,
        "index": index,
        "devices": sorted(members),
        "ports": ports,
        "acl": acl,
        "atoms": atomics.num_atoms,
        "predicates": len(table.distinct_predicates()),
        "build_seconds": elapsed,
        "engine": {
            "profile": stats["profile"],
            "num_nodes": stats["num_nodes"],
            "op_count": stats["op_count"],
            "mk_count": stats["mk_count"],
        },
    }


def build_shard_artifact_from_doc(
    doc: Dict,
    members: List[str],
    index: int,
    profile: str = "jdd",
) -> Dict:
    """:func:`build_shard_artifact` from a codec dataset document.

    The spawn-worker entry point: the job params carry the dataset as
    plain JSON, the worker rebuilds it and runs the same build as the
    in-process path.
    """
    return build_shard_artifact(
        dataset_from_doc(doc), members, index, profile=profile
    )


def artifact_port_intervals(
    artifact: Dict,
) -> Dict[str, Dict[str, intervals.IntervalSet]]:
    """Decode an artifact's per-device ``port -> interval set`` maps."""
    return {
        device: {
            port: intervals.from_json(doc)
            for port, doc in port_map.items()
        }
        for device, port_map in artifact["ports"].items()
    }


def artifact_acl_intervals(
    artifact: Dict,
) -> Dict[str, intervals.IntervalSet]:
    """Decode an artifact's per-device ACL-permit interval sets."""
    return {
        device: intervals.from_json(doc)
        for device, doc in artifact["acl"].items()
    }


def check_artifact(artifact: Dict, members: Optional[List[str]] = None) -> None:
    """Sanity-check a (possibly store-loaded) artifact document.

    Raises ``ValueError`` on schema mismatch or a member-set mismatch,
    which is how stale store entries surface instead of silently
    stitching the wrong shard.
    """
    if artifact.get("schema") != SCHEMA:
        raise ValueError(
            f"shard artifact schema {artifact.get('schema')!r} != {SCHEMA!r}"
        )
    if members is not None and artifact.get("devices") != sorted(members):
        raise ValueError(
            f"shard artifact covers {artifact.get('devices')}, "
            f"expected {sorted(members)}"
        )
