"""Dataset serialization for shard workers and shard store keys.

Shard-artifact builds cross the spawn-process boundary as plain-JSON
job params, and shard store keys must fingerprint *what is verified*,
not which Python objects happen to hold it.  Both needs are served by
one canonical document: :func:`dataset_to_doc` writes a
:class:`~repro.netmodel.datasets.VerificationDataset` as the same
plain-JSON shape the fuzz generators use (``nodes`` / ``links`` /
``rules`` / ``acls`` / ``prefixes``), :func:`dataset_from_doc` rebuilds
it, and :func:`dataset_fingerprint` hashes the sorted-key JSON so two
equal data planes share shard artifacts in the store.

:func:`shard_dataset` cuts the per-shard sub-dataset (member devices +
induced subtopology) that per-shard verifiers -- AP extraction and the
streaming tier's per-shard APKeep instances -- operate on.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.netmodel.datasets import VerificationDataset
from repro.netmodel.headerspace import Prefix
from repro.netmodel.rules import AclAction, AclRule, Device, ForwardingRule
from repro.netmodel.topology import Topology
from repro.store import fingerprint

#: Link capacity restored on decode; verification never reads it.
_LINK_CAPACITY = 1000.0


def dataset_to_doc(dataset: VerificationDataset) -> Dict:
    """Serialize a dataset to a plain-JSON document.

    Deterministic: devices, rules (in priority order), ACLs and links
    are emitted sorted, so equal data planes produce equal documents.
    """
    nodes = sorted(dataset.devices)
    links = sorted(
        [link.src, link.dst] for link in dataset.topology.links()
    )
    rules = {
        node: [
            [rule.prefix.value, rule.prefix.length, rule.port, rule.priority]
            for rule in dataset.devices[node].rules
        ]
        for node in nodes
    }
    acls = {
        node: [
            [acl.prefix.value, acl.prefix.length, acl.action.value,
             acl.priority]
            for acl in dataset.devices[node].acl
        ]
        for node in nodes
        if dataset.devices[node].has_acl
    }
    prefixes = {
        node: [prefix.value, prefix.length]
        for node, prefix in sorted(dataset.prefix_of.items())
    }
    return {
        "name": dataset.name,
        "nodes": nodes,
        "links": links,
        "rules": rules,
        "acls": acls,
        "prefixes": prefixes,
    }


def dataset_from_doc(doc: Dict) -> VerificationDataset:
    """Rebuild the dataset a :func:`dataset_to_doc` document describes."""
    topology = Topology(doc.get("name", "shard-doc"))
    for node in doc["nodes"]:
        topology.add_node(node)
    for src, dst in doc["links"]:
        topology.add_link(src, dst, _LINK_CAPACITY)

    devices: Dict[str, Device] = {}
    for node in doc["nodes"]:
        device = Device(node)
        for value, length, port, priority in doc["rules"].get(node, []):
            device.add_rule(
                ForwardingRule(Prefix(int(value), int(length)), port,
                               int(priority))
            )
        for value, length, action, priority in doc.get("acls", {}).get(
            node, []
        ):
            device.add_acl_rule(
                AclRule(Prefix(int(value), int(length)), AclAction(action),
                        int(priority))
            )
        devices[node] = device

    prefix_of = {
        node: Prefix(int(value), int(length))
        for node, (value, length) in doc.get("prefixes", {}).items()
        if node in devices
    }
    return VerificationDataset(
        doc.get("name", "shard-doc"), topology, devices, prefix_of
    )


def dataset_fingerprint(dataset: VerificationDataset) -> str:
    """Content fingerprint of the data plane (BLAKE2b of the document).

    The identity shard store keys are derived from: two datasets with
    equal rules/ACLs/links share warm shard artifacts even across
    processes and restarts.
    """
    return fingerprint(
        json.dumps(dataset_to_doc(dataset), sort_keys=True)
    )


def shard_dataset(
    dataset: VerificationDataset, members: Iterable[str], name: str
) -> VerificationDataset:
    """The sub-dataset one shard owns: member devices, induced links.

    Forwarding rules pointing at out-of-shard neighbours are kept
    verbatim -- ports are names, and the cross-shard stitcher is what
    follows them over boundary links.
    """
    keep: List[str] = sorted(members)
    devices = {node: dataset.devices[node] for node in keep}
    prefix_of = {
        node: prefix
        for node, prefix in dataset.prefix_of.items()
        if node in devices
    }
    return VerificationDataset(
        name, dataset.topology.subgraph(keep, name=name), devices, prefix_of
    )
