"""Canonical header-interval sets: the cross-shard predicate currency.

Every shard computes its predicates in a **shard-local** BDD engine, so
BDD node ids are meaningless across shards (and across processes).  The
one representation that survives both boundaries is the extensional
one: a packet-set over the ``HEADER_BITS``-bit header space written as a
*canonical interval set* -- a sorted tuple of disjoint, non-adjacent
``(start, end)`` half-open integer ranges.  Two predicates are equal iff
their canonical interval sets are byte-identical JSON, which is exactly
the equality the sharded-vs-whole acceptance check needs.

Interval sets stay small for data-plane predicates: every FIB rule and
ACL entry matches a *prefix* (one contiguous range), so port and ACL
predicates are unions/differences of ranges and the interval count is
bounded by the rule count, never by ``2**HEADER_BITS``.

:func:`bdd_to_intervals` converts a BDD to this form by a memoized
structural walk (variable 0 is the MSB, so low/high branches split a
block into its lower/upper half); the set algebra (:func:`union`,
:func:`intersect`, :func:`difference`) is plain sweep-merging with no
BDD engine anywhere -- which is what lets the cross-shard stitcher run
in the parent process with zero shared BDD state.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.bdd.engine import BDDEngine, BDD_FALSE, BDD_TRUE
from repro.netmodel.headerspace import HEADER_BITS, Prefix

#: One interval: half-open ``[start, end)`` over header addresses.
Interval = Tuple[int, int]

#: A canonical interval set: sorted, disjoint, non-adjacent intervals.
IntervalSet = Tuple[Interval, ...]

#: The empty packet set.
EMPTY: IntervalSet = ()

#: The full header space.
FULL: IntervalSet = ((0, 1 << HEADER_BITS),)


def normalize(pairs: Iterable[Sequence[int]]) -> IntervalSet:
    """Canonicalise arbitrary ``(start, end)`` pairs.

    Drops empty ranges, sorts, and merges overlapping or adjacent
    intervals, so any two extensionally-equal inputs produce the same
    tuple.
    """
    cleaned = sorted(
        (int(start), int(end)) for start, end in pairs if end > start
    )
    out: List[Interval] = []
    for start, end in cleaned:
        if out and start <= out[-1][1]:
            if end > out[-1][1]:
                out[-1] = (out[-1][0], end)
        else:
            out.append((start, end))
    return tuple(out)


def _concat(lower: IntervalSet, upper: IntervalSet) -> IntervalSet:
    """Join two canonical sets where all of ``lower`` precedes ``upper``.

    The only overlap possible is adjacency at the seam, which is merged
    so the result stays canonical.  O(1) beyond the tuple copy.
    """
    if not lower:
        return upper
    if not upper:
        return lower
    if lower[-1][1] == upper[0][0]:
        return lower[:-1] + ((lower[-1][0], upper[0][1]),) + upper[1:]
    return lower + upper


def union(a: IntervalSet, b: IntervalSet) -> IntervalSet:
    """Set union of two canonical interval sets."""
    if not a:
        return b
    if not b:
        return a
    return normalize(list(a) + list(b))


def intersect(a: IntervalSet, b: IntervalSet) -> IntervalSet:
    """Set intersection of two canonical interval sets (linear sweep)."""
    out: List[Interval] = []
    i = j = 0
    while i < len(a) and j < len(b):
        start = max(a[i][0], b[j][0])
        end = min(a[i][1], b[j][1])
        if start < end:
            out.append((start, end))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return tuple(out)


def difference(a: IntervalSet, b: IntervalSet) -> IntervalSet:
    """Set difference ``a - b`` of two canonical interval sets."""
    if not a or not b:
        return a
    out: List[Interval] = []
    j = 0
    for start, end in a:
        cursor = start
        while j < len(b) and b[j][1] <= cursor:
            j += 1
        k = j
        while k < len(b) and b[k][0] < end:
            if b[k][0] > cursor:
                out.append((cursor, b[k][0]))
            cursor = max(cursor, b[k][1])
            if cursor >= end:
                break
            k += 1
        if cursor < end:
            out.append((cursor, end))
    return tuple(out)


def total(a: IntervalSet) -> int:
    """Number of addresses the set contains."""
    return sum(end - start for start, end in a)


def prefix_to_intervals(prefix: Prefix) -> IntervalSet:
    """The contiguous address range a prefix matches."""
    width = 1 << (HEADER_BITS - prefix.length)
    return ((prefix.value, prefix.value + width),)


def to_json(a: IntervalSet) -> List[List[int]]:
    """Plain-JSON form (``[[start, end], ...]``) for artifacts."""
    return [[start, end] for start, end in a]


def from_json(doc: Iterable[Sequence[int]]) -> IntervalSet:
    """Rebuild a canonical set from :func:`to_json` output."""
    return tuple((int(start), int(end)) for start, end in doc)


def _lift(
    intervals: IntervalSet, from_level: int, to_level: int, bits: int
) -> IntervalSet:
    """Replicate a node's block-relative intervals up skipped levels.

    A BDD node at level ``from_level`` describes a block of
    ``2**(bits - from_level)`` addresses; viewed from the shallower
    ``to_level`` the node applies to *both* branches of every skipped
    variable, i.e. its intervals repeat once per half.  Doubling one
    level at a time keeps runs contiguous (a full block stays a single
    interval instead of exploding into ``2**skipped`` pieces).
    """
    for level in range(from_level - 1, to_level - 1, -1):
        half = 1 << (bits - level - 1)
        intervals = _concat(
            intervals, tuple((s + half, e + half) for s, e in intervals)
        )
    return intervals


def bdd_to_intervals(engine: BDDEngine, node: int) -> IntervalSet:
    """Canonical interval set of the packet set a BDD node denotes.

    Exact: an address is in some interval iff the BDD evaluates true on
    it (variable 0 = address MSB, the order every verifier uses).  The
    walk is memoized per node, so shared subgraphs are converted once;
    cost is O(nodes x intervals-per-node).
    """
    bits = engine.num_vars
    memo = {BDD_FALSE: EMPTY, BDD_TRUE: ((0, 1),)}

    def rec(current: int) -> IntervalSet:
        found = memo.get(current)
        if found is not None:
            return found
        var, low, high = engine.node(current)
        half = 1 << (bits - var - 1)
        low_ints = _lift(rec(low), engine.node(low)[0], var + 1, bits)
        high_ints = _lift(rec(high), engine.node(high)[0], var + 1, bits)
        out = _concat(
            low_ints, tuple((s + half, e + half) for s, e in high_ints)
        )
        memo[current] = out
        return out

    return _lift(rec(node), engine.node(node)[0], 0, bits)
