"""Device partitioning: cut a data plane into shards with explicit seams.

A :class:`ShardPlan` assigns every device to exactly one shard and
records the *boundary* -- the directed links whose endpoints live in
different shards.  Per-shard verification only ever reads its own
members' FIBs and ACLs; everything that crosses the boundary is the
stitcher's job (:mod:`repro.shard.stitch`), so the plan is the complete
contract between the two.

Two deterministic strategies:

* ``"contiguous"`` -- sorted device names split into near-equal chunks.
  Trivially stable; boundary size depends on how names correlate with
  topology.
* ``"bfs"`` (default) -- devices ordered by a breadth-first sweep from
  the lexicographically-smallest node (deterministic tie-breaks), then
  chunked.  Neighbours tend to land in the same shard, which shrinks
  the boundary and with it the stitcher's cross-shard traffic.

Both are pure functions of (dataset, shards, strategy): the same input
always yields the same plan, which shard store keys rely on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.netmodel.datasets import VerificationDataset

#: Partitioning strategies :class:`NetworkPartitioner` accepts.
STRATEGIES = ("contiguous", "bfs")


@dataclass(frozen=True)
class ShardPlan:
    """One partitioning decision: members per shard plus the boundary.

    ``members[i]`` is the sorted device tuple of shard ``i``;
    ``boundary`` holds every directed cross-shard link ``(src, dst)``;
    ``links`` is the full directed link list (the stitcher walks it).
    """

    num_shards: int
    strategy: str
    members: Tuple[Tuple[str, ...], ...]
    boundary: Tuple[Tuple[str, str], ...]
    links: Tuple[Tuple[str, str], ...]
    shard_of: Dict[str, int] = field(default_factory=dict, compare=False)

    @property
    def num_devices(self) -> int:
        return sum(len(shard) for shard in self.members)

    @property
    def boundary_fraction(self) -> float:
        """Share of directed links that cross shards (0 when unsharded)."""
        if not self.links:
            return 0.0
        return len(self.boundary) / len(self.links)

    def boundary_out(self, index: int) -> List[Tuple[str, str]]:
        """Boundary links leaving shard ``index``."""
        return [
            (src, dst) for src, dst in self.boundary
            if self.shard_of[src] == index
        ]

    def boundary_in(self, index: int) -> List[Tuple[str, str]]:
        """Boundary links entering shard ``index``."""
        return [
            (src, dst) for src, dst in self.boundary
            if self.shard_of[dst] == index
        ]

    def describe(self) -> Dict:
        """Plain-JSON summary for artifacts and CLI output."""
        return {
            "num_shards": self.num_shards,
            "strategy": self.strategy,
            "shard_sizes": [len(shard) for shard in self.members],
            "boundary_links": len(self.boundary),
            "total_links": len(self.links),
        }


class NetworkPartitioner:
    """Deterministically cut a dataset into device shards."""

    def __init__(self, num_shards: int, strategy: str = "bfs"):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {strategy!r}"
            )
        self.num_shards = num_shards
        self.strategy = strategy

    def partition(self, dataset: VerificationDataset) -> ShardPlan:
        """Build the :class:`ShardPlan` for ``dataset``.

        The shard count is clamped to the device count, so asking for
        more shards than devices degrades gracefully to one device per
        shard.
        """
        devices = sorted(dataset.devices)
        shards = min(self.num_shards, len(devices)) or 1
        if self.strategy == "bfs":
            ordered = self._bfs_order(dataset, devices)
        else:
            ordered = devices
        members = tuple(
            tuple(sorted(chunk))
            for chunk in _chunk(ordered, shards)
        )
        shard_of = {
            device: index
            for index, shard in enumerate(members)
            for device in shard
        }
        links = tuple(
            (link.src, link.dst) for link in dataset.topology.links()
        )
        boundary = tuple(
            (src, dst) for src, dst in links
            if shard_of.get(src) != shard_of.get(dst)
        )
        return ShardPlan(
            num_shards=shards,
            strategy=self.strategy,
            members=members,
            boundary=boundary,
            links=links,
            shard_of=shard_of,
        )

    @staticmethod
    def _bfs_order(
        dataset: VerificationDataset, devices: List[str]
    ) -> List[str]:
        """Breadth-first device order with deterministic tie-breaks.

        Components are visited smallest-root-first; within a component
        neighbours are expanded in sorted order.
        """
        seen = set()
        order: List[str] = []
        for root in devices:
            if root in seen:
                continue
            seen.add(root)
            queue = deque([root])
            while queue:
                device = queue.popleft()
                order.append(device)
                for neighbor in dataset.topology.successors(device):
                    if neighbor in dataset.devices and neighbor not in seen:
                        seen.add(neighbor)
                        queue.append(neighbor)
        return order


def _chunk(ordered: List[str], shards: int) -> List[List[str]]:
    """Split ``ordered`` into ``shards`` near-equal contiguous chunks."""
    base, extra = divmod(len(ordered), shards)
    chunks: List[List[str]] = []
    cursor = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        chunks.append(ordered[cursor:cursor + size])
        cursor += size
    return chunks
