"""Cross-shard stitching: whole-network answers from per-shard artifacts.

Each shard artifact carries its members' forwarding and ACL predicates
as canonical interval sets (:mod:`repro.shard.intervals`).  The
stitcher merges those maps and runs the *same* propagation the
unsharded :class:`~repro.ap.verifier.APVerifier` runs -- a worklist BFS
computing the least fixpoint of

    ``reach[dst] >= (reach[src] - seen) * fwd[src -> dst] * acl[dst]``

-- except over interval sets instead of atom-id sets.  The two are
provably equal: the whole-network atoms refine every port and ACL
predicate of every device, so the atom-granularity BFS computes exactly
the exact-packet-set fixpoint, which is what the interval BFS computes
directly.  Canonical intervals then make equality *byte* equality:
:func:`whole_reachability_intervals` exports the unsharded verifier's
answer in the same representation, and the sharded-vs-whole acceptance
check compares the JSON documents verbatim.

Blackholes follow the same pattern (drop-port predicate, intersected
with the device ACL and the allocated prefix space).  Forwarding-loop
detection stays whole-network-only: a loop is a property of a cyclic
trajectory, which the per-shard artifact representation deliberately
does not carry -- :class:`~repro.shard.verifier.ShardVerifier` documents
the restriction rather than approximating it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.bdd.builder import prefix_to_bdd
from repro.bdd.engine import BDD_FALSE
from repro.netmodel.datasets import VerificationDataset
from repro.netmodel.rules import DROP_PORT
from repro.shard import intervals
from repro.shard.artifacts import (
    artifact_acl_intervals,
    artifact_port_intervals,
)

#: ``device -> {port -> interval set}`` merged across all shards.
PortMap = Dict[str, Dict[str, intervals.IntervalSet]]

#: ``device -> interval set`` of ACL-permitted headers, merged.
AclMap = Dict[str, intervals.IntervalSet]


def merge_artifacts(artifacts: Sequence[Dict]) -> Tuple[PortMap, AclMap]:
    """Merge per-shard artifacts into whole-network predicate maps.

    Shards own disjoint device sets, so the merge is a plain dict union;
    a duplicate device would mean two artifacts claim it and is an
    error.
    """
    ports: PortMap = {}
    acl: AclMap = {}
    for artifact in artifacts:
        for device, port_map in artifact_port_intervals(artifact).items():
            if device in ports:
                raise ValueError(
                    f"device {device!r} appears in multiple shard artifacts"
                )
            ports[device] = port_map
        acl.update(artifact_acl_intervals(artifact))
    return ports, acl


def build_adjacency(
    links: Iterable[Tuple[str, str]]
) -> Dict[str, Tuple[str, ...]]:
    """``device -> sorted successor tuple`` from a directed link list."""
    successors: Dict[str, List[str]] = {}
    for src, dst in links:
        successors.setdefault(src, []).append(dst)
    return {
        device: tuple(sorted(set(nbrs)))
        for device, nbrs in successors.items()
    }


def stitched_reachability(
    ports: PortMap,
    acl: AclMap,
    adjacency: Dict[str, Tuple[str, ...]],
    src: str,
) -> Dict[str, intervals.IntervalSet]:
    """Headers injected at ``src`` that can arrive at every device.

    The interval-set twin of
    :meth:`~repro.ap.verifier.APVerifier.reachability_tree`: same
    initial set (what ``src``'s ingress ACL admits), same worklist BFS,
    same monotone fixpoint -- only the set representation differs.
    Devices nothing reaches are omitted.
    """
    if src not in acl:
        raise KeyError(f"unknown device {src!r}")
    seen: Dict[str, intervals.IntervalSet] = {}
    queue = deque([(src, acl[src])])
    while queue:
        device, incoming = queue.popleft()
        fresh = intervals.difference(incoming, seen.get(device, intervals.EMPTY))
        if not fresh:
            continue
        seen[device] = intervals.union(
            seen.get(device, intervals.EMPTY), fresh
        )
        port_map = ports.get(device, {})
        for neighbor in adjacency.get(device, ()):
            label = port_map.get(neighbor)
            if not label:
                continue
            moving = intervals.intersect(
                intervals.intersect(fresh, label), acl[neighbor]
            )
            if moving:
                queue.append((neighbor, moving))
    return {device: found for device, found in seen.items() if found}


def stitched_blackholes(
    ports: PortMap,
    acl: AclMap,
    allocated: intervals.IntervalSet,
) -> Dict[str, intervals.IntervalSet]:
    """Allocated headers each device drops (ACL-admitted, drop-ported).

    Scoping to ``allocated`` (see :func:`allocated_intervals`) mirrors
    the whole verifier's convention: headers outside every advertised
    prefix are legitimately dropped and not reported.
    """
    out: Dict[str, intervals.IntervalSet] = {}
    for device in sorted(ports):
        dropped = intervals.intersect(
            intervals.intersect(
                ports[device].get(DROP_PORT, intervals.EMPTY),
                acl.get(device, intervals.FULL),
            ),
            allocated,
        )
        if dropped:
            out[device] = dropped
    return out


def allocated_intervals(dataset: VerificationDataset) -> intervals.IntervalSet:
    """Union of the dataset's allocated prefixes as an interval set."""
    out = intervals.EMPTY
    for prefix in dataset.prefix_of.values():
        out = intervals.union(out, intervals.prefix_to_intervals(prefix))
    return out


def result_document(
    per_device: Dict[str, intervals.IntervalSet]
) -> Dict[str, List[List[int]]]:
    """Canonical plain-JSON form of a ``device -> interval set`` answer.

    Sorted device keys + canonical interval JSON: two extensionally
    equal answers serialize byte-identically, which is the equality the
    sharded-vs-whole oracle asserts.
    """
    return {
        device: intervals.to_json(per_device[device])
        for device in sorted(per_device)
    }


# ----------------------------------------------------------------------
# Whole-network reference exports (the unsharded side of the equality)
# ----------------------------------------------------------------------
def whole_reachability_intervals(
    verifier, src: str
) -> Dict[str, intervals.IntervalSet]:
    """The unsharded verifier's reachability tree as interval sets.

    Converts each device's reachable atom set (one global-engine BDD per
    device) through :func:`~repro.shard.intervals.bdd_to_intervals`; the
    sharded :func:`stitched_reachability` must match this byte-for-byte.
    """
    out: Dict[str, intervals.IntervalSet] = {}
    for device, atoms in verifier.reachability_tree(src).items():
        found = intervals.bdd_to_intervals(
            verifier.engine, verifier.atomics.union_bdd(atoms)
        )
        if found:
            out[device] = found
    return out


def whole_blackhole_intervals(verifier) -> Dict[str, intervals.IntervalSet]:
    """The unsharded verifier's scoped blackhole sets as intervals.

    Computed as exact packet sets -- ``(drop-port atoms n ACL atoms)``
    intersected with the allocated-prefix union BDD -- rather than via
    :meth:`~repro.ap.verifier.APVerifier.find_blackholes` with an
    atoms-overlapping-allocated scope, because "atoms overlapping the
    allocated space" depends on atom granularity and shard-local atoms
    are coarser than whole-network ones.  The exact sets are
    granularity-independent, which is what makes byte equality with
    :func:`stitched_blackholes` possible.
    """
    engine = verifier.engine
    allocated = BDD_FALSE
    for prefix in verifier.dataset.prefix_of.values():
        allocated = engine.or_(allocated, prefix_to_bdd(engine, prefix))
    out: Dict[str, intervals.IntervalSet] = {}
    for device in sorted(verifier.dataset.devices):
        atoms = (
            verifier.port_atoms.get((device, DROP_PORT), frozenset())
            & verifier.acl_atoms[device]
        )
        if not atoms:
            continue
        scoped = engine.and_(verifier.atomics.union_bdd(atoms), allocated)
        found = intervals.bdd_to_intervals(engine, scoped)
        if found:
            out[device] = found
    return out
