"""Streaming sharded verification: APKeep deltas, per-shard re-export.

:class:`StreamingVerifier` is the incremental twin of
:class:`~repro.shard.verifier.ShardVerifier`: instead of rebuilding
shard artifacts per snapshot, each shard holds a live
:class:`~repro.apkeep.network.APKeepVerifier` over its sub-dataset
(own BDD engine, as always).  A rule change from the update feed is
routed to the **owning shard only**: that shard absorbs the delta in
O(changed atoms) APKeep work, re-exports its interval maps, and the
parent re-stitches the tracked sources -- the other shards are never
touched, which is what bounds per-update latency by shard size rather
than network size.

The exported interval maps are exact packet sets, so after any update
sequence the stitched answers equal a from-scratch whole-network
verification of the mutated dataset (the ``dataplane.stream-vs-batch``
fuzz oracle holds this); :meth:`latency_stats` reports the update
latency distribution, including the p95 the streaming bench and the CI
burst check bound.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.apkeep.network import APKeepVerifier
from repro.bdd.engine import BDD_FALSE
from repro.netmodel.datasets import VerificationDataset
from repro.netmodel.rules import ForwardingRule
from repro.shard import intervals
from repro.shard.codec import shard_dataset
from repro.shard.partition import NetworkPartitioner, ShardPlan
from repro.shard.stitch import (
    allocated_intervals,
    build_adjacency,
    result_document,
    stitched_blackholes,
    stitched_reachability,
)

#: One feed entry: ``(operation, device, rule)``, APKeep's batch shape.
Update = Tuple[str, str, ForwardingRule]


class StreamingVerifier:
    """Bounded-latency sharded verification over a rule-change feed."""

    def __init__(
        self,
        dataset: VerificationDataset,
        shards: int = 2,
        strategy: str = "bfs",
        profile: str = "jdd",
        sources: Optional[Sequence[str]] = None,
    ):
        self.dataset = dataset
        self.plan: ShardPlan = NetworkPartitioner(
            shards, strategy
        ).partition(dataset)
        self.adjacency = build_adjacency(self.plan.links)
        self.allocated = allocated_intervals(dataset)
        #: Sources re-stitched after every update (the standing queries).
        self.sources: List[str] = sorted(sources) if sources else []
        for src in self.sources:
            if src not in dataset.devices:
                raise KeyError(f"unknown tracked source {src!r}")

        self.shard_verifiers: List[APKeepVerifier] = []
        self.export_counts: List[int] = []
        for index, members in enumerate(self.plan.members):
            sub = shard_dataset(
                dataset, members, name=f"{dataset.name}/shard{index}"
            )
            self.shard_verifiers.append(APKeepVerifier(sub, profile=profile))
            self.export_counts.append(0)

        self.ports: Dict[str, Dict[str, intervals.IntervalSet]] = {}
        self.acl: Dict[str, intervals.IntervalSet] = {}
        for index in range(self.plan.num_shards):
            self._export_shard(index)

        self.latencies: List[float] = []
        self.reach: Dict[str, Dict[str, intervals.IntervalSet]] = {}
        self._restitch()

    # ------------------------------------------------------------------
    # Shard-local export (the only place BDDs are read)
    # ------------------------------------------------------------------
    def _export_shard(self, index: int) -> None:
        """Refresh ``index``'s interval maps from its APKeep state.

        Reads that shard's engine only; every other shard's maps stay
        untouched, which is the per-affected-shard cost bound.
        """
        verifier = self.shard_verifiers[index]
        engine = verifier.engine
        atoms = verifier.ppm.atoms
        acl_view = verifier.acl_atoms() if verifier.acl_elements else {}
        for device in self.plan.members[index]:
            port_map: Dict[str, intervals.IntervalSet] = {}
            for port, atom_ids in verifier.ppm.port_map[device].items():
                union = BDD_FALSE
                for atom_id in sorted(atom_ids):
                    union = engine.or_(union, atoms[atom_id])
                found = intervals.bdd_to_intervals(engine, union)
                if found:
                    port_map[port] = found
            self.ports[device] = port_map
            if device in verifier.acl_elements:
                union = BDD_FALSE
                for atom_id in sorted(acl_view[device]):
                    union = engine.or_(union, atoms[atom_id])
                self.acl[device] = intervals.bdd_to_intervals(engine, union)
            else:
                self.acl[device] = intervals.FULL
        self.export_counts[index] += 1

    def _restitch(self) -> None:
        """Re-run the standing reachability queries on current maps."""
        for src in self.sources:
            self.reach[src] = stitched_reachability(
                self.ports, self.acl, self.adjacency, src
            )

    # ------------------------------------------------------------------
    # The update feed
    # ------------------------------------------------------------------
    def apply(
        self, operation: str, device: str, rule: ForwardingRule
    ) -> Dict:
        """Absorb one rule change; re-verify the owning shard only.

        Returns a plain-JSON record: the owning shard, the end-to-end
        latency (APKeep delta + interval re-export + re-stitch), and the
        shard's current atom count.
        """
        index = self.plan.shard_of.get(device)
        if index is None:
            raise KeyError(f"unknown device {device!r}")
        verifier = self.shard_verifiers[index]
        start = time.perf_counter()
        if operation == "insert":
            verifier.insert_rule(device, rule)
        elif operation == "remove":
            verifier.remove_rule(device, rule)
        else:
            raise ValueError(
                f"operation must be 'insert' or 'remove', got {operation!r}"
            )
        self._export_shard(index)
        self._restitch()
        elapsed = time.perf_counter() - start
        self.latencies.append(elapsed)
        obs.metrics.histogram("shard.stream.seconds").observe(elapsed)
        obs.metrics.counter("shard.stream.updates", shard=str(index)).inc()
        return {
            "device": device,
            "operation": operation,
            "shard": index,
            "seconds": elapsed,
            "shard_atoms": verifier.num_atoms,
        }

    def apply_burst(self, updates: Iterable[Update]) -> Dict:
        """Absorb an update burst; returns the burst latency summary."""
        count = 0
        for operation, device, rule in updates:
            self.apply(operation, device, rule)
            count += 1
        stats = self.latency_stats()
        stats["burst"] = count
        return stats

    def latency_stats(self) -> Dict[str, float]:
        """End-to-end per-update latency distribution, in seconds.

        Unlike :meth:`APKeepVerifier.update_latency_stats` this covers
        the full streaming path (delta + export + stitch), which is the
        number the bounded-latency acceptance check constrains.
        """
        import numpy as np

        if not self.latencies:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "max": 0.0}
        samples = np.asarray(self.latencies)
        return {
            "count": int(samples.size),
            "mean": float(samples.mean()),
            "p50": float(np.percentile(samples, 50)),
            "p95": float(np.percentile(samples, 95)),
            "p99": float(np.percentile(samples, 99)),
            "max": float(samples.max()),
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def reachability(self, src: str) -> Dict[str, intervals.IntervalSet]:
        """Current reachability from ``src`` (tracked answers are free)."""
        found = self.reach.get(src)
        if found is not None:
            return found
        return stitched_reachability(self.ports, self.acl, self.adjacency, src)

    def blackholes(self) -> Dict[str, intervals.IntervalSet]:
        """Current per-device dropped allocated headers."""
        return stitched_blackholes(self.ports, self.acl, self.allocated)

    def comparison_document(
        self, sources: Optional[Sequence[str]] = None
    ) -> Dict:
        """Same equality surface as
        :meth:`~repro.shard.verifier.ShardVerifier.comparison_document`,
        over the *current* (post-update) state."""
        if sources is None:
            sources = sorted(self.dataset.devices)
        return {
            "reachability": {
                src: result_document(self.reachability(src))
                for src in sources
            },
            "blackholes": result_document(self.blackholes()),
        }
