"""Sharded data-plane verification: partitioned AP across processes.

:class:`ShardVerifier` is the tier that makes atomic-predicates
verification scale out: it cuts the dataset with
:class:`~repro.shard.partition.NetworkPartitioner`, builds one artifact
per shard -- each in its **own** BDD engine, optionally in its own
spawn worker process -- and answers whole-network queries by stitching
the artifacts' canonical interval sets
(:mod:`repro.shard.stitch`).  Answers are byte-identical to the
unsharded :class:`~repro.ap.verifier.APVerifier`'s (the differential
fuzz oracle ``dataplane.sharded-vs-whole`` holds this continuously);
forwarding-loop detection is the one query that stays whole-network
(see :mod:`repro.shard.stitch`).

Three execution modes:

``"serial"``
    Build missing artifacts one after another in this process.  The
    deterministic baseline tests and fuzz oracles use.
``"inprocess"``
    Fan builds out on daemon threads through the serve
    :class:`~repro.serve.pool.InProcessPool` (GIL-bound; exercises the
    job path without process start-up).
``"process"``
    Fan builds out to spawn workers (``shards`` BDD node tables in
    ``shards`` separate processes).  Pass ``pool=shared_pool(...)`` to
    amortize worker boot; this is where sharded beats whole on
    multi-core.

Artifacts persist under the ``shard/1/artifact/<fingerprint>`` store
key family, fingerprinted by (dataset content, shard count, strategy,
shard index, BDD profile) -- so a warm store turns a re-verification
into pure stitching, across processes and across runs.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.netmodel.datasets import VerificationDataset
from repro.serve.jobs import JobSpec
from repro.serve.pool import DEFAULT_WORKERS, run_jobs
from repro.shard import intervals
from repro.shard.artifacts import (
    SCHEMA,
    build_shard_artifact,
    check_artifact,
)
from repro.shard.codec import dataset_fingerprint, dataset_to_doc, shard_dataset
from repro.shard.partition import NetworkPartitioner, ShardPlan
from repro.shard.stitch import (
    allocated_intervals,
    build_adjacency,
    merge_artifacts,
    result_document,
    stitched_blackholes,
    stitched_reachability,
    whole_blackhole_intervals,
    whole_reachability_intervals,
)
from repro.store import ArtifactStore, fingerprint

#: Execution modes for shard artifact builds.
MODES = ("serial", "inprocess", "process")


def artifact_store_key(
    dataset_fp: str, num_shards: int, strategy: str, index: int, profile: str
) -> str:
    """``shard/1/artifact/<fp>`` for one shard of one partitioning."""
    return (
        f"shard/{SCHEMA.rsplit('/', 1)[1]}/artifact/"
        f"{fingerprint(dataset_fp, num_shards, strategy, index, profile)}"
    )


class ShardVerifier:
    """Whole-network verification from per-shard artifacts.

    Construction partitions, then loads every shard artifact from the
    store (warm path: no BDD work at all) or builds the misses in the
    chosen ``mode``; queries are pure interval stitching in the parent
    process.  ``store_hits`` counts shards served warm -- the
    cross-process reuse the store tier exists for.
    """

    def __init__(
        self,
        dataset: VerificationDataset,
        shards: int = 2,
        strategy: str = "bfs",
        profile: str = "jdd",
        store: Optional[ArtifactStore] = None,
        mode: str = "serial",
        workers: Optional[int] = None,
        pool=None,
    ):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.dataset = dataset
        self.profile = profile
        self.mode = mode
        self.store = store
        self.plan: ShardPlan = NetworkPartitioner(
            shards, strategy
        ).partition(dataset)
        self.dataset_fingerprint = dataset_fingerprint(dataset)
        self.store_hits = 0
        with obs.span(
            "shard.build_all",
            dataset=dataset.name,
            shards=self.plan.num_shards,
            mode=mode,
        ) as sp:
            self.artifacts: List[Dict] = self._load_or_build(workers, pool)
            sp.set(store_hits=self.store_hits)
        self.build_seconds = sp.duration
        self.ports, self.acl = merge_artifacts(self.artifacts)
        self.adjacency = build_adjacency(self.plan.links)
        self.allocated = allocated_intervals(dataset)
        obs.metrics.counter("shard.verifiers", mode=mode).inc()

    # ------------------------------------------------------------------
    # Artifact acquisition
    # ------------------------------------------------------------------
    def artifact_key(self, index: int) -> str:
        """Store key of shard ``index`` under this partitioning."""
        return artifact_store_key(
            self.dataset_fingerprint,
            self.plan.num_shards,
            self.plan.strategy,
            index,
            self.profile,
        )

    def _load_or_build(self, workers: Optional[int], pool) -> List[Dict]:
        artifacts: List[Optional[Dict]] = [None] * self.plan.num_shards
        missing: List[int] = []
        for index, members in enumerate(self.plan.members):
            doc = (
                self.store.get(self.artifact_key(index))
                if self.store is not None
                else None
            )
            if doc is not None:
                check_artifact(doc, list(members))
                artifacts[index] = doc
                self.store_hits += 1
                obs.metrics.counter("shard.artifact.hits").inc()
            else:
                missing.append(index)
                obs.metrics.counter("shard.artifact.misses").inc()
        if missing:
            self._build_missing(artifacts, missing, workers, pool)
            if self.store is not None:
                for index in missing:
                    self.store.put(self.artifact_key(index), artifacts[index])
        return list(artifacts)

    def _build_missing(
        self,
        artifacts: List[Optional[Dict]],
        missing: List[int],
        workers: Optional[int],
        pool,
    ) -> None:
        """Build the artifacts ``missing`` names, honouring ``mode``."""
        if self.mode == "serial" and pool is None:
            for index in missing:
                artifacts[index] = build_shard_artifact(
                    self.dataset,
                    list(self.plan.members[index]),
                    index,
                    profile=self.profile,
                )
            return
        # Each worker gets only its shard's sub-dataset: the artifact is
        # a pure function of the member FIBs/ACLs, so shipping the rest
        # of the network would just multiply serialization and
        # reconstruction cost by the shard count.
        specs = [
            JobSpec(
                kind="shard-build",
                params={
                    "dataset_doc": dataset_to_doc(shard_dataset(
                        self.dataset,
                        self.plan.members[index],
                        name=f"{self.dataset.name}/shard{index}",
                    )),
                    "members": list(self.plan.members[index]),
                    "index": index,
                    "profile": self.profile,
                },
            )
            for index in missing
        ]
        outcomes = run_jobs(
            specs,
            workers=workers or min(len(missing), DEFAULT_WORKERS),
            mode="inprocess" if self.mode == "inprocess" else "process",
            pool=pool,
        )
        for index, outcome in zip(missing, outcomes):
            if outcome is None or not outcome.ok:
                detail = outcome.message if outcome else "no outcome"
                raise RuntimeError(
                    f"shard {index} build failed "
                    f"({outcome.error if outcome else 'lost'}): {detail}"
                )
            artifacts[index] = outcome.payload

    # ------------------------------------------------------------------
    # Queries (pure interval stitching; no BDD engine in this process)
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    def reachability(self, src: str) -> Dict[str, intervals.IntervalSet]:
        """Headers from ``src`` arriving at every device (stitched)."""
        start = time.perf_counter()
        found = stitched_reachability(self.ports, self.acl, self.adjacency, src)
        obs.metrics.histogram("shard.stitch.seconds").observe(
            time.perf_counter() - start
        )
        return found

    def blackholes(self) -> Dict[str, intervals.IntervalSet]:
        """Allocated headers dropped per device (stitched)."""
        return stitched_blackholes(self.ports, self.acl, self.allocated)

    def reachability_document(self, src: str) -> Dict:
        """Canonical plain-JSON reachability answer for ``src``."""
        return result_document(self.reachability(src))

    def blackholes_document(self) -> Dict:
        """Canonical plain-JSON blackhole answer."""
        return result_document(self.blackholes())

    def comparison_document(
        self, sources: Optional[Sequence[str]] = None
    ) -> Dict:
        """The equality surface: reachability per source + blackholes.

        Byte-compare this (e.g. ``json.dumps(..., sort_keys=True)``)
        against :func:`whole_reference_document` of the same dataset --
        the sharded-vs-whole acceptance check.
        """
        if sources is None:
            sources = sorted(self.dataset.devices)
        return {
            "reachability": {
                src: self.reachability_document(src) for src in sources
            },
            "blackholes": self.blackholes_document(),
        }

    def result_document(
        self, sources: Optional[Sequence[str]] = None
    ) -> Dict:
        """Full verification result: plan, per-shard stats, answers."""
        return {
            "ok": True,
            "schema": SCHEMA,
            "dataset": self.dataset.name,
            "fingerprint": self.dataset_fingerprint,
            "mode": self.mode,
            "plan": self.plan.describe(),
            "store_hits": self.store_hits,
            "atoms_per_shard": [a["atoms"] for a in self.artifacts],
            "engine_stats": self.engine_stats(),
            **self.comparison_document(sources),
        }

    def engine_stats(self) -> List[Dict]:
        """Per-shard BDD engine telemetry (one isolated engine each).

        The shard-locality proof surface: shard ``i``'s ``num_nodes`` is
        a pure function of shard ``i``'s inputs, so building it alone or
        alongside every other shard reports identical numbers.
        """
        return [artifact["engine"] for artifact in self.artifacts]


def whole_reference_document(
    dataset: VerificationDataset,
    sources: Optional[Sequence[str]] = None,
    profile: str = "jdd",
) -> Dict:
    """The unsharded verifier's answers, shaped like
    :meth:`ShardVerifier.comparison_document`.

    Runs a plain :class:`~repro.ap.verifier.APVerifier` on the whole
    dataset and exports through the same canonical-interval conversion,
    so equality with the sharded side is byte equality.
    """
    from repro.ap import APVerifier

    verifier = APVerifier(dataset, profile=profile)
    if sources is None:
        sources = sorted(dataset.devices)
    return {
        "reachability": {
            src: result_document(whole_reachability_intervals(verifier, src))
            for src in sources
        },
        "blackholes": result_document(whole_blackhole_intervals(verifier)),
    }


def documents_equal(a: Dict, b: Dict) -> bool:
    """Byte equality of two canonical result documents."""
    return json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
