"""``repro.store`` -- the persistent artifact store and checkpoint layer.

Everything else in this repository computes; this package *remembers*.
Three dependency-free pieces (stdlib + :mod:`repro.obs` only):

* :mod:`repro.store.cas` -- :class:`ArtifactStore`, a content-addressed
  disk store: BLAKE2b-keyed JSON entries, atomic tmp-file +
  ``os.replace`` writes, integrity verification on every read (corrupt
  entries are counted, deleted, and recomputed -- never returned), and
  size-bounded LRU garbage collection.  A process-wide default store
  (:func:`set_default` / :func:`using`) is what the CLI's ``--store
  DIR`` flag installs.
* :mod:`repro.store.checkpoint` -- :class:`CampaignCheckpoint`:
  ``run_campaign`` saves every completed (paper, style) report as it
  finishes and ``resume=True`` re-executes only the missing runs,
  yielding a summary byte-identical to an uninterrupted campaign.
* :mod:`repro.store.memo` -- :func:`memoized` and the concrete
  memoizers (:func:`memoized_solve` for LP results,
  :func:`memoized_component` for pipeline component outcomes).

Consumers wired through the store: the TE tunnel cache
(:class:`repro.te.tunnelcache.TunnelCache` gains a disk tier so warm
tunnel hits survive process restarts), campaigns, and the ``repro
store`` CLI (``ls`` / ``stats`` / ``verify`` / ``gc`` / ``clear``).
Instrumentation: ``store.hit`` / ``store.miss`` / ``store.put`` /
``store.evict`` / ``store.corrupt`` counters in :mod:`repro.obs`.

Typical use::

    from repro import store

    s = store.ArtifactStore(".repro-store", max_bytes=256 << 20)
    with store.using(s):
        run_campaign(["ncflow", "arrow"], checkpoint=store.CampaignCheckpoint(s))
"""

from repro.store.cas import (
    DEFAULT_GC_BYTES,
    SCHEMA,
    ArtifactStore,
    StoreEntry,
    StoreError,
    canonical_payload,
    digest_key,
    digest_payload,
    get_default,
    set_default,
    using,
)
from repro.store.checkpoint import (
    REPORT_SCHEMA,
    CampaignCheckpoint,
    report_from_dict,
    report_to_dict,
)
from repro.store.memo import (
    fingerprint,
    lp_model_key,
    memoized,
    memoized_component,
    memoized_solve,
    solve_result_from_dict,
    solve_result_to_dict,
)

__all__ = [
    "ArtifactStore",
    "CampaignCheckpoint",
    "DEFAULT_GC_BYTES",
    "REPORT_SCHEMA",
    "SCHEMA",
    "StoreEntry",
    "StoreError",
    "canonical_payload",
    "digest_key",
    "digest_payload",
    "fingerprint",
    "get_default",
    "lp_model_key",
    "memoized",
    "memoized_component",
    "memoized_solve",
    "report_from_dict",
    "report_to_dict",
    "set_default",
    "solve_result_from_dict",
    "solve_result_to_dict",
    "using",
]
