"""The content-addressed artifact store: durable, verified, bounded.

Every run of this repository recomputes the same expensive artifacts --
k-shortest tunnel sets, LP solutions, whole campaign reports -- and
throws them away at process exit.  :class:`ArtifactStore` is the disk
tier that makes them survive: a directory of JSON *entries*, each
addressed by the BLAKE2b digest of its logical key and carrying the
BLAKE2b digest of its payload, so a read can prove it is returning
exactly the bytes a writer stored.

Guarantees:

* **Atomic writes** -- every entry is written to a temporary file in
  the same directory and published with :func:`os.replace`, so a
  crashed writer can never leave a truncated entry where a reader will
  find it (readers see the old entry or the new one, nothing between).
* **Verified reads** -- :meth:`ArtifactStore.get` re-hashes the payload
  and compares it with the stored digest; an entry that fails (bit rot,
  a partial write from a non-atomic tool, hand editing) is counted in
  ``store.corrupt``, deleted, and reported as a miss -- corrupt data is
  *never* returned to a caller, and the caller's recompute path takes
  over (fail-soft, in the :mod:`repro.resilience` sense: the miss is
  visible in metrics, not masked).
* **Bounded size** -- :meth:`ArtifactStore.gc` evicts
  least-recently-used entries (read hits refresh recency) until the
  store fits a byte budget; ``max_bytes`` makes that automatic after
  every write.

Instrumentation mirrors the in-memory caches: ``store.hit`` /
``store.miss`` / ``store.put`` / ``store.evict`` counters in
:mod:`repro.obs.metrics`, labeled with the key's leading
``category/`` segment (the unlabeled family series carries the
totals); ``store.corrupt`` stays unlabeled because a corrupt entry's
key may itself be unreadable.

A process-wide default store (mirroring ``obs.set_tracer`` and
``faults.install``) lets the CLI flip persistence on with one
``--store DIR`` flag: :func:`set_default` / :func:`get_default` /
:func:`using`.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro import obs

#: Entry envelope schema; bump the suffix on breaking layout changes.
SCHEMA = "repro.store/1"

#: Byte budget ``repro store gc`` applies when none is given: generous
#: for tunnel sets and campaign reports, small enough to stay polite.
DEFAULT_GC_BYTES = 256 * 1024 * 1024


class StoreError(ValueError):
    """A store directory or entry cannot be used as requested."""


def digest_key(key: str) -> str:
    """The on-disk address of a logical key: BLAKE2b-128 of its UTF-8."""
    return hashlib.blake2b(key.encode(), digest_size=16).hexdigest()


def _category(key: str) -> str:
    """The metric label for a key: its leading ``category/`` segment
    (keys follow the ``category/version/...`` convention)."""
    return key.split("/", 1)[0] if "/" in key else "?"


def digest_payload(payload_bytes: bytes) -> str:
    """Integrity digest of an entry's canonical payload encoding."""
    return hashlib.blake2b(payload_bytes, digest_size=16).hexdigest()


def canonical_payload(payload: object) -> bytes:
    """The canonical JSON encoding integrity digests are computed over.

    Sorted keys and fixed separators make the encoding a pure function
    of the value, so writer and verifier always hash identical bytes.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode()


@dataclass(frozen=True)
class StoreEntry:
    """Metadata of one stored artifact (no payload)."""

    key: str
    path: Path
    size_bytes: int
    created_unix: float
    last_used_unix: float


class ArtifactStore:
    """A disk-backed map from logical keys to JSON payloads.

    Keys are arbitrary strings (convention: ``category/version/...``
    paths, e.g. ``tunnels/1/<topology>/<k>/<commodities>``); the file
    holding an entry is named by the key's BLAKE2b digest and sharded
    git-style under ``objects/<first two hex chars>/``.  Payloads are
    anything :mod:`json` round-trips.  All operations are safe under
    concurrent threads *and* concurrent processes: writes are atomic
    renames, reads verify integrity, and eviction tolerates entries
    vanishing underneath it.
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: Optional[int] = None,
    ):
        if max_bytes is not None and max_bytes < 0:
            raise StoreError("max_bytes must be >= 0")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self._objects = self.root / "objects"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.corruptions = 0

    # ------------------------------------------------------------------
    # Paths and iteration
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Where an entry for ``key`` lives (whether or not it exists)."""
        name = digest_key(key)
        return self._objects / name[:2] / f"{name}.json"

    def _entry_files(self) -> Iterator[Path]:
        if not self._objects.exists():
            return
        for shard in sorted(self._objects.iterdir()):
            if not shard.is_dir():
                continue
            yield from sorted(shard.glob("*.json"))

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def put(self, key: str, payload: object) -> Path:
        """Store ``payload`` under ``key`` atomically; returns the path.

        The envelope (schema, key, payload digest, payload) is written
        to a same-directory temporary file and published with
        :func:`os.replace`, so concurrent readers never observe a
        partial entry.  With ``max_bytes`` set, eviction runs after the
        write so the store stays within budget.
        """
        payload_bytes = canonical_payload(payload)
        envelope = {
            "schema": SCHEMA,
            "key": key,
            "digest": digest_payload(payload_bytes),
            "created_unix": time.time(),
            "payload": payload,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".tmp-{os.getpid()}-{threading.get_ident()}"
        tmp.write_text(json.dumps(envelope, sort_keys=True) + "\n")
        os.replace(tmp, path)
        with self._lock:
            self.puts += 1
        obs.metrics.counter("store.put", category=_category(key)).inc()
        if self.max_bytes is not None:
            self.gc(self.max_bytes)
        return path

    def _read_envelope(self, path: Path) -> Optional[dict]:
        """Parse and integrity-check one entry file; ``None`` if corrupt.

        Any defect -- unreadable JSON, wrong schema, missing fields, or
        a payload whose digest does not match -- counts as corruption:
        the entry is deleted so it cannot fail again, ``store.corrupt``
        is bumped, and the caller falls back to its recompute path.
        """
        try:
            envelope = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            envelope = None
        if isinstance(envelope, dict) and envelope.get("schema") == SCHEMA:
            payload_bytes = canonical_payload(envelope.get("payload"))
            if envelope.get("digest") == digest_payload(payload_bytes):
                return envelope
        with self._lock:
            self.corruptions += 1
        obs.metrics.counter("store.corrupt").inc()
        with contextlib.suppress(OSError):
            path.unlink()
        return None

    def get(self, key: str, default: object = None) -> object:
        """The payload stored under ``key``, or ``default`` on a miss.

        A hit refreshes the entry's recency (its mtime), which is what
        :meth:`gc` orders eviction by.  A corrupt entry is a miss (see
        :meth:`_read_envelope`); the caller recomputes.
        """
        path = self.path_for(key)
        if not path.exists():
            with self._lock:
                self.misses += 1
            obs.metrics.counter("store.miss", category=_category(key)).inc()
            return default
        envelope = self._read_envelope(path)
        if envelope is None or envelope.get("key") != key:
            with self._lock:
                self.misses += 1
            obs.metrics.counter("store.miss", category=_category(key)).inc()
            return default
        with contextlib.suppress(OSError):
            os.utime(path)
        with self._lock:
            self.hits += 1
        obs.metrics.counter("store.hit", category=_category(key)).inc()
        return envelope["payload"]

    def contains(self, key: str) -> bool:
        """Whether an entry file exists for ``key`` (no integrity check)."""
        return self.path_for(key).exists()

    def delete(self, key: str) -> bool:
        """Remove ``key``'s entry if present; returns whether it was."""
        try:
            self.path_for(key).unlink()
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def entries(self) -> List[StoreEntry]:
        """Metadata for every readable entry, sorted by key.

        Unreadable files are skipped here (not deleted); use
        :meth:`verify` to detect and optionally repair them.
        """
        found = []
        for path in self._entry_files():
            try:
                envelope = json.loads(path.read_text())
                stat = path.stat()
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                continue
            if not isinstance(envelope, dict):
                continue
            found.append(StoreEntry(
                key=str(envelope.get("key", "?")),
                path=path,
                size_bytes=stat.st_size,
                created_unix=float(envelope.get("created_unix", 0.0)),
                last_used_unix=stat.st_mtime,
            ))
        return sorted(found, key=lambda entry: entry.key)

    def keys(self) -> List[str]:
        """Every stored logical key, sorted."""
        return [entry.key for entry in self.entries()]

    @property
    def total_bytes(self) -> int:
        """Current on-disk size of all entry files."""
        total = 0
        for path in self._entry_files():
            with contextlib.suppress(OSError):
                total += path.stat().st_size
        return total

    def stats(self) -> Dict[str, int]:
        """Operation counts plus current entry count and byte size."""
        with self._lock:
            counts = {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.evictions,
                "corruptions": self.corruptions,
            }
        counts["entries"] = sum(1 for _ in self._entry_files())
        counts["bytes"] = self.total_bytes
        return counts

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def verify(self, repair: bool = False) -> List[str]:
        """Re-hash every entry; returns the names of the bad files.

        A bad file is one whose envelope does not parse, has the wrong
        schema, or whose payload digest mismatches.  ``repair=True``
        deletes them (each counted in ``store.corrupt``); the default
        only reports, so an operator can look first.
        """
        bad = []
        for path in self._entry_files():
            try:
                envelope = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                envelope = None
            ok = (
                isinstance(envelope, dict)
                and envelope.get("schema") == SCHEMA
                and envelope.get("digest")
                == digest_payload(canonical_payload(envelope.get("payload")))
            )
            if ok:
                continue
            bad.append(path.name)
            if repair:
                with self._lock:
                    self.corruptions += 1
                obs.metrics.counter("store.corrupt").inc()
                with contextlib.suppress(OSError):
                    path.unlink()
        return bad

    def gc(self, max_bytes: Optional[int] = None) -> List[str]:
        """Evict least-recently-used entries until under ``max_bytes``.

        Recency is the entry file's mtime, which reads refresh; ties
        break on path so eviction order is deterministic.  Returns the
        evicted keys (best effort: an entry another process removed
        first is simply skipped).  ``max_bytes=None`` uses the store's
        configured budget and is a no-op for unbounded stores.
        """
        budget = self.max_bytes if max_bytes is None else max_bytes
        if budget is None:
            return []
        with self._lock:
            candidates = []
            total = 0
            for path in self._entry_files():
                try:
                    stat = path.stat()
                except OSError:
                    continue
                candidates.append((stat.st_mtime, str(path), path, stat.st_size))
                total += stat.st_size
            evicted = []
            for _, _, path, size in sorted(candidates):
                if total <= budget:
                    break
                try:
                    envelope = json.loads(path.read_text())
                    key = str(envelope.get("key", path.stem))
                except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                    key = path.stem
                with contextlib.suppress(OSError):
                    path.unlink()
                total -= size
                evicted.append(key)
                self.evictions += 1
                obs.metrics.counter("store.evict", category=_category(key)).inc()
        return evicted

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for path in list(self._entry_files()):
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
        return removed


# ----------------------------------------------------------------------
# Process-wide default store (mirrors obs.set_tracer / faults.install)
# ----------------------------------------------------------------------
_default: Optional[ArtifactStore] = None
_swap_lock = threading.Lock()


def get_default() -> Optional[ArtifactStore]:
    """The installed default store, or ``None`` when persistence is off."""
    return _default


def set_default(store: Optional[ArtifactStore]) -> Optional[ArtifactStore]:
    """Install ``store`` as the process default; returns the previous one."""
    global _default
    with _swap_lock:
        previous = _default
        _default = store
    return previous


@contextlib.contextmanager
def using(store: Optional[ArtifactStore]):
    """Temporarily install ``store`` as the default::

        with store.using(ArtifactStore(tmp_path)) as s:
            run_campaign(...)
    """
    previous = set_default(store)
    try:
        yield store
    finally:
        set_default(previous)
