"""Campaign checkpoints: every completed run survives the process.

A campaign over N (paper, style) combinations is N independent pipeline
runs; when run N-1 crashes the process (or a
:class:`~repro.resilience.FaultInjector` kills a run), everything
already computed is gone.  :class:`CampaignCheckpoint` stores each
completed :class:`~repro.core.metrics.ReproductionReport` in an
:class:`~repro.store.ArtifactStore` the moment it finishes, and
``run_campaign(..., resume=True)`` loads them back -- re-executing
*only* the missing runs and producing a summary byte-identical to an
uninterrupted campaign.

Checkpoints are keyed per run, not per campaign: the key covers the
paper, the prompting style, and the debug-round budget (everything the
simulated pipeline's report depends on), so partial campaigns compose
-- a later campaign over a superset of papers reuses the runs it
shares with an earlier one.  Failures are deliberately *not*
checkpointed: a crashed run must re-execute on resume, never replay
its crash.
"""

from __future__ import annotations

from typing import List, Optional

from repro import obs
from repro.store.cas import ArtifactStore
from repro.store.memo import fingerprint

#: Report payload schema; bump on ReproductionReport shape changes.
REPORT_SCHEMA = "repro.report/1"


def report_to_dict(report) -> dict:
    """A :class:`~repro.core.metrics.ReproductionReport` as a JSON dict."""
    from repro.store.memo import component_outcome_to_dict

    return {
        "schema": REPORT_SCHEMA,
        "paper_key": report.paper_key,
        "participant": report.participant,
        "style": report.style,
        "num_prompts": report.num_prompts,
        "total_prompt_words": report.total_prompt_words,
        "components": [
            component_outcome_to_dict(outcome) for outcome in report.components
        ],
        "reproduced_loc": report.reproduced_loc,
        "reference_loc": report.reference_loc,
        "assembled": report.assembled,
        "validation_passed": report.validation_passed,
        "validation_details": dict(report.validation_details),
        "wall_seconds": report.wall_seconds,
        "metrics": dict(report.metrics),
    }


def report_from_dict(payload: dict):
    """Rebuild a :class:`~repro.core.metrics.ReproductionReport`.

    Raises :class:`ValueError` on an unknown schema rather than
    guessing at fields -- the caller treats that as "no checkpoint" and
    recomputes.
    """
    from repro.core.metrics import ReproductionReport
    from repro.store.memo import component_outcome_from_dict

    if not isinstance(payload, dict) or payload.get("schema") != REPORT_SCHEMA:
        raise ValueError(
            f"unsupported report payload schema "
            f"{payload.get('schema') if isinstance(payload, dict) else payload!r}"
        )
    return ReproductionReport(
        paper_key=str(payload["paper_key"]),
        participant=str(payload["participant"]),
        style=str(payload["style"]),
        num_prompts=int(payload["num_prompts"]),
        total_prompt_words=int(payload["total_prompt_words"]),
        components=[
            component_outcome_from_dict(entry) for entry in payload["components"]
        ],
        reproduced_loc=int(payload["reproduced_loc"]),
        reference_loc=int(payload["reference_loc"]),
        assembled=bool(payload["assembled"]),
        validation_passed=bool(payload["validation_passed"]),
        validation_details=dict(payload["validation_details"]),
        wall_seconds=float(payload["wall_seconds"]),
        metrics={k: float(v) for k, v in payload["metrics"].items()},
    )


class CampaignCheckpoint:
    """Save/load completed campaign runs through an artifact store."""

    def __init__(self, store: ArtifactStore):
        self.store = store

    @staticmethod
    def run_key(paper_key: str, style_value: str, max_debug_rounds: int) -> str:
        """Store key of one (paper, style, rounds) run's checkpoint."""
        return (
            "campaign/1/"
            f"{fingerprint(paper_key, style_value, max_debug_rounds)}"
        )

    def save(
        self, paper_key: str, style_value: str, max_debug_rounds: int, report
    ) -> None:
        """Checkpoint one completed run (overwrites a stale entry)."""
        self.store.put(
            self.run_key(paper_key, style_value, max_debug_rounds),
            report_to_dict(report),
        )
        obs.metrics.counter("campaign.checkpoint.saved").inc()

    def load(
        self, paper_key: str, style_value: str, max_debug_rounds: int
    ) -> Optional[object]:
        """The checkpointed report for a run, or ``None``.

        A payload that fails to decode (schema drift) is treated as
        absent -- the run re-executes, which is always safe.
        """
        payload = self.store.get(
            self.run_key(paper_key, style_value, max_debug_rounds)
        )
        if payload is None:
            return None
        try:
            report = report_from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return None
        obs.metrics.counter("campaign.checkpoint.resumed").inc()
        return report

    def completed(
        self, combos, max_debug_rounds: int
    ) -> List[bool]:
        """Which of ``(paper_key, style_value)`` combos have checkpoints."""
        return [
            self.store.contains(
                self.run_key(paper_key, style_value, max_debug_rounds)
            )
            for paper_key, style_value in combos
        ]
