"""Memoization through the artifact store: compute once, replay forever.

The generic primitive is :func:`memoized`: look a key up in a store,
decode on a hit, compute + encode + put on a miss.  Encoders/decoders
keep the store JSON-only while callers speak domain objects; a schema
*version segment in the key* (``lp/1/...``) is what retires stale
encodings -- bump the version and old entries simply stop being found
(and age out under the LRU garbage collector).

Two concrete memoizers cover the repo's expensive leaf computations:

* :func:`memoized_solve` -- LP solves, keyed by backend name + the
  BLAKE2b digest of the model's canonical LP-text serialisation (the
  same bytes two structurally identical models produce);
* :func:`memoized_component` -- pipeline component outcomes, keyed by
  paper/component/style/rounds.

Failed computations are never stored: only an ``OPTIMAL`` LP result or
an actually-produced outcome is worth replaying, and a cached failure
would mask a real (possibly transient) error -- the same no-masking
rule the resilience layer follows.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Optional, TypeVar

from repro.store.cas import ArtifactStore, get_default

T = TypeVar("T")


def fingerprint(*parts: object) -> str:
    """BLAKE2b-128 hex digest over the repr of each part, in order.

    The stable way to build key segments from heterogeneous inputs
    (names, ints, tuples) without inventing a serialisation per site.
    """
    hasher = hashlib.blake2b(digest_size=16)
    for part in parts:
        hasher.update(repr(part).encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


def memoized(
    key: str,
    compute: Callable[[], T],
    store: Optional[ArtifactStore] = None,
    encode: Callable[[T], object] = lambda value: value,
    decode: Callable[[object], T] = lambda payload: payload,
    should_store: Callable[[T], bool] = lambda value: True,
) -> T:
    """``store[key]`` decoded, or ``compute()`` encoded and stored.

    With no store given the process default is used; with neither, this
    is a transparent call to ``compute()`` -- persistence is always
    opt-in and never required for correctness.  ``should_store``
    filters what is worth keeping (e.g. only optimal LP results).
    """
    target = store if store is not None else get_default()
    if target is None:
        return compute()
    payload = target.get(key, default=_MISS)
    if payload is not _MISS:
        return decode(payload)
    value = compute()
    if should_store(value):
        target.put(key, encode(value))
    return value


_MISS = object()


# ----------------------------------------------------------------------
# LP solve memoization
# ----------------------------------------------------------------------
def solve_result_to_dict(result) -> dict:
    """A :class:`repro.lp.model.SolveResult` as a JSON-able dict."""
    return {
        "status": result.status.value,
        "objective": result.objective,
        "values": list(result.values),
        "iterations": result.iterations,
        "solve_seconds": result.solve_seconds,
        "backend_name": result.backend_name,
    }


def solve_result_from_dict(payload: dict):
    """Rebuild a :class:`repro.lp.model.SolveResult` stored by
    :func:`solve_result_to_dict`."""
    from repro.lp.model import SolveResult, SolveStatus

    return SolveResult(
        status=SolveStatus(payload["status"]),
        objective=float(payload["objective"]),
        values=[float(v) for v in payload["values"]],
        iterations=int(payload["iterations"]),
        solve_seconds=float(payload["solve_seconds"]),
        backend_name=str(payload["backend_name"]),
    )


def lp_model_key(model, backend_name: str) -> str:
    """Store key for one (model, backend) solve.

    The model is fingerprinted through its canonical LP-text form
    (:func:`repro.lp.backends.write_lp_text`), so two models built the
    same way -- regardless of object identity -- share an entry, while
    any change to costs, constraints, or bounds changes the key.
    """
    from repro.lp.backends import write_lp_text

    return f"lp/1/{backend_name}/{fingerprint(write_lp_text(model))}"


def memoized_solve(backend, model, store: Optional[ArtifactStore] = None):
    """``backend.solve(model)`` through the store.

    Only ``OPTIMAL`` results are persisted: infeasible/error outcomes
    re-solve every time, so a transient failure (or an injected fault)
    can never be replayed as if it were the model's true answer.
    """
    return memoized(
        lp_model_key(model, backend.name),
        lambda: backend.solve(model),
        store=store,
        encode=solve_result_to_dict,
        decode=solve_result_from_dict,
        should_store=lambda result: result.ok,
    )


# ----------------------------------------------------------------------
# Pipeline component-outcome memoization
# ----------------------------------------------------------------------
def component_outcome_to_dict(outcome) -> dict:
    """A :class:`repro.core.metrics.ComponentOutcome` as a dict."""
    return {
        "name": outcome.name,
        "revisions": outcome.revisions,
        "debug_rounds": outcome.debug_rounds,
        "final_loc": outcome.final_loc,
        "passed": outcome.passed,
    }


def component_outcome_from_dict(payload: dict):
    """Rebuild a :class:`repro.core.metrics.ComponentOutcome`."""
    from repro.core.metrics import ComponentOutcome

    return ComponentOutcome(
        name=str(payload["name"]),
        revisions=int(payload["revisions"]),
        debug_rounds=int(payload["debug_rounds"]),
        final_loc=int(payload["final_loc"]),
        passed=bool(payload["passed"]),
    )


def memoized_component(
    paper_key: str,
    component: str,
    style: str,
    max_debug_rounds: int,
    compute: Callable[[], object],
    store: Optional[ArtifactStore] = None,
):
    """One pipeline component outcome through the store.

    The key covers everything the simulated pipeline's outcome depends
    on (paper, component, prompting style, debug-round budget); only
    *passing* outcomes persist, so a failed generation is retried on
    the next run instead of being replayed.
    """
    key = (
        f"component/1/{fingerprint(paper_key, component, style, max_debug_rounds)}"
    )
    return memoized(
        key,
        compute,
        store=store,
        encode=component_outcome_to_dict,
        decode=component_outcome_from_dict,
        should_store=lambda outcome: outcome.passed,
    )
