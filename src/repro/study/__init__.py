"""The SIGCOMM/NSDI 2013-2022 reproduction study (paper section 2.1).

The authors collected, for every full research paper in both venues over
ten years: whether the authors open-sourced a prototype, how many other
systems the evaluation compares against, and how many of those had to be
manually reproduced.  The raw per-paper dataset is not published, so
:mod:`repro.study.corpus` builds a *calibrated synthetic corpus*: paper
records whose aggregate statistics deterministically reproduce every
number reported in the paper (32%/29%/31% open source; 59.68% comparing
at least two systems; 2.29 mean manual reproductions; 49.20%/26.65%
reproducing at least one/two).  :mod:`repro.study.analysis` computes the
Figure 1 and Figure 2 series from any corpus.
"""

from repro.study.corpus import PaperRecord, build_corpus
from repro.study.analysis import (
    ComparisonStats,
    OpenSourceStats,
    comparison_stats,
    opensource_stats,
)

__all__ = [
    "ComparisonStats",
    "OpenSourceStats",
    "PaperRecord",
    "build_corpus",
    "comparison_stats",
    "opensource_stats",
]
