"""Figure 1 / Figure 2 analyses over a paper corpus."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.study.corpus import PaperRecord


@dataclass
class OpenSourceStats:
    """Figure 1: open-source prototype availability."""

    per_venue_year: Dict[Tuple[str, int], Tuple[int, int]] = field(
        default_factory=dict
    )  # (venue, year) -> (open, total)
    per_venue: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    combined: Tuple[int, int] = (0, 0)

    def venue_fraction(self, venue: str) -> float:
        opened, total = self.per_venue[venue]
        return opened / total if total else 0.0

    @property
    def combined_fraction(self) -> float:
        opened, total = self.combined
        return opened / total if total else 0.0

    def year_fraction(self, venue: str, year: int) -> float:
        opened, total = self.per_venue_year[(venue, year)]
        return opened / total if total else 0.0

    def rows(self) -> List[Tuple[str, int, int, int, float]]:
        """Printable (venue, year, open, total, fraction) rows."""
        out = []
        for (venue, year), (opened, total) in sorted(self.per_venue_year.items()):
            out.append((venue, year, opened, total, opened / total if total else 0.0))
        return out


@dataclass
class ComparisonStats:
    """Figure 2: systems-in-comparison and manual-reproduction burden."""

    num_papers: int = 0
    compared_histogram: Dict[int, int] = field(default_factory=dict)
    manual_histogram: Dict[int, int] = field(default_factory=dict)
    mean_manual: float = 0.0
    mean_manual_given_any: float = 0.0
    frac_compared_ge2: float = 0.0
    frac_manual_ge1: float = 0.0
    frac_manual_ge2: float = 0.0


def opensource_stats(corpus: Iterable[PaperRecord]) -> OpenSourceStats:
    """Compute the Figure 1 statistics."""
    stats = OpenSourceStats()
    opened_all, total_all = 0, 0
    for record in corpus:
        key = (record.venue, record.year)
        opened, total = stats.per_venue_year.get(key, (0, 0))
        stats.per_venue_year[key] = (opened + int(record.open_source), total + 1)
        opened, total = stats.per_venue.get(record.venue, (0, 0))
        stats.per_venue[record.venue] = (opened + int(record.open_source), total + 1)
        opened_all += int(record.open_source)
        total_all += 1
    stats.combined = (opened_all, total_all)
    return stats


def comparison_stats(corpus: Iterable[PaperRecord]) -> ComparisonStats:
    """Compute the Figure 2 statistics."""
    stats = ComparisonStats()
    manual_sum = 0
    compared_ge2 = 0
    manual_ge1 = 0
    manual_ge2 = 0
    for record in corpus:
        stats.num_papers += 1
        stats.compared_histogram[record.num_compared] = (
            stats.compared_histogram.get(record.num_compared, 0) + 1
        )
        stats.manual_histogram[record.num_manual] = (
            stats.manual_histogram.get(record.num_manual, 0) + 1
        )
        manual_sum += record.num_manual
        if record.num_compared >= 2:
            compared_ge2 += 1
        if record.num_manual >= 1:
            manual_ge1 += 1
        if record.num_manual >= 2:
            manual_ge2 += 1
    if stats.num_papers:
        stats.mean_manual = manual_sum / stats.num_papers
        stats.frac_compared_ge2 = compared_ge2 / stats.num_papers
        stats.frac_manual_ge1 = manual_ge1 / stats.num_papers
        stats.frac_manual_ge2 = manual_ge2 / stats.num_papers
    if manual_ge1:
        stats.mean_manual_given_any = manual_sum / manual_ge1
    return stats
