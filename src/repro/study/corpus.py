"""Calibrated synthetic corpus of SIGCOMM/NSDI 2013-2022 papers.

Counts per (venue, year) approximate the real accepted-paper counts; the
open-source flags and comparison counts are allocated *deterministically*
(largest-remainder apportionment, not sampling) so the corpus reproduces
the paper's reported aggregates exactly up to rounding:

* 32% of SIGCOMM and 29% of NSDI papers open-source their prototype
  (31% combined), with the flag share drifting upward over the decade;
* 59.68% of papers compare against at least two other systems;
* papers manually reproduce 2.29 other systems on average;
* 49.20% / 26.65% manually reproduce at least one / two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Papers per year, 2013..2022 (approximate real accepted counts).
VENUE_YEAR_COUNTS: Dict[str, List[int]] = {
    "SIGCOMM": [38, 45, 40, 39, 36, 40, 32, 54, 55, 55],
    "NSDI": [38, 38, 42, 45, 46, 40, 49, 48, 59, 83],
}

YEARS = list(range(2013, 2023))

#: Rates are chosen so the *rounded* venue and combined percentages match
#: the paper exactly (32% SIGCOMM, 29% NSDI, 31% combined) -- the paper's
#: own three figures cannot all be exact simultaneously, so rounding is
#: the right calibration target.
OPEN_SOURCE_RATE = {"SIGCOMM": 0.3245, "NSDI": 0.294}

#: Distribution of the number of *manually reproduced* systems per paper,
#: solved from the paper's aggregates: P(>=1)=0.4920, P(>=2)=0.2665, and
#: a mean of 2.29 *among papers that reproduce at least one* (the only
#: internally consistent reading of the paper's "2.29 systems on
#: average"; see EXPERIMENTS.md).
MANUAL_DISTRIBUTION: List[Tuple[int, float]] = [
    (0, 0.5080),
    (1, 0.2255),
    (2, 0.0900),
    (3, 0.0820),
    (4, 0.0480),
    (5, 0.0250),
    (6, 0.0125),
    (8, 0.0065),
    (12, 0.0025),
]

#: Extra compared systems that did NOT need manual reproduction (an
#: open-source or author-provided prototype was reused), tuned so that
#: P(compared >= 2) lands at 59.68%.
EXTRA_COMPARED_DISTRIBUTION: List[Tuple[int, float]] = [
    (0, 0.34),
    (1, 0.30),
    (2, 0.26),
    (3, 0.10),
]


@dataclass(frozen=True)
class PaperRecord:
    """One paper in the study."""

    venue: str
    year: int
    index: int
    open_source: bool
    num_manual: int
    num_compared: int

    @property
    def paper_id(self) -> str:
        return f"{self.venue}-{self.year}-{self.index:03d}"


def _apportion(total: int, weights: List[float]) -> List[int]:
    """Largest-remainder apportionment of ``total`` across ``weights``."""
    raw = [total * w for w in weights]
    floors = [int(r) for r in raw]
    shortfall = total - sum(floors)
    remainders = sorted(
        range(len(raw)), key=lambda i: (raw[i] - floors[i]), reverse=True
    )
    for i in remainders[:shortfall]:
        floors[i] += 1
    return floors


def _counts_from_distribution(
    total: int, distribution: List[Tuple[int, float]]
) -> List[int]:
    """Expand an apportioned distribution into one value per paper."""
    weights = [p for _, p in distribution]
    counts = _apportion(total, weights)
    values: List[int] = []
    for (value, _), count in zip(distribution, counts):
        values.extend([value] * count)
    return values


def _open_source_flags(venue: str, year_counts: List[int]) -> List[List[bool]]:
    """Open-source flags per year with an upward drift, exact venue total."""
    total = sum(year_counts)
    target = round(OPEN_SOURCE_RATE[venue] * total)
    # Weight later years more (open sourcing became more common).
    drift = [0.55 + 0.1 * i for i in range(len(year_counts))]
    weights_raw = [c * d for c, d in zip(year_counts, drift)]
    weight_sum = sum(weights_raw)
    weights = [w / weight_sum for w in weights_raw]
    per_year = _apportion(target, weights)
    # An apportioned year can exceed its paper count; push overflow forward.
    flags: List[List[bool]] = []
    carry = 0
    for count, opened in zip(year_counts, per_year):
        opened += carry
        carry = max(0, opened - count)
        opened = min(opened, count)
        flags.append([i < opened for i in range(count)])
    return flags


def build_corpus() -> List[PaperRecord]:
    """The full deterministic corpus (both venues, all ten years)."""
    records: List[PaperRecord] = []
    total_papers = sum(sum(c) for c in VENUE_YEAR_COUNTS.values())
    manual_values = _counts_from_distribution(total_papers, MANUAL_DISTRIBUTION)
    extra_values = _counts_from_distribution(
        total_papers, EXTRA_COMPARED_DISTRIBUTION
    )
    # Interleave deterministically so neither venue hoards the tail: sort
    # positions by a fixed stride pattern.
    manual_values.sort()
    extra_values.sort()
    manual_order = _stride_order(total_papers, stride=7)
    extra_order = _stride_order(total_papers, stride=11)
    manual_assigned = [manual_values[pos] for pos in manual_order]
    extra_assigned = [extra_values[pos] for pos in extra_order]

    cursor = 0
    for venue in sorted(VENUE_YEAR_COUNTS):
        year_counts = VENUE_YEAR_COUNTS[venue]
        flags = _open_source_flags(venue, year_counts)
        for year, count, year_flags in zip(YEARS, year_counts, flags):
            for index in range(count):
                manual = manual_assigned[cursor]
                extra = extra_assigned[cursor]
                cursor += 1
                records.append(
                    PaperRecord(
                        venue=venue,
                        year=year,
                        index=index,
                        open_source=year_flags[index],
                        num_manual=manual,
                        num_compared=manual + extra,
                    )
                )
    return records


def _stride_order(total: int, stride: int = 7) -> List[int]:
    """A fixed permutation of 0..total-1 that spreads ranks around."""
    seen = [False] * total
    order = []
    position = 0
    for _ in range(total):
        while seen[position]:
            position = (position + 1) % total
        order.append(position)
        seen[position] = True
        position = (position + stride) % total
    return order
