"""Traffic engineering substrate: the two TE systems plus their baselines.

* :mod:`repro.te.maxflow` -- PF-k: the path-formulation multi-commodity
  max-flow LP (the "PF4" optimal baseline of the NCFlow paper).
* :mod:`repro.te.ncflow` -- NCFlow: contract the WAN into clusters, solve
  small flow problems per cluster and on the contracted graph, combine
  conservatively (participant A's system).
* :mod:`repro.te.arrow` -- ARROW: restoration-aware TE under fiber cuts,
  in the two variants whose inconsistency explains participant B's 30%
  objective gap (paper-faithful vs open-source-faithful).
* :mod:`repro.te.registry` -- the unified solver layer: every solver
  above is resolvable by name behind the :class:`TESolver` protocol,
  with explicit LP-backend injection.
* :mod:`repro.te.tunnelcache` -- process-wide k-shortest-tunnel cache
  shared by all path-formulation solvers.
"""

from repro.te.solution import TESolution
from repro.te.maxflow import solve_max_flow, solve_max_flow_edge
from repro.te.demandscale import ScalePoint, max_feasible_scale, scale_sweep
from repro.te.fleischer import solve_fleischer
from repro.te.mlu import solve_min_mlu
from repro.te.paths import k_shortest_tunnels, path_links
from repro.te import registry
from repro.te.registry import (
    SolverCapabilities,
    SolverSpec,
    TESolver,
    UnknownSolverError,
    make_solver,
    solver_names,
)
from repro.te.tunnelcache import (
    TUNNEL_CACHE,
    TunnelCache,
    cached_k_shortest_tunnels,
    topology_fingerprint,
)

__all__ = [
    "ScalePoint",
    "SolverCapabilities",
    "SolverSpec",
    "TESolution",
    "TESolver",
    "TUNNEL_CACHE",
    "TunnelCache",
    "UnknownSolverError",
    "cached_k_shortest_tunnels",
    "k_shortest_tunnels",
    "make_solver",
    "max_feasible_scale",
    "path_links",
    "registry",
    "scale_sweep",
    "solve_fleischer",
    "solve_max_flow",
    "solve_max_flow_edge",
    "solve_min_mlu",
    "solver_names",
    "topology_fingerprint",
]
