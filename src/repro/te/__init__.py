"""Traffic engineering substrate: the two TE systems plus their baseline.

* :mod:`repro.te.maxflow` -- PF-k: the path-formulation multi-commodity
  max-flow LP (the "PF4" optimal baseline of the NCFlow paper).
* :mod:`repro.te.ncflow` -- NCFlow: contract the WAN into clusters, solve
  small flow problems per cluster and on the contracted graph, combine
  conservatively (participant A's system).
* :mod:`repro.te.arrow` -- ARROW: restoration-aware TE under fiber cuts,
  in the two variants whose inconsistency explains participant B's 30%
  objective gap (paper-faithful vs open-source-faithful).
"""

from repro.te.solution import TESolution
from repro.te.maxflow import solve_max_flow, solve_max_flow_edge
from repro.te.demandscale import ScalePoint, max_feasible_scale, scale_sweep
from repro.te.fleischer import solve_fleischer
from repro.te.mlu import solve_min_mlu
from repro.te.paths import k_shortest_tunnels, path_links

__all__ = [
    "ScalePoint",
    "TESolution",
    "k_shortest_tunnels",
    "max_feasible_scale",
    "path_links",
    "scale_sweep",
    "solve_fleischer",
    "solve_max_flow",
    "solve_max_flow_edge",
    "solve_min_mlu",
]
