"""ARROW: restoration-aware traffic engineering (SIGCOMM 2021).

The system participant B reproduced.  ARROW couples TE with *optical
restoration*: when a fiber is cut, spare wavelengths can restore part of
the lost IP capacity, and the TE formulation decides flows that remain
feasible under every failure scenario given the restoration.

The paper's experiment found an up-to-30% objective gap between the
reproduction (built from the paper text) and the open-source prototype,
caused by two documented inconsistencies; both variants are implemented:

* ``variant="paper"`` -- restoration capacities are *predefined
  parameters* (a fixed fraction of each designated restorable link), and
  a tunnel crossing a cut fiber is restorable only if all its cut links
  are designated;
* ``variant="code"`` -- restoration capacities are *decision variables*
  (the LP allocates a per-fiber wavelength budget across the cut links),
  and every tunnel is restorable.

``variant="none"`` disables restoration entirely (the no-restoration
baseline in the ARROW paper's comparisons).
"""

from repro.te.arrow.restoration import (
    FailureScenario,
    RestorationTicket,
    designated_restorable_links,
    generate_tickets,
    single_fiber_scenarios,
)
from repro.te.arrow.solver import ArrowSolver

__all__ = [
    "ArrowSolver",
    "FailureScenario",
    "RestorationTicket",
    "designated_restorable_links",
    "generate_tickets",
    "single_fiber_scenarios",
]
