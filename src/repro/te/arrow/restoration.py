"""Failure scenarios and optical-restoration modelling for ARROW."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.netmodel.topology import Topology

Edge = Tuple[str, str]


@dataclass(frozen=True)
class FailureScenario:
    """One failure: the set of cut fibers (empty = no failure)."""

    name: str
    cut_fibers: FrozenSet[str]

    @property
    def is_baseline(self) -> bool:
        return not self.cut_fibers

    def cuts_link(self, topology: Topology, src: str, dst: str) -> bool:
        return topology.fiber_of(src, dst) in self.cut_fibers


def single_fiber_scenarios(
    topology: Topology,
    limit: Optional[int] = None,
    include_baseline: bool = True,
) -> List[FailureScenario]:
    """One scenario per fiber (every-other fiber when ``limit`` binds).

    The deterministic stride-based subsampling keeps benchmark scenario
    sets stable across runs while still spreading cuts over the topology.
    """
    fibers = topology.fibers()
    if limit is not None and limit < len(fibers):
        stride = max(1, len(fibers) // limit)
        fibers = fibers[::stride][:limit]
    scenarios = []
    if include_baseline:
        scenarios.append(FailureScenario("no-failure", frozenset()))
    for fiber in fibers:
        scenarios.append(FailureScenario(f"cut:{fiber}", frozenset([fiber])))
    return scenarios


def designated_restorable_links(topology: Topology, fiber: str) -> List[Edge]:
    """The links on ``fiber`` that the paper variant designates restorable.

    The paper (as participant B read it) fixes the restoration targets in
    advance; we model that as the first half of the fiber's links in
    sorted order -- a deterministic, topology-only designation.
    """
    links = sorted(
        (link.src, link.dst) for link in topology.links_on_fiber(fiber)
    )
    keep = math.ceil(len(links) / 2)
    return links[:keep]


def cut_links(topology: Topology, scenario: FailureScenario) -> List[Edge]:
    """All directed links lost in ``scenario``."""
    lost: List[Edge] = []
    for fiber in sorted(scenario.cut_fibers):
        lost.extend(
            (link.src, link.dst) for link in topology.links_on_fiber(fiber)
        )
    return sorted(set(lost))


@dataclass(frozen=True)
class RestorationTicket:
    """One discrete restoration candidate for a cut fiber.

    ARROW's "lottery ticket" abstraction: the optical layer proposes a
    set of candidates per fiber, each a concrete allocation of the spare
    wavelength budget to the failed IP links; the TE layer picks among
    them (here: an LP-relaxed convex combination).
    """

    name: str
    fiber: str
    restored: Tuple[Tuple[Edge, float], ...]

    def restored_map(self) -> dict:
        return dict(self.restored)

    @property
    def total_restored(self) -> float:
        return sum(capacity for _, capacity in self.restored)


def generate_tickets(
    topology: Topology,
    fiber: str,
    budget_fraction: float = 0.5,
) -> List[RestorationTicket]:
    """Deterministic restoration candidates for one fiber.

    Candidates model the knobs the optical layer actually has: spread the
    wavelength budget evenly, or concentrate it on one failed link (one
    candidate per link), always capped by each link's original capacity.
    """
    links = sorted(
        (link.src, link.dst, link.capacity)
        for link in topology.links_on_fiber(fiber)
    )
    if not links:
        return []
    budget = budget_fraction * sum(capacity for _, _, capacity in links)

    tickets: List[RestorationTicket] = []

    # Candidate 0: spread evenly (capped per link).
    share = budget / len(links)
    spread = tuple(
        ((src, dst), min(share, capacity)) for src, dst, capacity in links
    )
    tickets.append(RestorationTicket(f"{fiber}#spread", fiber, spread))

    # One candidate per link: concentrate the budget there, spill the
    # remainder evenly over the other links.
    for focus_index, (focus_src, focus_dst, focus_capacity) in enumerate(links):
        allocation = {}
        used = min(budget, focus_capacity)
        allocation[(focus_src, focus_dst)] = used
        remainder = budget - used
        others = [l for i, l in enumerate(links) if i != focus_index]
        if others and remainder > 0:
            per_other = remainder / len(others)
            for src, dst, capacity in others:
                allocation[(src, dst)] = min(per_other, capacity)
        restored = tuple(
            ((src, dst), allocation.get((src, dst), 0.0))
            for src, dst, _ in links
        )
        tickets.append(
            RestorationTicket(f"{fiber}#focus{focus_index}", fiber, restored)
        )
    return tickets
