"""The ARROW LP: failure-scenario-robust max flow with restoration.

Formulation (simplified from the ARROW paper's MaxFlow objective, but
preserving its structure):

* ``f_k`` -- admitted flow of commodity ``k`` (bounded by demand);
* ``y_{t,q}`` -- flow on tunnel ``t`` in scenario ``q``;
* per scenario, surviving tunnels of each commodity must carry ``f_k``,
  and per-link tunnel flow must fit the scenario's capacity;
* scenario capacity of a link on a cut fiber depends on the variant:
  ``paper`` uses predefined restored capacities on designated links,
  ``code`` makes restoration a decision variable under a per-fiber
  wavelength budget, ``none`` restores nothing.

maximize ``sum_k f_k``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.lp import LinExpr, Model, LPBackend
from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficMatrix
from repro.te.arrow.restoration import (
    FailureScenario,
    designated_restorable_links,
    single_fiber_scenarios,
)
from repro.te.paths import path_links
from repro.te.solution import TESolution
from repro.te.tunnelcache import cached_k_shortest_tunnels

Edge = Tuple[str, str]

#: ``paper`` / ``code`` are the two variants behind participant B's 30%
#: finding; ``none`` disables restoration; ``ticket`` is the full
#: lottery-ticket abstraction of the original system (LP-relaxed choice
#: among discrete per-fiber restoration candidates).
_VARIANTS = ("paper", "code", "none", "ticket")


class ArrowSolver:
    """Restoration-aware TE solver (see module docstring for variants)."""

    def __init__(
        self,
        variant: str = "code",
        num_tunnels: int = 3,
        backend: Optional[LPBackend] = None,
        restore_fraction: float = 0.5,
        budget_fraction: float = 0.5,
    ):
        if variant not in _VARIANTS:
            raise KeyError(f"variant must be one of {_VARIANTS}, got {variant!r}")
        if not 0.0 <= restore_fraction <= 1.0:
            raise ValueError("restore_fraction must be in [0, 1]")
        if not 0.0 <= budget_fraction <= 1.0:
            raise ValueError("budget_fraction must be in [0, 1]")
        self.variant = variant
        self.num_tunnels = num_tunnels
        self.backend = backend
        self.restore_fraction = restore_fraction
        self.budget_fraction = budget_fraction

    def solve(
        self,
        topology: Topology,
        traffic: TrafficMatrix,
        scenarios: Optional[List[FailureScenario]] = None,
    ) -> TESolution:
        with obs.span(
            "te.arrow.solve", variant=self.variant, topology=topology.name
        ) as sp:
            if scenarios is None:
                scenarios = single_fiber_scenarios(topology)
            tunnels = cached_k_shortest_tunnels(topology, traffic, self.num_tunnels)

            model = Model(f"arrow-{self.variant}:{topology.name}")
            admitted: Dict[Tuple[str, str], object] = {}
            for (src, dst) in sorted(tunnels):
                admitted[(src, dst)] = model.add_var(
                    name=f"f[{src}->{dst}]", upper=traffic.demand(src, dst)
                )

            with obs.span("te.arrow.scenarios", count=len(scenarios)):
                for scenario_id, scenario in enumerate(scenarios):
                    self._add_scenario(
                        model, topology, tunnels, admitted, scenario, scenario_id
                    )

            model.maximize(LinExpr.sum_of(admitted.values()))
            result = model.solve(backend=self.backend).require_optimal(model)

            per_commodity: Dict[Tuple[str, str], float] = {}
            for key, var in admitted.items():
                per_commodity[key] = result.value_of(var)
            solution = TESolution(
                solver=f"arrow-{self.variant}",
                objective=result.objective,
                flow_per_commodity=per_commodity,
                lp_count=1,
                status=result.status.value,
            )
        solution.solve_seconds = sp.duration
        return solution

    # ------------------------------------------------------------------
    # Scenario constraints
    # ------------------------------------------------------------------
    def _add_scenario(
        self,
        model: Model,
        topology: Topology,
        tunnels: Dict[Tuple[str, str], List[List[str]]],
        admitted: Dict[Tuple[str, str], object],
        scenario: FailureScenario,
        scenario_id: int,
    ) -> None:
        restored_caps, restored_vars = self._restoration(
            model, topology, scenario, scenario_id
        )
        link_usage: Dict[Edge, LinExpr] = {}
        for (src, dst) in sorted(tunnels):
            alive_vars = []
            for index, path in enumerate(tunnels[(src, dst)]):
                links = path_links(path)
                if not self._tunnel_alive(topology, scenario, links):
                    continue
                var = model.add_var(name=f"y{scenario_id}[{src}->{dst}:{index}]")
                alive_vars.append(var)
                for link in links:
                    link_usage.setdefault(link, LinExpr())._iadd(var)
            expr = LinExpr.sum_of(alive_vars)
            model.add_constraint(
                expr >= admitted[(src, dst)],
                name=f"sat{scenario_id}[{src}->{dst}]",
            )
        for (link_src, link_dst), usage in sorted(link_usage.items()):
            if scenario.cuts_link(topology, link_src, link_dst):
                if (link_src, link_dst) in restored_vars:
                    restored = restored_vars[(link_src, link_dst)]
                    model.add_constraint(
                        (usage - restored) <= 0.0,
                        name=f"rcap{scenario_id}[{link_src}->{link_dst}]",
                    )
                else:
                    cap = restored_caps.get((link_src, link_dst), 0.0)
                    model.add_constraint(
                        usage <= cap,
                        name=f"rcap{scenario_id}[{link_src}->{link_dst}]",
                    )
            else:
                model.add_constraint(
                    usage <= topology.capacity(link_src, link_dst),
                    name=f"cap{scenario_id}[{link_src}->{link_dst}]",
                )

    def _restoration(
        self,
        model: Model,
        topology: Topology,
        scenario: FailureScenario,
        scenario_id: int,
    ) -> Tuple[Dict[Edge, float], Dict[Edge, object]]:
        """Per-variant restored capacity: fixed values and/or LP variables."""
        fixed: Dict[Edge, float] = {}
        variables: Dict[Edge, object] = {}
        if scenario.is_baseline or self.variant == "none":
            return fixed, variables
        for fiber in sorted(scenario.cut_fibers):
            fiber_links = sorted(
                (link.src, link.dst, link.capacity)
                for link in topology.links_on_fiber(fiber)
            )
            if self.variant == "paper":
                designated = set(designated_restorable_links(topology, fiber))
                for src, dst, capacity in fiber_links:
                    if (src, dst) in designated:
                        fixed[(src, dst)] = self.restore_fraction * capacity
            elif self.variant == "ticket":
                self._ticket_restoration(
                    model, topology, fiber, fiber_links, variables, scenario_id
                )
            else:  # code variant: budgeted decision variables
                budget = self.budget_fraction * sum(
                    capacity for _, _, capacity in fiber_links
                )
                budget_expr = LinExpr()
                for src, dst, capacity in fiber_links:
                    var = model.add_var(
                        name=f"r{scenario_id}[{src}->{dst}]", upper=capacity
                    )
                    variables[(src, dst)] = var
                    budget_expr._iadd(var)
                model.add_constraint(
                    budget_expr <= budget, name=f"budget{scenario_id}[{fiber}]"
                )
        return fixed, variables

    def _ticket_restoration(
        self,
        model: Model,
        topology: Topology,
        fiber: str,
        fiber_links,
        variables: Dict[Edge, object],
        scenario_id: int,
    ) -> None:
        """Lottery tickets: restored capacity is a convex combination of
        the fiber's discrete restoration candidates."""
        from repro.te.arrow.restoration import generate_tickets

        tickets = generate_tickets(
            topology, fiber, budget_fraction=self.budget_fraction
        )
        weight_vars = [
            model.add_var(name=f"w{scenario_id}[{ticket.name}]", upper=1.0)
            for ticket in tickets
        ]
        model.add_constraint(
            LinExpr.sum_of(weight_vars) <= 1.0,
            name=f"tickets{scenario_id}[{fiber}]",
        )
        for src, dst, _capacity in fiber_links:
            restored = LinExpr()
            for ticket, weight in zip(tickets, weight_vars):
                amount = ticket.restored_map().get((src, dst), 0.0)
                if amount > 0.0:
                    restored._iadd(weight, sign=amount)
            # Materialise as a variable so the capacity constraints can
            # treat ticket restoration like the code variant's.
            var = model.add_var(name=f"r{scenario_id}[{src}->{dst}]")
            model.add_constraint(
                (LinExpr.from_term(var) - restored).equals(0.0),
                name=f"rdef{scenario_id}[{src}->{dst}]",
            )
            variables[(src, dst)] = var

    def _tunnel_alive(
        self,
        topology: Topology,
        scenario: FailureScenario,
        links: List[Edge],
    ) -> bool:
        """Variant-specific "restorable tunnel" definition.

        * ``code``: every tunnel survives (restored capacity limits it);
        * ``paper``: a tunnel crossing a cut fiber survives only if all
          its cut links are designated restorable;
        * ``none``: a tunnel crossing any cut fiber is dead.
        """
        if scenario.is_baseline or self.variant in ("code", "ticket"):
            return True
        crossed = [
            (src, dst)
            for src, dst in links
            if scenario.cuts_link(topology, src, dst)
        ]
        if not crossed:
            return True
        if self.variant == "none":
            return False
        designated = set()
        for fiber in scenario.cut_fibers:
            designated.update(designated_restorable_links(topology, fiber))
        return all(link in designated for link in crossed)
