"""Demand-scaling utilities.

The NCFlow evaluation sweeps traffic-matrix *scale factors* to probe
solvers from underload to overload.  These helpers find the maximum
scale at which all demand still fits and sweep a solver across scale
factors, producing the satisfied-fraction series the crossover plots
are made of.

Both entry points resolve solvers through :mod:`repro.te.registry`
(a registry name, a :class:`~repro.te.registry.TESolver`, or a bare
``solve(topology, traffic)`` callable all work), and ``scale_sweep``
fans sweep points out over worker threads while preserving the serial
result order.  Scaling a matrix keeps its nonzero commodity keys, so
every solve after the first reuses the shared tunnel cache instead of
re-running k-shortest-paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Union

from repro import obs
from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficMatrix
from repro.parallel import run_ordered
from repro.te.solution import TESolution

SolverLike = Union[str, Callable[[Topology, TrafficMatrix], TESolution], object]


def _resolve_solver(solver: SolverLike, backend=None) -> Callable[
    [Topology, TrafficMatrix], TESolution
]:
    """Registry name, TESolver instance, or bare callable -> solve fn."""
    if isinstance(solver, str):
        from repro.te import registry

        return registry.make_solver(solver, backend=backend).solve
    solve = getattr(solver, "solve", None)
    if callable(solve):
        return solve
    if callable(solver):
        return solver
    raise TypeError(
        f"solver must be a registry name, a TESolver, or a callable; "
        f"got {type(solver).__name__}"
    )


@dataclass(frozen=True)
class ScalePoint:
    """One point of a scale sweep."""

    scale: float
    total_demand: float
    objective: float

    @property
    def satisfied_fraction(self) -> float:
        if self.total_demand <= 0:
            return 0.0
        return self.objective / self.total_demand


def max_feasible_scale(
    topology: Topology,
    traffic: TrafficMatrix,
    tolerance: float = 0.01,
    upper_start: float = 4.0,
    oracle: SolverLike = "edge",
    backend=None,
) -> float:
    """Largest demand scale at which ALL demand can still be routed.

    Binary search over the scale factor.  ``oracle`` names the
    feasibility solver (all demand fits iff objective == demand); the
    default is the exact edge formulation.  A path-formulation oracle
    (e.g. ``"pf4"``) runs k-shortest-paths at most once per
    (topology, k): the search rescales the same commodity keys, so every
    probe after the first hits the shared tunnel cache.
    """
    if traffic.total_demand <= 0:
        raise ValueError("traffic matrix has no demand")
    solve = _resolve_solver(oracle, backend=backend)

    def fits(scale: float) -> bool:
        scaled = traffic.scaled(scale)
        solution = solve(topology, scaled)
        return solution.objective >= scaled.total_demand * (1 - 1e-6)

    with obs.span(
        "te.max_feasible_scale", topology=topology.name, tolerance=tolerance
    ):
        low = 0.0
        high = upper_start
        # Grow the bracket until demand no longer fits.
        for _ in range(20):
            if not fits(high):
                break
            low = high
            high *= 2.0
        else:
            return high
        while high - low > tolerance * max(high, 1.0):
            middle = (low + high) / 2.0
            if fits(middle):
                low = middle
            else:
                high = middle
    return low


def scale_sweep(
    topology: Topology,
    traffic: TrafficMatrix,
    solver: SolverLike,
    scales: List[float],
    workers: int = 1,
    backend=None,
    on_error: str = "raise",
) -> List[ScalePoint]:
    """Run ``solver`` at each demand scale; returns one point per scale.

    ``workers > 1`` solves the points on a thread pool; the returned
    list is always in ``scales`` order, identical to a serial run.
    ``on_error="collect"`` makes the sweep fail-soft: a raising sweep
    point (an injected fault, an ``LPSolveError``) yields a structured
    :class:`~repro.parallel.TaskFailure` at its position instead of
    killing the whole sweep.
    """
    for scale in scales:
        if scale <= 0:
            raise ValueError("scales must be positive")
    solve = _resolve_solver(solver, backend=backend)

    phase = obs.PROGRESS.phase(
        "scale_sweep", total=len(scales), topology=topology.name
    )

    def point_at(scale: float) -> ScalePoint:
        label = f"scale={scale:g}"
        phase.task_start(label)
        try:
            scaled = traffic.scaled(scale)
            solution = solve(topology, scaled)
        except BaseException as exc:
            phase.task_finish(label, ok=False, error=type(exc).__name__)
            raise
        phase.task_finish(label)
        return ScalePoint(
            scale=scale,
            total_demand=scaled.total_demand,
            objective=solution.objective,
        )

    with obs.span(
        "te.scale_sweep",
        topology=topology.name,
        points=len(scales),
        workers=workers,
    ):
        try:
            return run_ordered(
                [lambda scale=scale: point_at(scale) for scale in scales],
                workers=workers,
                on_error=on_error,
            )
        finally:
            phase.finish()
