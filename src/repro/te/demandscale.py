"""Demand-scaling utilities.

The NCFlow evaluation sweeps traffic-matrix *scale factors* to probe
solvers from underload to overload.  These helpers find the maximum
scale at which all demand still fits (via the exact edge-formulation
max flow) and sweep a solver across scale factors, producing the
satisfied-fraction series the crossover plots are made of.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficMatrix
from repro.te.maxflow import solve_max_flow_edge
from repro.te.solution import TESolution


@dataclass(frozen=True)
class ScalePoint:
    """One point of a scale sweep."""

    scale: float
    total_demand: float
    objective: float

    @property
    def satisfied_fraction(self) -> float:
        if self.total_demand <= 0:
            return 0.0
        return self.objective / self.total_demand


def max_feasible_scale(
    topology: Topology,
    traffic: TrafficMatrix,
    tolerance: float = 0.01,
    upper_start: float = 4.0,
) -> float:
    """Largest demand scale at which ALL demand can still be routed.

    Binary search over the scale factor, using the exact edge-formulation
    max flow as the oracle (all demand fits iff objective == demand).
    """
    if traffic.total_demand <= 0:
        raise ValueError("traffic matrix has no demand")

    def fits(scale: float) -> bool:
        scaled = traffic.scaled(scale)
        solution = solve_max_flow_edge(topology, scaled)
        return solution.objective >= scaled.total_demand * (1 - 1e-6)

    low = 0.0
    high = upper_start
    # Grow the bracket until demand no longer fits.
    for _ in range(20):
        if not fits(high):
            break
        low = high
        high *= 2.0
    else:
        return high
    while high - low > tolerance * max(high, 1.0):
        middle = (low + high) / 2.0
        if fits(middle):
            low = middle
        else:
            high = middle
    return low


def scale_sweep(
    topology: Topology,
    traffic: TrafficMatrix,
    solver: Callable[[Topology, TrafficMatrix], TESolution],
    scales: List[float],
) -> List[ScalePoint]:
    """Run ``solver`` at each demand scale; returns one point per scale."""
    points: List[ScalePoint] = []
    for scale in scales:
        if scale <= 0:
            raise ValueError("scales must be positive")
        scaled = traffic.scaled(scale)
        solution = solver(topology, scaled)
        points.append(
            ScalePoint(
                scale=scale,
                total_demand=scaled.total_demand,
                objective=solution.objective,
            )
        )
    return points
