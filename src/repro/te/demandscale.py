"""Demand-scaling utilities.

The NCFlow evaluation sweeps traffic-matrix *scale factors* to probe
solvers from underload to overload.  These helpers find the maximum
scale at which all demand still fits and sweep a solver across scale
factors, producing the satisfied-fraction series the crossover plots
are made of.

Both entry points resolve solvers through :mod:`repro.te.registry`
(a registry name, a :class:`~repro.te.registry.TESolver`, or a bare
``solve(topology, traffic)`` callable all work), and ``scale_sweep``
fans sweep points out over worker threads while preserving the serial
result order.  Scaling a matrix keeps its nonzero commodity keys, so
every solve after the first reuses the shared tunnel cache instead of
re-running k-shortest-paths.

Sweep points are near-identical LPs, so both entry points can carry an
LP solve session (:mod:`repro.lp.session`) across their solves instead
of solving each point cold:

* ``max_feasible_scale`` threads one warm session through the whole
  bisection by default (a single deterministic chain of probes);
* ``scale_sweep(warm_start=True)`` splits the scales into one
  *contiguous chunk per worker* and carries a session down each chunk.
  Chunking is a pure function of ``(len(scales), workers)``, so a
  warm parallel sweep always produces the same chains as a warm serial
  run partitioned the same way -- never a scheduler-dependent
  assignment.  The default stays cold, which keeps the historical
  bit-for-bit ``parallel == serial`` guarantee; warm results agree
  with cold to LP-solver tolerance rather than to the last bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro import obs
from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficMatrix
from repro.parallel import TaskFailure, run_ordered
from repro.te.solution import TESolution

SolverLike = Union[str, Callable[[Topology, TrafficMatrix], TESolution], object]


def _resolve_solver(solver: SolverLike, backend=None) -> Callable[
    [Topology, TrafficMatrix], TESolution
]:
    """Registry name, TESolver instance, or bare callable -> solve fn."""
    if isinstance(solver, str):
        from repro.te import registry

        return registry.make_solver(solver, backend=backend).solve
    solve = getattr(solver, "solve", None)
    if callable(solve):
        return solve
    if callable(solver):
        return solver
    raise TypeError(
        f"solver must be a registry name, a TESolver, or a callable; "
        f"got {type(solver).__name__}"
    )


def _warm_solver_factory(solver: SolverLike, backend=None):
    """Zero-arg maker of fresh warm solve fns, or ``None``.

    Only registry names can be warmed here: the registry knows (via
    ``SolverCapabilities.supports_warm_start``) whether the factory
    accepts ``warm=True``, and each call builds a *new* solver carrying
    its own session, which is what gives every worker chunk an
    independent deterministic warm chain.
    """
    if not isinstance(solver, str):
        return None
    from repro.te import registry

    spec = registry.get_spec(solver)
    if not spec.capabilities.supports_warm_start:
        return None
    return lambda: registry.make_solver(solver, backend=backend, warm=True).solve


@dataclass(frozen=True)
class ScalePoint:
    """One point of a scale sweep."""

    scale: float
    total_demand: float
    objective: float

    @property
    def satisfied_fraction(self) -> float:
        """Delivered flow as a fraction of total (scaled) demand."""
        if self.total_demand <= 0:
            return 0.0
        return self.objective / self.total_demand


def max_feasible_scale(
    topology: Topology,
    traffic: TrafficMatrix,
    tolerance: float = 0.01,
    upper_start: float = 4.0,
    oracle: SolverLike = "edge",
    backend=None,
    warm_start: bool = True,
) -> float:
    """Largest demand scale at which ALL demand can still be routed.

    Binary search over the scale factor.  ``oracle`` names the
    feasibility solver (all demand fits iff objective == demand); the
    default is the exact edge formulation.  A path-formulation oracle
    (e.g. ``"pf4"``) runs k-shortest-paths at most once per
    (topology, k): the search rescales the same commodity keys, so every
    probe after the first hits the shared tunnel cache.

    The probes are one deterministic chain of near-identical LPs, so a
    warm-capable registry oracle carries one LP solve session across
    the whole bisection by default: each probe warm-starts from the
    previous probe's optimum and is priced to exactness, so the result
    matches a cold search to LP-solver tolerance (far below the
    ``fits`` threshold).  ``warm_start=False`` restores cold probes.
    """
    if traffic.total_demand <= 0:
        raise ValueError("traffic matrix has no demand")
    factory = _warm_solver_factory(oracle, backend=backend) if warm_start else None
    if factory is not None:
        solve = factory()
    else:
        solve = _resolve_solver(oracle, backend=backend)

    def fits(scale: float) -> bool:
        scaled = traffic.scaled(scale)
        solution = solve(topology, scaled)
        return solution.objective >= scaled.total_demand * (1 - 1e-6)

    with obs.span(
        "te.max_feasible_scale", topology=topology.name, tolerance=tolerance
    ):
        low = 0.0
        high = upper_start
        # Grow the bracket until demand no longer fits.
        for _ in range(20):
            if not fits(high):
                break
            low = high
            high *= 2.0
        else:
            return high
        while high - low > tolerance * max(high, 1.0):
            middle = (low + high) / 2.0
            if fits(middle):
                low = middle
            else:
                high = middle
    return low


def _chunk_indices(count: int, workers: int) -> List[range]:
    """Contiguous, balanced index chunks -- one warm chain each.

    Purely determined by ``(count, workers)``: earlier chunks take the
    remainder, order is preserved.  This is what keeps warm parallel
    sweeps deterministic -- chains never depend on thread scheduling.
    """
    workers = max(1, min(workers, count))
    base, extra = divmod(count, workers)
    chunks: List[range] = []
    start = 0
    for position in range(workers):
        size = base + (1 if position < extra else 0)
        if size == 0:
            continue
        chunks.append(range(start, start + size))
        start += size
    return chunks


def scale_sweep(
    topology: Topology,
    traffic: TrafficMatrix,
    solver: SolverLike,
    scales: List[float],
    workers: int = 1,
    backend=None,
    on_error: str = "raise",
    warm_start: bool = False,
) -> List[Union[ScalePoint, TaskFailure]]:
    """Run ``solver`` at each demand scale; returns one point per scale.

    ``workers > 1`` solves the points on a thread pool; the returned
    list is always in ``scales`` order, identical to a serial run.
    ``on_error="collect"`` makes the sweep fail-soft: a raising sweep
    point (an injected fault, an ``LPSolveError``) yields a structured
    :class:`~repro.parallel.TaskFailure` at its position instead of
    killing the whole sweep.

    ``warm_start=True`` carries an LP solve session along each worker's
    contiguous chunk of scales (see the module docstring), so every
    point after a chunk's first warm-starts from its predecessor.  Warm
    sweeps keep the ordering, progress events, and fail-soft semantics
    of cold sweeps (a failed point leaves its chain's last good state
    in place); they require a warm-capable registry solver name --
    anything else silently solves cold.  The default stays cold, which
    is bit-for-bit identical across ``workers`` settings; warm
    objectives agree with cold to LP-solver tolerance.
    """
    for scale in scales:
        if scale <= 0:
            raise ValueError("scales must be positive")
    if on_error not in ("raise", "collect"):
        raise ValueError(
            f"on_error must be 'raise' or 'collect', got {on_error!r}"
        )
    factory = _warm_solver_factory(solver, backend=backend) if warm_start else None

    phase = obs.PROGRESS.phase(
        "scale_sweep", total=len(scales), topology=topology.name
    )

    def solve_point(solve, index: int, collect: bool):
        """Solve one scale; ScalePoint, TaskFailure (``collect``), or raise."""
        scale = scales[index]
        label = f"scale={scale:g}"
        phase.task_start(label)
        try:
            scaled = traffic.scaled(scale)
            solution = solve(topology, scaled)
        except Exception as exc:
            phase.task_finish(label, ok=False, error=type(exc).__name__)
            if not collect:
                raise
            obs.metrics.counter(
                "parallel.task_failures", error=type(exc).__name__
            ).inc()
            return TaskFailure(index, type(exc).__name__, str(exc))
        except BaseException as exc:
            phase.task_finish(label, ok=False, error=type(exc).__name__)
            raise
        phase.task_finish(label)
        return ScalePoint(
            scale=scale,
            total_demand=scaled.total_demand,
            objective=solution.objective,
        )

    def run_cold() -> List[Union[ScalePoint, TaskFailure]]:
        # One task per point, exceptions propagate into run_ordered so
        # its on_error machinery (fault injection at the parallel.task
        # site included) behaves exactly as it always has.
        solve = _resolve_solver(solver, backend=backend)
        return run_ordered(
            [lambda index=index: solve_point(solve, index, collect=False)
             for index in range(len(scales))],
            workers=workers,
            on_error=on_error,
        )

    def run_warm() -> List[Union[ScalePoint, TaskFailure]]:
        # One task per contiguous chunk, a fresh warm chain per chunk.
        # Per-point failures are collected *inside* the chunk so one
        # bad point leaves the rest of its chain running; a failure of
        # the chunk task itself (e.g. an injected parallel.task fault,
        # which now keys by chunk) expands to one TaskFailure per point
        # so the returned list always lines up with ``scales``.
        collect = on_error == "collect"

        def run_chunk(indices: range) -> List[Union[ScalePoint, TaskFailure]]:
            solve = factory()
            obs.metrics.counter("sweep.warm_chains").inc()
            return [solve_point(solve, index, collect) for index in indices]

        chunks = _chunk_indices(len(scales), workers)
        nested = run_ordered(
            [lambda indices=indices: run_chunk(indices) for indices in chunks],
            workers=workers,
            on_error=on_error,
        )
        flat: List[Union[ScalePoint, TaskFailure]] = []
        for indices, outcome in zip(chunks, nested):
            if isinstance(outcome, TaskFailure):
                flat.extend(
                    TaskFailure(index, outcome.error, outcome.message)
                    for index in indices
                )
            else:
                flat.extend(outcome)
        return flat

    with obs.span(
        "te.scale_sweep",
        topology=topology.name,
        points=len(scales),
        workers=workers,
        warm=factory is not None,
    ):
        try:
            return run_warm() if factory is not None else run_cold()
        finally:
            phase.finish()
