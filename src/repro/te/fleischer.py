"""Fleischer's FPTAS for maximum multicommodity flow.

The NCFlow paper's evaluation compares against Fleischer's combinatorial
(1 - epsilon)-approximation as the no-LP baseline; this module implements
it (the Garg-Konemann framework with Fleischer's round organisation).

Demand caps are handled with the standard construction: each commodity
``k`` gets a virtual source ``s_k'`` connected to its real source by an
edge of capacity ``d_k``, so the maximum multicommodity flow in the
augmented graph equals the demand-capped optimum.

Algorithm sketch (lengths as dual weights):

* every edge starts with length ``delta / capacity``;
* in rounds, each commodity repeatedly routes along its current
  shortest path (by length) while that path is shorter than the round's
  threshold, pushing the path's bottleneck capacity and multiplying
  each used edge's length by ``(1 + eps * used / capacity)``;
* the accumulated primal flow overshoots capacities by exactly
  ``log_{1+eps}(1/delta)``, so dividing by that factor yields a feasible
  flow within ``(1 - eps')`` of optimal.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro import obs

from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficMatrix
from repro.te.solution import TESolution

Edge = Tuple[str, str]


def solve_fleischer(
    topology: Topology,
    traffic: TrafficMatrix,
    epsilon: float = 0.1,
    max_rounds: Optional[int] = None,
) -> TESolution:
    """Approximate demand-capped max multicommodity flow.

    Returns a feasible flow whose total is at least ``(1 - 3*epsilon)``
    of the optimum (the classic guarantee), typically much closer.
    """
    if not 0 < epsilon < 0.5:
        raise ValueError("epsilon must be in (0, 0.5)")
    with obs.span(
        "te.fleischer.solve", topology=topology.name, epsilon=epsilon
    ) as sp:
        solution = _fleischer(topology, traffic, epsilon, max_rounds)
    solution.solve_seconds = sp.duration
    return solution


def _fleischer(
    topology: Topology,
    traffic: TrafficMatrix,
    epsilon: float,
    max_rounds: Optional[int],
) -> TESolution:
    commodities = traffic.commodities()
    graph = nx.DiGraph()
    capacity: Dict[Edge, float] = {}
    for link in topology.links():
        if link.capacity > 0:
            capacity[(link.src, link.dst)] = link.capacity
            graph.add_edge(link.src, link.dst)
    # Virtual demand-cap edges.
    sources: List[Tuple[str, str, str]] = []  # (virtual, src, dst)
    for index, (src, dst, demand) in enumerate(commodities):
        if demand <= 0:
            continue
        virtual = f"__src{index}"
        graph.add_edge(virtual, src)
        capacity[(virtual, src)] = demand
        sources.append((virtual, src, dst))

    num_edges = len(capacity)
    if num_edges == 0 or not sources:
        return TESolution("fleischer", 0.0, {}, 0.0, 0, "optimal")

    delta = (1 + epsilon) * ((1 + epsilon) * num_edges) ** (-1.0 / epsilon)
    length: Dict[Edge, float] = {
        edge: delta / cap for edge, cap in capacity.items()
    }
    flow_on_edge: Dict[Edge, float] = {edge: 0.0 for edge in capacity}
    commodity_flow: Dict[Tuple[str, str], float] = {}

    def shortest(virtual: str, dst: str):
        try:
            return nx.single_source_dijkstra(
                graph, virtual, dst, weight=lambda u, v, d: length[(u, v)]
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return math.inf, None

    rounds = 0
    threshold = delta * (1 + epsilon)
    budget = max_rounds if max_rounds is not None else 10_000
    while threshold < 1.0 and rounds < budget:
        progress = False
        for index, (virtual, src, dst) in enumerate(sources):
            while True:
                dist, path = shortest(virtual, dst)
                if path is None or dist >= min(threshold, 1.0):
                    break
                progress = True
                edges = list(zip(path, path[1:]))
                bottleneck = min(capacity[edge] for edge in edges)
                for edge in edges:
                    flow_on_edge[edge] += bottleneck
                    length[edge] *= 1 + epsilon * bottleneck / capacity[edge]
                real_src, real_dst = commodities[_source_index(virtual)][:2]
                key = (real_src, real_dst)
                commodity_flow[key] = commodity_flow.get(key, 0.0) + bottleneck
        threshold *= 1 + epsilon
        rounds += 1
        if not progress and threshold >= 1.0:
            break

    # Scale down to feasibility: the theoretical factor is
    # log_{1+eps}((1+eps)/delta); measuring the true worst edge overuse
    # and dividing by it is exact (and never scales less than needed).
    scale = max(
        (flow_on_edge[edge] / cap for edge, cap in capacity.items() if cap > 0),
        default=1.0,
    )
    scale = max(scale, 1.0)
    per_commodity = {
        key: value / scale for key, value in commodity_flow.items()
    }
    objective = sum(per_commodity.values())
    return TESolution(
        solver="fleischer",
        objective=objective,
        flow_per_commodity=per_commodity,
        lp_count=0,
        status="optimal",
    )


def _source_index(virtual: str) -> int:
    return int(virtual[len("__src"):])
